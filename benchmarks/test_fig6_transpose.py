"""Figure 6 e–f — 16-ary 2-cube under transpose traffic (paper §9).

Paper: the transpose reflects every packet across the matrix diagonal,
creating a continuous congestion area along it; the adaptive algorithm
reaches ≈50% of capacity, "more than twice" the deterministic one (≈25%).
"""

from repro.experiments.fig6 import fig6_experiment
from repro.experiments.report import render_cnf

from .conftest import run_once


def test_fig6_transpose(benchmark, reporter):
    cnf = run_once(benchmark, lambda: fig6_experiment("transpose"))
    reporter("fig6_transpose", render_cnf(cnf))

    sustained = cnf.sustained_summary()
    assert sustained["Duato"] >= 1.7 * sustained["deterministic"]
    assert 0.40 <= sustained["Duato"] <= 0.60  # paper: ~50%
    assert 0.15 <= sustained["deterministic"] <= 0.35  # paper: ~25%
