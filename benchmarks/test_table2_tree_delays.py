"""Table 2 — routing delays of the 4-ary 4-tree variants (paper §5).

Regenerates the table from Chien's cost model; checks the paper's values
(T_routing within 0.01 ns — the paper truncates where we round) and the
wire-limited conclusion of §5.
"""

import pytest

from repro.experiments.report import render_delay_table
from repro.experiments.tables import PAPER_TABLE2, table2_rows

from .conftest import run_once


def test_table2(benchmark, reporter):
    rows = run_once(benchmark, table2_rows)
    reporter("table2_tree_delays", render_delay_table(rows, "Table 2 — tree routing delays (ns)"))

    by_vcs = {r["V"]: r for r in rows}
    for vcs, (t_r, t_c, t_l, t_clk) in PAPER_TABLE2.items():
        row = by_vcs[vcs]
        assert row["T_routing"] == pytest.approx(t_r, abs=0.011)
        assert row["T_crossbar"] == pytest.approx(t_c, abs=0.011)
        assert row["T_link"] == pytest.approx(t_l, abs=0.011)
        assert row["T_clock"] == pytest.approx(t_clk, abs=0.011)
    # §5: 1 and 2 VC variants are wire-limited with no VC impact on the
    # clock beyond the controller term; at 4 VCs the routing/link gap is
    # narrow (diminishing returns expected beyond)
    assert all(by_vcs[v]["limiting"] == "link" for v in (1, 2, 4))
    gap = by_vcs[4]["T_link"] - by_vcs[4]["T_routing"]
    assert 0 < gap < 0.5
