"""Ablation — packet size / message granularity (the paper fixes 64 B).

Holds the offered load (flits per cycle per node) constant and varies
the packet length.  Expected shape: zero-load latency grows linearly
with the worm length (serialization term ``S − 1``), while the
saturation bandwidth is only mildly affected — wormhole switching
pipelines long packets well until blocking chains grow with worm length
and start eroding throughput at the largest sizes.
"""

from repro.experiments.report import render_table
from repro.experiments.sweep import run_sweep
from repro.metrics.saturation import sustained_rate
from repro.profiles import get_profile
from repro.sim.run import cube_config

from .conftest import run_once

SIZES = (4, 8, 16, 32, 64)
LOADS = (0.15, 0.5, 0.8, 1.0)


def run_all():
    profile = get_profile()
    out = {}
    for size in SIZES:
        series = run_sweep(
            lambda load, s=size: cube_config(
                algorithm="duato", load=load, packet_flits=s, seed=53,
                warmup_cycles=profile.warmup_cycles, total_cycles=profile.total_cycles,
            ),
            LOADS,
            label=f"{size} flits",
        )
        out[size] = (series.points[0].latency_cycles, sustained_rate(series))
    return out


def test_packet_size(benchmark, reporter):
    data = run_once(benchmark, run_all)
    reporter(
        "ablation_packet_size",
        render_table(
            ["packet flits", "latency @ 15% load (cyc)", "sustained accepted (frac)"],
            [[s, *data[s]] for s in SIZES],
            title="Packet-size ablation — 16-ary 2-cube, Duato routing, uniform traffic",
        ),
    )
    # latency scales with the serialization term: each doubling of the
    # packet adds roughly `size/2` cycles at light load
    lat = {s: data[s][0] for s in SIZES}
    for small, big in zip(SIZES, SIZES[1:]):
        gain = lat[big] - lat[small]
        assert 0.5 * (big - small) <= gain <= 2.5 * (big - small)
    # throughput is far less sensitive than latency: within ~50% across a
    # 16x size range, peaking at an intermediate size (very short packets
    # pay the per-packet routing overhead, very long ones lengthen
    # blocking chains)
    rates = [data[s][1] for s in SIZES]
    assert max(rates) <= 1.5 * min(rates)
    best = max(SIZES, key=lambda s: data[s][1])
    assert best not in (SIZES[0], SIZES[-1])
    assert data[64][1] < data[16][1]