"""Figure 5 g–h — 4-ary 4-tree under bit-reversal traffic (paper §8).

Paper: "an analogous behavior [to transpose] for the bit reversal" — the
two permutations share the same distance distribution (eq. 5) and the
same sensitivity to the flow-control strategy.
"""

import pytest

from repro.experiments.fig5 import fig5_experiment
from repro.experiments.report import render_cnf

from .conftest import run_once


def test_fig5_bitrev(benchmark, reporter):
    cnf = run_once(benchmark, lambda: fig5_experiment("bitrev"))
    reporter("fig5_bitrev", render_cnf(cnf))

    sustained = cnf.sustained_summary()
    assert sustained["1 vc"] < sustained["2 vc"] < sustained["4 vc"]
    assert sustained["4 vc"] >= 1.6 * sustained["1 vc"]

    # §8: bit reversal behaves like transpose — compare their sustained
    # rates variant by variant (reuses transpose runs from the cache when
    # the full suite runs; otherwise simulates them)
    transpose = fig5_experiment("transpose")
    for label, value in transpose.sustained_summary().items():
        assert sustained[label] == pytest.approx(value, rel=0.20)
