"""Figure 6 a–b — 16-ary 2-cube under uniform traffic (paper §9).

Paper: Duato's minimal adaptive algorithm saturates at ≈80% of capacity,
the deterministic one at ≈60%; network latency is ≈70 cycles for both
before saturation and 130–150 cycles at saturation.
"""

from repro.experiments.fig6 import fig6_experiment
from repro.experiments.report import render_cnf
from repro.metrics.saturation import post_saturation_stability

from .conftest import run_once


def test_fig6_uniform(benchmark, reporter):
    cnf = run_once(benchmark, lambda: fig6_experiment("uniform"))
    reporter("fig6_uniform", render_cnf(cnf))

    sustained = cnf.sustained_summary()
    # adaptivity wins under uniform traffic
    assert sustained["Duato"] > sustained["deterministic"]
    assert 0.65 <= sustained["Duato"] <= 0.90  # paper: ~80%
    assert 0.40 <= sustained["deterministic"] <= 0.70  # paper: ~60%

    # latency before saturation is low (paper: ~70 cycles) for both
    for series in cnf.series:
        first = series.points[0].latency_cycles
        assert first is not None and first < 90
        assert post_saturation_stability(series) < 0.15
