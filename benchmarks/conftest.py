"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one paper artifact (a table or a figure's
series), prints the same rows the paper plots, saves them under
``benchmarks/results/`` and asserts the headline *shape* of the result
(who wins, by roughly what factor).  Absolute numbers differ from the
paper's (different simulator, shorter default windows) but orderings and
crossovers must hold — a failed benchmark means the reproduction broke.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
series inline, or read the files in ``benchmarks/results/``.

The effort profile is selected by ``REPRO_PROFILE`` (fast / default /
full); simulation results are memoized in-process, so the Figure 7
benchmarks reuse the raw runs of Figures 5 and 6 when executed in the
same pytest session.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def reporter(results_dir):
    """Save a rendered report and echo it to stdout (visible with -s)."""

    def save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return save


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark.

    Simulation experiments take seconds to minutes; statistical repetition
    belongs to the simulator's own seed sweeps, not the harness, so one
    round with one iteration is the meaningful measurement here.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
