"""Ablation — beyond 4 virtual channels on the fat-tree (paper §11).

"When we use four virtual channels the routing delay is equalized with
the wire delay, so we expect a diminishing return with more virtual
channels."  This bench runs the 8-VC variant the paper never simulated:
in raw cycles the gain over 4 VCs is small, and after applying Chien's
model (8 VCs make T_routing the clock at 11.67 ns) the *absolute*
bits/ns advantage largely evaporates — confirming the §11 prediction.
"""

from repro.experiments.report import render_table
from repro.experiments.sweep import run_sweep
from repro.metrics.saturation import sustained_rate
from repro.profiles import get_profile
from repro.sim.run import tree_config
from repro.timing.chien import router_delays, tree_crossbar_ports, tree_freedom_adaptive
from repro.timing.chien import WireLength
from repro.timing.normalization import tree_scaling

from .conftest import run_once

LOADS = (0.4, 0.7, 1.0)
VC_VARIANTS = (1, 2, 4, 8)


def run_all():
    profile = get_profile()
    out = {}
    for vcs in VC_VARIANTS:
        series = run_sweep(
            lambda load, v=vcs: tree_config(
                vcs=v, load=load, seed=23,
                warmup_cycles=profile.warmup_cycles, total_cycles=profile.total_cycles,
            ),
            LOADS,
            label=f"{vcs} vc",
        )
        clock = router_delays(
            tree_freedom_adaptive(4, vcs),
            tree_crossbar_ports(4, vcs),
            vcs,
            WireLength.MEDIUM,
        ).clock_ns
        rate = sustained_rate(series)
        bits = tree_scaling(4, 4, clock_ns=clock).aggregate_bits_per_ns(rate)
        out[vcs] = (rate, clock, bits)
    return out


def test_diminishing_returns(benchmark, reporter):
    data = run_once(benchmark, run_all)
    reporter(
        "ablation_vcs",
        render_table(
            ["vcs", "sustained acc (frac)", "T_clock (ns)", "sustained (bits/ns)"],
            [[v, *data[v]] for v in VC_VARIANTS],
            title="Virtual-channel ablation — 4-ary 4-tree, uniform traffic",
        ),
    )
    # raw cycles: monotone gains up to 4 VCs ...
    assert data[1][0] < data[2][0] < data[4][0]
    # ... but the 4 -> 8 cycle-level gain is much smaller than 2 -> 4
    gain_24 = data[4][0] - data[2][0]
    gain_48 = data[8][0] - data[4][0]
    assert gain_48 < max(0.6 * gain_24, 0.04)
    # §11: with the slower 8-VC clock the absolute gain mostly evaporates
    assert data[8][2] < 1.08 * data[4][2]
    # and the 8-VC clock is routing-limited
    d8 = router_delays(
        tree_freedom_adaptive(4, 8), tree_crossbar_ports(4, 8), 8, WireLength.MEDIUM
    )
    assert d8.limiting_factor() == "routing"
