"""Figure 5 e–f — 4-ary 4-tree under transpose traffic (paper §8).

Paper: saturation at ≈33% / 60% / 78% of capacity with 1 / 2 / 4 virtual
channels — congestion in the descending phase makes the pattern highly
sensitive to the flow-control strategy, like uniform and bit reversal.
"""

from repro.experiments.fig5 import fig5_experiment
from repro.experiments.report import render_cnf

from .conftest import run_once


def test_fig5_transpose(benchmark, reporter):
    cnf = run_once(benchmark, lambda: fig5_experiment("transpose"))
    reporter("fig5_transpose", render_cnf(cnf))

    sustained = cnf.sustained_summary()
    assert sustained["1 vc"] < sustained["2 vc"] < sustained["4 vc"]
    assert sustained["4 vc"] >= 1.6 * sustained["1 vc"]
    assert 0.25 <= sustained["1 vc"] <= 0.50
    assert 0.55 <= sustained["4 vc"] <= 0.90
