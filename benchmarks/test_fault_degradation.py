"""Fault-degradation bench — fat-tree resilience (extension).

Injects growing numbers of random ascending-channel faults into the
4-ary 4-tree and measures the sustained uniform-traffic throughput with
the adaptive algorithm.  Expected shape: graceful, roughly proportional
degradation — the CM-5-style operational argument for fat-trees — with
no deadlocks and no collapse even at 20% failed ascent channels.
"""

from repro.experiments.report import render_table
from repro.faults import inject_tree_uplink_faults, random_uplink_faults
from repro.profiles import get_profile
from repro.sim.run import build_engine, tree_config

from .conftest import run_once

#: 4-ary 4-tree: 3 levels x 64 switches x 4 up channels = 768 ascent channels
FAULT_COUNTS = (0, 38, 77, 154)  # 0%, 5%, 10%, 20%
LOAD = 1.0


def run_all():
    profile = get_profile()
    rows = []
    for count in FAULT_COUNTS:
        eng = build_engine(
            tree_config(
                vcs=4, load=LOAD, seed=47,
                warmup_cycles=profile.warmup_cycles,
                total_cycles=profile.total_cycles,
            )
        )
        faults = random_uplink_faults(eng.topology, count, seed=5)
        inject_tree_uplink_faults(eng, faults)
        res = eng.run()
        eng.audit()
        rows.append((count, res.accepted_fraction, res.avg_latency_cycles))
    return rows


def test_fault_degradation(benchmark, reporter):
    rows = run_once(benchmark, run_all)
    reporter(
        "fault_degradation",
        render_table(
            ["failed ascent channels", "accepted (frac of capacity)", "latency (cyc)"],
            [list(r) for r in rows],
            title="Fat-tree fault degradation — uniform traffic at full load, adaptive routing",
        ),
    )
    accepted = [r[1] for r in rows]
    # monotone non-increasing within noise
    for healthy, degraded in zip(accepted, accepted[1:]):
        assert degraded <= healthy + 0.03
    # graceful: 20% channel loss keeps more than half the throughput
    assert accepted[-1] > 0.5 * accepted[0]
    # and strictly measurable: 20% loss does cost something
    assert accepted[-1] < accepted[0]