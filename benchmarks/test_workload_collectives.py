"""Workload bench — collective communication phases (extension).

Plays algorithm-shaped traces (all-to-all, butterfly barrier, binomial
broadcast) through both network families at 64 nodes and checks the
qualitative expectations:

* the shifted all-to-all schedule (rounds are permutations) beats the
  naive destination order (hot-destination convoys) on both networks;
* the barrier and broadcast track their round structure (log2 N rounds);
* the cube's denser low-level connectivity drains the all-to-all faster
  in cycles, consistent with its uniform-traffic advantage in Figure 7
  (before clock scaling).
"""

from repro.experiments.report import render_table
from repro.sim.run import cube_config, tree_config
from repro.workloads import (
    alltoall_trace,
    broadcast_trace,
    butterfly_barrier_trace,
    run_trace,
)

from .conftest import run_once

N = 64
TREE = dict(k=4, n=3, vcs=4)
CUBE = dict(k=8, n=2, algorithm="duato")


def run_all():
    out = {}
    for name, tree_trace, cube_trace in (
        (
            "alltoall/shifted",
            alltoall_trace(N, flits=32, schedule="shifted"),
            alltoall_trace(N, flits=16, schedule="shifted"),
        ),
        (
            "alltoall/naive",
            alltoall_trace(N, flits=32, schedule="naive"),
            alltoall_trace(N, flits=16, schedule="naive"),
        ),
        (
            "barrier",
            butterfly_barrier_trace(N, flits=32),
            butterfly_barrier_trace(N, flits=16),
        ),
        (
            "broadcast",
            broadcast_trace(N, flits=32),
            broadcast_trace(N, flits=16),
        ),
    ):
        out[name] = (
            run_trace(tree_config(**TREE), tree_trace),
            run_trace(cube_config(**CUBE), cube_trace),
        )
    return out


def test_collectives(benchmark, reporter):
    results = run_once(benchmark, run_all)
    reporter(
        "workload_collectives",
        render_table(
            ["phase", "tree makespan", "tree flits/cyc", "cube makespan", "cube flits/cyc"],
            [
                [
                    name,
                    tree.makespan_cycles,
                    round(tree.aggregate_flits_per_cycle, 1),
                    cube.makespan_cycles,
                    round(cube.aggregate_flits_per_cycle, 1),
                ]
                for name, (tree, cube) in results.items()
            ],
            title="Collective phases — 64-node networks, one packet per message",
        ),
    )
    for idx in (0, 1):
        shifted = results["alltoall/shifted"][idx].makespan_cycles
        naive = results["alltoall/naive"][idx].makespan_cycles
        assert shifted < 0.8 * naive  # scheduling matters on both networks
    # round structure dominates the barrier: >= (rounds-1) gaps
    tree_barrier = results["barrier"][0]
    assert tree_barrier.makespan_cycles >= 5 * 3 * 32  # 5 gaps of 3*flits
    # broadcast reaches everyone with N-1 messages
    assert results["broadcast"][0].messages == N - 1
    assert results["broadcast"][1].messages == N - 1