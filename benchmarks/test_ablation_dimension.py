"""Ablation — cube dimensionality under physical constraints (§11 outlook).

The paper predicts low-dimensional cubes extend their lead as wire delay
dominates; the contemporaneous debate (Duato & Malumbres, "Hypercubes
again?") asked whether high-dimensional cubes win instead.  Applying the
paper's own §5 methodology to three equal-size cubes — 16-ary 2-cube,
4-ary 4-cube, binary 8-cube, all 256 nodes, same pin budget, wire-length
class by embeddability — settles it for this model: the 2-D torus wins
both throughput and latency in absolute units.
"""

from repro.experiments.dimension import SHAPES_256, dimension_study
from repro.experiments.report import render_table

from .conftest import run_once


def test_dimension_study(benchmark, reporter):
    rows = run_once(benchmark, dimension_study)
    reporter(
        "ablation_dimension",
        render_table(
            ["shape", "flit B", "wires", "T_clock ns", "sat bits/ns", "latency ns @ low load"],
            [
                [
                    r.variant.label,
                    r.variant.flit_bytes,
                    r.variant.wire.value,
                    round(r.variant.clock_ns, 2),
                    round(r.saturation_bits_per_ns, 1),
                    round(r.low_load_latency_ns, 1),
                ]
                for r in rows
            ],
            title="Cube dimension ablation — uniform traffic, Duato routing, N=256",
        ),
    )
    assert [(r.variant.k, r.variant.n) for r in rows] == list(SHAPES_256)
    torus, cube4, hyper = rows
    # the §11 prediction: the low-dimensional cube wins in absolute units
    assert torus.saturation_bits_per_ns > 1.25 * cube4.saturation_bits_per_ns
    assert torus.saturation_bits_per_ns > 1.25 * hyper.saturation_bits_per_ns
    assert torus.low_load_latency_ns < cube4.low_load_latency_ns
    assert torus.low_load_latency_ns < hyper.low_load_latency_ns
    # physical-constraint bookkeeping: high dimensions pay narrow paths
    # and medium wires
    assert torus.variant.flit_bytes == 4
    assert cube4.variant.flit_bytes == hyper.variant.flit_bytes == 2
    assert torus.variant.wire.value == "short"
    assert cube4.variant.wire.value == hyper.variant.wire.value == "medium"
