"""Ablation — adaptivity on the fat-tree (extension).

The paper evaluates only the adaptive up*/down* algorithm; this bench
quantifies what the adaptive ascent is worth against a strong oblivious
baseline (source-digit ascent, the d-mod-k family used by later fat-tree
systems) at equal VC count.

Measured finding (recorded in EXPERIMENTS.md): the value of adaptivity is
*pattern dependent* —

* uniform and complement: the source-spread deterministic ascent is
  perfectly load balanced, and matches or slightly beats the adaptive
  heuristic;
* transpose: the fixed ascent funnels the permutation's descending
  conflicts through fixed roots and collapses (~10x worse); adaptivity
  reroutes around them.

This mirrors the §9 cube lesson (DOR wins complement, loses transpose):
obliviousness is fine exactly when the pattern's structure already
matches the routing function.
"""

from repro.experiments.report import render_table
from repro.experiments.sweep import run_sweep
from repro.metrics.saturation import sustained_rate
from repro.profiles import get_profile
from repro.sim.run import tree_config

from .conftest import run_once

LOADS = (0.3, 0.5, 0.7, 0.9)
PATTERNS = ("uniform", "complement", "transpose")


def run_all():
    profile = get_profile()
    out = {}
    for pattern in PATTERNS:
        for algorithm in ("tree_adaptive", "tree_deterministic"):
            series = run_sweep(
                lambda load, a=algorithm, p=pattern: tree_config(
                    vcs=4, algorithm=a, pattern=p, load=load, seed=41,
                    warmup_cycles=profile.warmup_cycles,
                    total_cycles=profile.total_cycles,
                ),
                LOADS,
                label=f"{pattern}/{algorithm}",
            )
            out[(pattern, algorithm)] = sustained_rate(series)
    return out


def test_tree_adaptivity_gain(benchmark, reporter):
    rates = run_once(benchmark, run_all)
    reporter(
        "ablation_tree_routing",
        render_table(
            ["pattern", "adaptive sustained", "deterministic sustained"],
            [
                [p, rates[(p, "tree_adaptive")], rates[(p, "tree_deterministic")]]
                for p in PATTERNS
            ],
            title="Tree routing ablation — 4-ary 4-tree, 4 VCs, sustained accepted bandwidth",
        ),
    )
    # balanced patterns: the oblivious source-spread ascent is competitive
    for pattern in ("uniform", "complement"):
        ratio = rates[(pattern, "tree_adaptive")] / rates[(pattern, "tree_deterministic")]
        assert 0.75 <= ratio <= 1.35, (pattern, ratio)
    # transpose: adaptivity reroutes around the fixed-root funnels
    assert rates[("transpose", "tree_adaptive")] > 4 * rates[("transpose", "tree_deterministic")]