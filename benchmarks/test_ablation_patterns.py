"""Ablation — extension traffic patterns beyond the paper's four.

Exercises the extra generators (neighbor, shuffle, butterfly, tornado,
hotspot) on both paper networks at a few loads, and checks the expected
qualitative behaviors:

* neighbor traffic is congestion-free-like on the tree (mostly intra-leaf)
  and light on the cube (single-hop rings);
* tornado is the adversarial torus pattern: it degrades the cube far more
  than neighbor does, and adaptive routing cannot rescue it (all packets
  need the same ring direction);
* a strong hotspot collapses accepted bandwidth towards the single
  ejection channel limit shared by all sources.
"""

from repro.experiments.report import render_table
from repro.experiments.sweep import run_sweep
from repro.profiles import get_profile
from repro.sim.run import cube_config, tree_config

from .conftest import run_once

LOADS = (0.3, 0.6, 0.9)


def _sweep(make_config, label):
    profile = get_profile()
    return run_sweep(
        lambda load: make_config(
            load=load,
            warmup_cycles=profile.warmup_cycles,
            total_cycles=profile.total_cycles,
            seed=17,
        ),
        LOADS,
        label=label,
    )


def run_all():
    rows = []
    series = {}
    for pattern in ("neighbor", "shuffle", "butterfly", "tornado"):
        tree = _sweep(
            lambda pattern=pattern, **kw: tree_config(vcs=4, pattern=pattern, **kw),
            f"tree/{pattern}",
        )
        cube = _sweep(
            lambda pattern=pattern, **kw: cube_config(
                algorithm="duato", pattern=pattern, **kw
            ),
            f"cube/{pattern}",
        )
        series[("tree", pattern)] = tree
        series[("cube", pattern)] = cube
        rows.append([pattern, tree.peak_accepted(), cube.peak_accepted()])
    hotspot = _sweep(
        lambda **kw: cube_config(
            algorithm="duato",
            pattern="hotspot",
            pattern_kwargs={"hotspots": (0,), "fraction": 0.2},
            **kw,
        ),
        "cube/hotspot20",
    )
    series[("cube", "hotspot")] = hotspot
    rows.append(["hotspot(20%)", None, hotspot.peak_accepted()])
    return rows, series


def test_extension_patterns(benchmark, reporter):
    rows, series = run_once(benchmark, run_all)
    reporter(
        "ablation_patterns",
        render_table(
            ["pattern", "tree 4vc peak acc", "cube Duato peak acc"],
            rows,
            title="Extension patterns — peak accepted bandwidth (fraction of capacity)",
        ),
    )
    peak = {key: s.peak_accepted() for key, s in series.items()}
    # neighbor is near-local on both networks
    assert peak[("tree", "neighbor")] >= 0.8
    assert peak[("cube", "neighbor")] >= 0.8
    # tornado hurts the cube much more than neighbor traffic does
    assert peak[("cube", "tornado")] <= 0.7 * peak[("cube", "neighbor")]
    # the tree is insensitive to tornado's ring structure (it has none)
    assert peak[("tree", "tornado")] >= peak[("cube", "tornado")]
    # a 20% hotspot caps global accepted bandwidth well below uniform
    assert peak[("cube", "hotspot")] <= 0.5
