"""Figure 7 a–h — the two networks compared in absolute units (paper §10).

The §10 headlines this harness checks (saturation throughput in bits/ns,
paper values in parentheses):

* uniform — cube wins: Duato (440) > deterministic (350) > best tree
  (280, 4 vc) > tree 1 vc (150); cube pre-saturation latency about half
  the tree's;
* complement — tree wins: every tree variant (≈400) above the best cube
  (deterministic, ≈280 by §10 / ≈250 by §11);
* transpose and bit reversal — two classes: {cube Duato, tree 2 vc,
  tree 4 vc} clearly above {cube deterministic, tree 1 vc}.

When run after the Figure 5/6 benchmarks in the same session all raw
simulations are reused from the in-process cache; the timing measured
here is then the (cheap) rescaling itself.
"""

from repro.experiments.fig7 import fig7_experiment
from repro.experiments.report import render_comparison

from .conftest import run_once

FAST_CLASS = ("cube, Duato", "fat tree, 2 vc", "fat tree, 4 vc")
SLOW_CLASS = ("cube, deterministic", "fat tree, 1 vc")


def test_fig7_uniform(benchmark, reporter):
    result = run_once(benchmark, lambda: fig7_experiment("uniform"))
    reporter("fig7_uniform", render_comparison(result))

    sat = result.saturation_summary()
    # cube dominates the fat-tree under uniform traffic
    assert sat["cube, Duato"] > sat["cube, deterministic"]
    assert sat["cube, deterministic"] > sat["fat tree, 4 vc"]
    assert sat["fat tree, 4 vc"] > sat["fat tree, 2 vc"] > sat["fat tree, 1 vc"]
    # rough magnitudes (paper: 440 / 350 / 280 / 150)
    assert 300 <= sat["cube, Duato"] <= 500
    assert 100 <= sat["fat tree, 1 vc"] <= 200

    # cube latency about half the tree latency at light load (§10)
    by_label = {s.label: s for s in result.series}
    cube_lat = by_label["cube, Duato"].points[0].latency_ns
    tree_lat = by_label["fat tree, 4 vc"].points[0].latency_ns
    assert tree_lat > 1.6 * cube_lat


def test_fig7_complement(benchmark, reporter):
    result = run_once(benchmark, lambda: fig7_experiment("complement"))
    reporter("fig7_complement", render_comparison(result))

    sat = result.saturation_summary()
    best_tree = max(v for k, v in sat.items() if k.startswith("fat tree"))
    best_cube = max(v for k, v in sat.items() if k.startswith("cube"))
    # the tree wins the bisection-stressing pattern
    assert best_tree > best_cube
    # and the best cube algorithm is the deterministic one
    assert sat["cube, deterministic"] > sat["cube, Duato"]
    # rough magnitudes (paper: tree ~400, best cube ~250-280)
    assert best_tree >= 280
    assert 150 <= best_cube <= 330


def test_fig7_transpose(benchmark, reporter):
    result = run_once(benchmark, lambda: fig7_experiment("transpose"))
    reporter("fig7_transpose", render_comparison(result))
    _assert_two_classes(result.saturation_summary())


def test_fig7_bitrev(benchmark, reporter):
    result = run_once(benchmark, lambda: fig7_experiment("bitrev"))
    reporter("fig7_bitrev", render_comparison(result))
    _assert_two_classes(result.saturation_summary())


def _assert_two_classes(sat: dict[str, float]) -> None:
    """§10: saturation points split into a fast and a slow class."""
    slowest_fast = min(sat[label] for label in FAST_CLASS)
    fastest_slow = max(sat[label] for label in SLOW_CLASS)
    assert slowest_fast > fastest_slow
    # paper bands: fast class 250-300, slow class 100-150 (generous)
    assert all(180 <= sat[label] <= 360 for label in FAST_CLASS), sat
    assert all(60 <= sat[label] <= 220 for label in SLOW_CLASS), sat
