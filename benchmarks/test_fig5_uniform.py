"""Figure 5 a–b — 4-ary 4-tree under uniform traffic (paper §8).

Paper: saturation ≈36% (1 vc), ≈55% (2 vc), ≈72% (4 vc); stable
post-saturation throughput; "switching from 1 to 4 virtual channels
doubles the accepted bandwidth".
"""

from repro.experiments.fig5 import fig5_experiment
from repro.experiments.report import render_cnf
from repro.metrics.saturation import post_saturation_stability

from .conftest import run_once


def test_fig5_uniform(benchmark, reporter):
    cnf = run_once(benchmark, lambda: fig5_experiment("uniform"))
    reporter("fig5_uniform", render_cnf(cnf))

    sustained = cnf.sustained_summary()
    # more virtual channels -> strictly better throughput
    assert sustained["1 vc"] < sustained["2 vc"] < sustained["4 vc"]
    # 4 VCs roughly double the 1 VC bandwidth (paper: 36% -> 72%)
    assert sustained["4 vc"] >= 1.6 * sustained["1 vc"]
    # absolute bands, generous around the paper's 36/55/72%
    assert 0.25 <= sustained["1 vc"] <= 0.50
    assert 0.40 <= sustained["2 vc"] <= 0.65
    assert 0.55 <= sustained["4 vc"] <= 0.85
    # §6/§8: throughput remains stable beyond saturation
    for series in cnf.series:
        assert post_saturation_stability(series) < 0.15
