"""Figure 5 c–d — 4-ary 4-tree under complement traffic (paper §8).

Paper: the congestion-free pattern — saturation ≈95% of capacity for all
flow-control variants, and extra virtual channels are *counterproductive*
for latency (link multiplexing stretches every worm's tail).
"""

from repro.experiments.fig5 import fig5_experiment
from repro.experiments.report import render_cnf

from .conftest import run_once


def test_fig5_complement(benchmark, reporter):
    cnf = run_once(benchmark, lambda: fig5_experiment("complement"))
    reporter("fig5_complement", render_cnf(cnf))

    sustained = cnf.sustained_summary()
    # near-capacity for every variant — far above any congesting pattern
    assert all(v >= 0.65 for v in sustained.values()), sustained
    # the pattern is insensitive to the flow-control strategy: the spread
    # between variants stays small compared to uniform's 2x
    assert max(sustained.values()) <= 1.35 * min(sustained.values())

    # latency inversion: at a medium-high load (pre-saturation for all
    # variants) more VCs mean *higher* latency
    by_label = {s.label: s for s in cnf.series}
    idx = next(
        i for i, p in enumerate(by_label["1 vc"].points) if p.offered >= 0.55
    )
    lat1 = by_label["1 vc"].points[idx].latency_cycles
    lat4 = by_label["4 vc"].points[idx].latency_cycles
    assert lat1 is not None and lat4 is not None
    assert lat4 > lat1
    # 1 vc latency stays almost flat deep into the load range (paper:
    # stable until ~70% of capacity)
    low = by_label["1 vc"].points[0].latency_cycles
    assert lat1 <= 1.25 * low
