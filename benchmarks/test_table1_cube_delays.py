"""Table 1 — routing delays of the 16-ary 2-cube algorithms (paper §5).

Regenerates the table from Chien's cost model and checks it digit for
digit against the printed values.
"""

import pytest

from repro.experiments.report import render_delay_table
from repro.experiments.tables import PAPER_TABLE1, table1_rows

from .conftest import run_once


def test_table1(benchmark, reporter):
    rows = run_once(benchmark, table1_rows)
    reporter("table1_cube_delays", render_delay_table(rows, "Table 1 — cube routing delays (ns)"))

    by_name = {r["algorithm"]: r for r in rows}
    for name, (t_r, t_c, t_l, t_clk) in PAPER_TABLE1.items():
        row = by_name[name]
        assert row["T_routing"] == pytest.approx(t_r, abs=0.011)
        assert row["T_crossbar"] == pytest.approx(t_c, abs=0.011)
        assert row["T_link"] == pytest.approx(t_l, abs=0.011)
        assert row["T_clock"] == pytest.approx(t_clk, abs=0.011)
    # §5: the deterministic router is link-limited, the adaptive one
    # routing-limited — the clock penalty of adaptivity
    assert by_name["deterministic"]["limiting"] == "link"
    assert by_name["duato"]["limiting"] == "routing"
    assert by_name["duato"]["T_clock"] > by_name["deterministic"]["T_clock"]
