"""Ablation — lane buffer depth (the paper fixes 4 flits per lane, §5).

Sweeps the input/output lane depth on both networks under uniform
traffic.  Expected shape: throughput grows monotonically (more slack
before backpressure) with clearly diminishing returns — the paper's
choice of 4 sits near the knee for 16/32-flit packets.
"""

from repro.experiments.report import render_table
from repro.experiments.sweep import run_sweep
from repro.profiles import get_profile
from repro.sim.run import cube_config, tree_config

from .conftest import run_once

DEPTHS = (1, 2, 4, 8)
LOADS = (0.5, 0.8, 1.0)


def run_all():
    profile = get_profile()
    out = {}
    for depth in DEPTHS:
        tree = run_sweep(
            lambda load, d=depth: tree_config(
                vcs=4, load=load, buffer_flits=d, seed=19,
                warmup_cycles=profile.warmup_cycles, total_cycles=profile.total_cycles,
            ),
            LOADS,
            label=f"tree/buf{depth}",
        )
        cube = run_sweep(
            lambda load, d=depth: cube_config(
                algorithm="duato", load=load, buffer_flits=d, seed=19,
                warmup_cycles=profile.warmup_cycles, total_cycles=profile.total_cycles,
            ),
            LOADS,
            label=f"cube/buf{depth}",
        )
        out[depth] = (tree.peak_accepted(), cube.peak_accepted())
    return out


def test_buffer_depth(benchmark, reporter):
    peaks = run_once(benchmark, run_all)
    reporter(
        "ablation_buffers",
        render_table(
            ["buffer flits", "tree 4vc peak acc", "cube Duato peak acc"],
            [[d, *peaks[d]] for d in DEPTHS],
            title="Lane depth ablation — uniform traffic, peak accepted bandwidth",
        ),
    )
    # monotone non-decreasing within noise
    for net in (0, 1):
        values = [peaks[d][net] for d in DEPTHS]
        for a, b in zip(values, values[1:]):
            assert b >= a - 0.05
    # diminishing returns: 4 -> 8 gains far less than 1 -> 4
    for net in (0, 1):
        early_gain = peaks[4][net] - peaks[1][net]
        late_gain = peaks[8][net] - peaks[4][net]
        assert late_gain < max(0.5 * early_gain, 0.08)
