"""Probe-overhead smoke benchmark: cycles/sec with probes off vs on.

The engine's observability hooks are guarded by ``if probe is not None``
checks, so a run without a probe should pay (almost) nothing for their
existence, and a :class:`~repro.obs.NullProbe` should cost only Python
call dispatch.  This script measures all three operating points on a
short uniform-traffic run:

* **off** — no probe attached (the bulk-sweep configuration);
* **null** — ``NullProbe`` attached: every callback fires into no-ops;
* **traced** — ``TraceProbe`` + ``WindowedCounterProbe``: the fully
  instrumented ``repro trace`` configuration (also writes the Chrome
  trace, which CI uploads as an artifact).

It exits nonzero when the *null* overhead relative to *off* exceeds
``--threshold``.  The threshold is deliberately generous — per-event
Python dispatch costs tens of percent and that is fine for instrumented
runs — the guard exists to catch an accidental rewrite that makes the
*default* path pay per-flit costs (which would show up here as null
overhead collapsing toward zero while off throughput craters, or as
dispatch ballooning well past normal function-call cost).

Usage::

    PYTHONPATH=src python benchmarks/obs_overhead.py --repeats 3
"""

from __future__ import annotations

import argparse
import sys

from repro.obs import MultiProbe, NullProbe, TraceProbe, WindowedCounterProbe
from repro.sim.run import cube_config, simulate, tree_config


def best_rate(config, make_probe, repeats: int) -> float:
    """Best-of-N cycles/sec (best-of defends against scheduler noise)."""
    best = 0.0
    for _ in range(repeats):
        result = simulate(config, probe=make_probe())
        best = max(best, result.telemetry.cycles_per_sec)
    return best


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--network", choices=("tree", "cube"), default="cube")
    ap.add_argument("--load", type=float, default=0.3)
    ap.add_argument("--cycles", type=int, default=2000,
                    help="total cycles per run (warm-up is one tenth)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="runs per operating point; best-of is reported")
    ap.add_argument("--threshold", type=float, default=0.75,
                    help="max tolerated null-probe overhead fraction")
    ap.add_argument("--trace-out", default=None,
                    help="write the instrumented run's Chrome trace here")
    args = ap.parse_args(argv)

    common = dict(
        load=args.load, seed=11,
        warmup_cycles=args.cycles // 10, total_cycles=args.cycles,
    )
    if args.network == "cube":
        config = cube_config(k=4, n=2, algorithm="dor", **common)
    else:
        config = tree_config(k=2, n=3, vcs=2, **common)

    off = best_rate(config, lambda: None, args.repeats)
    null = best_rate(config, NullProbe, args.repeats)

    tracer = TraceProbe()

    def instrumented():
        nonlocal tracer
        tracer = TraceProbe()
        return MultiProbe([tracer, WindowedCounterProbe(window_cycles=200)])

    traced = best_rate(config, instrumented, args.repeats)
    if args.trace_out:
        tracer.write_chrome_trace(args.trace_out)

    rows = [("off", off), ("null", null), ("traced", traced)]
    print(f"probe overhead, {args.network} {config.num_nodes} nodes, "
          f"load {args.load}, {args.cycles} cycles, best of {args.repeats}:")
    for name, rate in rows:
        overhead = (off - rate) / off if off else 0.0
        print(f"  {name:<7} {rate:>12,.0f} cyc/s   overhead {overhead:+7.1%}")

    null_overhead = (off - null) / off if off else 0.0
    if null_overhead > args.threshold:
        print(
            f"FAIL: null-probe overhead {null_overhead:.1%} exceeds "
            f"threshold {args.threshold:.0%}",
            file=sys.stderr,
        )
        return 1
    print(f"ok: null-probe overhead {null_overhead:.1%} "
          f"<= threshold {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
