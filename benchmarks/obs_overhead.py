"""Probe-overhead smoke benchmark: cycles/sec with probes off vs on.

The engine's observability hooks are guarded by ``if probe is not None``
checks, so a run without a probe should pay (almost) nothing for their
existence, and a :class:`~repro.obs.NullProbe` should cost only Python
call dispatch.  This script measures all three operating points on a
short uniform-traffic run:

* **off** — no probe attached (the bulk-sweep configuration);
* **null** — ``NullProbe`` attached: every callback fires into no-ops;
* **traced** — ``TraceProbe`` + ``WindowedCounterProbe``: the fully
  instrumented ``repro trace`` configuration (also writes the Chrome
  trace, which CI uploads as an artifact);
* **forensics** — the congestion-forensics tier (latency attribution +
  wait-for graph sampling + link hotspots): the ``--forensics``
  configuration, so its overhead is on record in ``BENCH_obs.json`` and
  gated by ``repro-net bench --compare`` alongside the rest;
* **reliable** — the source-side reliable transport installed on every
  node (sequence numbers, ACK/timeout timer wheel, wrapped sources)
  with zero faults: the protocol's fault-free overhead, gated so the
  ARQ machinery never silently taxes lossless runs;
* **congestion** — the closed congestion loop on top of the transport
  (hot-link marker probe, per-destination AIMD windows, hold-queue
  pump): the ``repro congestion --mode closed`` configuration, gated so
  the loop's bookkeeping never silently regresses;
* **flight** — the flight recorder at its default interval: the
  ``--flight``/``--watch`` configuration.  Its *marginal* cost is gated
  against the null probe (``--flight-threshold``, default 10%): the
  recorder rides the same per-event dispatch the null probe already
  pays, so flight-vs-null isolates the sampling work itself;
* **statehash** — the state-digest audit trail at its default interval:
  the ``--statehash`` configuration.  Gated against the null probe the
  same way (``--statehash-threshold``, default 10%), isolating the
  per-interval hashing sweep over every lane, node and RNG;
* **checkpoint** — the digest-verified checkpoint probe at its default
  interval: the ``--checkpoint`` configuration.  Gated against the null
  probe the same way (``--checkpoint-threshold``, default 10%),
  isolating the periodic engine pickle + atomic write + manifest
  update.

It exits nonzero when the *null* overhead relative to *off* exceeds
``--threshold``, or when the *flight*/*statehash* overhead relative to
*null* exceeds its per-probe threshold.  The threshold is deliberately generous — per-event
Python dispatch costs tens of percent and that is fine for instrumented
runs — the guard exists to catch an accidental rewrite that makes the
*default* path pay per-flit costs (which would show up here as null
overhead collapsing toward zero while off throughput craters, or as
dispatch ballooning well past normal function-call cost).

Results are also written as a versioned bench baseline document
(``BENCH_obs.json`` at the repo root by default) in the same schema as
``repro-net bench``, so the perf-regression gate can replay exactly
these recipes later::

    PYTHONPATH=src python benchmarks/obs_overhead.py --repeats 3
    PYTHONPATH=src python -m repro bench --compare BENCH_obs.json
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.obs import MultiProbe, TraceProbe, WindowedCounterProbe
from repro.obs.bench import bench_document, measure_entry, save_baseline
from repro.sim.run import cube_config, simulate, tree_config

#: committed reference baseline, next to README at the repo root
DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--network", choices=("tree", "cube"), default="cube")
    ap.add_argument("--load", type=float, default=0.3)
    ap.add_argument("--cycles", type=int, default=2000,
                    help="total cycles per run (warm-up is one tenth)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="runs per operating point; best-of is reported")
    ap.add_argument("--threshold", type=float, default=0.75,
                    help="max tolerated null-probe overhead fraction")
    ap.add_argument("--flight-threshold", type=float, default=0.10,
                    help="max tolerated flight-recorder overhead relative"
                         " to the null probe (marginal sampling cost)")
    ap.add_argument("--statehash-threshold", type=float, default=0.10,
                    help="max tolerated state-digest overhead relative"
                         " to the null probe (marginal hashing cost)")
    ap.add_argument("--checkpoint-threshold", type=float, default=0.10,
                    help="max tolerated checkpoint-probe overhead relative"
                         " to the null probe (marginal snapshot cost)")
    ap.add_argument("--trace-out", default=None,
                    help="write the instrumented run's Chrome trace here")
    ap.add_argument("--out", default=str(DEFAULT_OUT),
                    help="bench baseline document to write (repro-net bench"
                         " --compare consumes it); empty string disables")
    args = ap.parse_args(argv)

    common = dict(
        load=args.load, seed=11,
        warmup_cycles=args.cycles // 10, total_cycles=args.cycles,
    )
    if args.network == "cube":
        config = cube_config(k=4, n=2, algorithm="dor", **common)
    else:
        config = tree_config(k=2, n=3, vcs=2, **common)

    entries = [
        measure_entry(f"obs-{spec}", config, spec, repeats=args.repeats)
        for spec in ("off", "null", "traced", "forensics", "reliable",
                     "congestion", "flight", "statehash", "checkpoint")
    ]
    rates = {e["probe"]: e["cycles_per_sec"] for e in entries}
    off = rates["off"]

    if args.trace_out:
        # measure_entry builds its probes internally; one extra
        # instrumented run supplies the uploadable Chrome trace.
        tracer = TraceProbe()
        simulate(config, probe=MultiProbe(
            [tracer, WindowedCounterProbe(window_cycles=200)]))
        tracer.write_chrome_trace(args.trace_out)

    print(f"probe overhead, {args.network} {config.num_nodes} nodes, "
          f"load {args.load}, {args.cycles} cycles, best of {args.repeats}:")
    for name, rate in rates.items():
        overhead = (off - rate) / off if off else 0.0
        print(f"  {name:<9} {rate:>12,.0f} cyc/s   overhead {overhead:+7.1%}")

    if args.out:
        save_baseline(bench_document(entries, repeats=args.repeats), args.out)
        print(f"baseline -> {args.out}")

    failed = False
    null_overhead = (off - rates["null"]) / off if off else 0.0
    if null_overhead > args.threshold:
        print(
            f"FAIL: null-probe overhead {null_overhead:.1%} exceeds "
            f"threshold {args.threshold:.0%}",
            file=sys.stderr,
        )
        failed = True
    else:
        print(f"ok: null-probe overhead {null_overhead:.1%} "
              f"<= threshold {args.threshold:.0%}")
    null = rates["null"]
    flight_overhead = (null - rates["flight"]) / null if null else 0.0
    if flight_overhead > args.flight_threshold:
        print(
            f"FAIL: flight-recorder overhead {flight_overhead:.1%} over the "
            f"null probe exceeds threshold {args.flight_threshold:.0%}",
            file=sys.stderr,
        )
        failed = True
    else:
        print(f"ok: flight-recorder overhead {flight_overhead:+.1%} over "
              f"the null probe <= threshold {args.flight_threshold:.0%}")
    statehash_overhead = (null - rates["statehash"]) / null if null else 0.0
    if statehash_overhead > args.statehash_threshold:
        print(
            f"FAIL: state-digest overhead {statehash_overhead:.1%} over the "
            f"null probe exceeds threshold {args.statehash_threshold:.0%}",
            file=sys.stderr,
        )
        failed = True
    else:
        print(f"ok: state-digest overhead {statehash_overhead:+.1%} over "
              f"the null probe <= threshold {args.statehash_threshold:.0%}")
    checkpoint_overhead = (null - rates["checkpoint"]) / null if null else 0.0
    if checkpoint_overhead > args.checkpoint_threshold:
        print(
            f"FAIL: checkpoint-probe overhead {checkpoint_overhead:.1%} over "
            f"the null probe exceeds threshold {args.checkpoint_threshold:.0%}",
            file=sys.stderr,
        )
        failed = True
    else:
        print(f"ok: checkpoint-probe overhead {checkpoint_overhead:+.1%} over "
              f"the null probe <= threshold {args.checkpoint_threshold:.0%}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
