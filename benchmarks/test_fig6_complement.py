"""Figure 6 c–d — 16-ary 2-cube under complement traffic (paper §9).

Paper: the inversion — every packet crosses the bisection (theoretical
bound: 50% of capacity) and dimension-order routing "helps prevent
conflicts": the deterministic algorithm is near-optimal at ≈47% while
Duato's adaptive algorithm saturates early at ≈35%, with "a wide gap
between the network latencies at medium loads".
"""

from repro.experiments.fig6 import fig6_experiment
from repro.experiments.report import render_cnf
from repro.metrics.saturation import saturation_point

from .conftest import run_once


def test_fig6_complement(benchmark, reporter):
    cnf = run_once(benchmark, lambda: fig6_experiment("complement"))
    reporter("fig6_complement", render_cnf(cnf))

    sustained = cnf.sustained_summary()
    # the inversion: deterministic beats adaptive on this pattern
    assert sustained["deterministic"] > sustained["Duato"]
    # deterministic close to the 50% bisection bound (paper: 47%)
    assert 0.38 <= sustained["deterministic"] <= 0.50
    # adaptive saturates early (paper: ~35%)
    by_label = {s.label: s for s in cnf.series}
    assert saturation_point(by_label["Duato"]) < saturation_point(by_label["deterministic"])

    # wide latency gap at medium load (paper Fig 6d)
    idx = next(i for i, p in enumerate(by_label["Duato"].points) if p.offered >= 0.4)
    lat_det = by_label["deterministic"].points[idx].latency_cycles
    lat_duato = by_label["Duato"].points[idx].latency_cycles
    assert lat_duato > 1.15 * lat_det
