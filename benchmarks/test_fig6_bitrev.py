"""Figure 6 g–h — 16-ary 2-cube under bit-reversal traffic (paper §9).

Paper: 16 palindrome nodes inject nothing, leaving underloaded areas near
the diagonals; the adaptive algorithm exploits them — saturation ≈60% vs
the deterministic ≈20%, the largest gap of all patterns.
"""

from repro.experiments.fig6 import fig6_experiment
from repro.experiments.report import render_cnf
from repro.metrics.saturation import saturation_point

from .conftest import run_once


def test_fig6_bitrev(benchmark, reporter):
    cnf = run_once(benchmark, lambda: fig6_experiment("bitrev"))
    reporter("fig6_bitrev", render_cnf(cnf))

    by_label = {s.label: s for s in cnf.series}
    # peak rather than sustained: the adaptive curve degrades somewhat
    # beyond saturation on this pattern (visible in the paper's Fig 6g)
    peak_duato = by_label["Duato"].peak_accepted()
    peak_det = by_label["deterministic"].peak_accepted()
    assert peak_duato >= 2.0 * peak_det
    assert 0.45 <= peak_duato <= 0.75  # paper: ~60%
    assert 0.12 <= peak_det <= 0.32  # paper: ~20%
    assert saturation_point(by_label["deterministic"]) < saturation_point(
        by_label["Duato"]
    )
