"""Batch permutation drains (extension of §6's global-permutation scenario).

Injects one full permutation at once — operation far above saturation —
and measures the makespan on both networks.  The steady-state results of
Figures 5–6 predict the ordering: complement drains fastest on the tree
(congestion-free) and slowest per-capacity on the cube (bisection-bound),
while transpose/bitrev need the adaptive cube algorithm.
"""

from repro.experiments.drain import drain_permutation
from repro.experiments.report import render_table
from repro.sim.run import cube_config, tree_config

from .conftest import run_once

PATTERNS = ("complement", "transpose", "bitrev")


def run_all():
    out = {}
    for pattern in PATTERNS:
        tree = drain_permutation(tree_config(vcs=4, pattern=pattern, seed=43))
        cube = drain_permutation(
            cube_config(algorithm="duato", pattern=pattern, seed=43)
        )
        out[pattern] = (tree, cube)
    return out


def test_permutation_drains(benchmark, reporter):
    results = run_once(benchmark, run_all)
    reporter(
        "drain_permutations",
        render_table(
            [
                "pattern",
                "tree makespan (cyc)",
                "tree avg lat",
                "cube makespan (cyc)",
                "cube avg lat",
            ],
            [
                [
                    pattern,
                    tree.makespan_cycles,
                    tree.avg_latency_cycles,
                    cube.makespan_cycles,
                    cube.avg_latency_cycles,
                ]
                for pattern, (tree, cube) in results.items()
            ],
            title="One-shot permutation drains — 256 nodes, 64-byte packets",
        ),
    )
    for pattern, (tree, cube) in results.items():
        assert tree.packets in (240, 256)  # fixed points excluded
        assert cube.packets == tree.packets
        # a full permutation cannot drain faster than one packet stream
        # through a single ejection channel plus the pipeline depth
        assert tree.makespan_cycles >= tree.config.packet_flits
        assert cube.makespan_cycles >= cube.config.packet_flits
    # the congestion-free pattern drains fastest on the tree
    tree_makespans = {p: results[p][0].makespan_cycles for p in PATTERNS}
    assert tree_makespans["complement"] == min(tree_makespans.values())
    # and the lower bound is nearly met: every node receives exactly one
    # 32-flit packet over its own ejection channel
    assert tree_makespans["complement"] < 5 * 32
