"""Fault-degradation bench — torus resilience under Duato (extension).

Injects growing numbers of random lane-level link faults into the
16-ary 2-cube and measures the sustained uniform-traffic throughput
under Duato's adaptive algorithm.  Faults seize only adaptive lanes, so
the validated escape subnetwork stays intact: expected shape is the same
graceful, roughly proportional degradation as the fat-tree bench — no
deadlocks, no collapse — with the escape-channel share of routing
decisions rising as faults squeeze the adaptive lanes.
"""

from repro.experiments.report import render_table
from repro.faults import inject_cube_link_faults, random_cube_link_faults
from repro.profiles import get_profile
from repro.sim.run import build_engine, cube_config

from .conftest import run_once

#: 16-ary 2-cube: 256 nodes x 2 dims x 2 directions = 1024 channel directions
FAULT_COUNTS = (0, 51, 102, 205)  # 0%, 5%, 10%, 20%
LOAD = 1.0


def run_all():
    profile = get_profile()
    rows = []
    for count in FAULT_COUNTS:
        eng = build_engine(
            cube_config(
                algorithm="duato", vcs=4, load=LOAD, seed=47,
                warmup_cycles=profile.warmup_cycles,
                total_cycles=profile.total_cycles,
            )
        )
        faults = random_cube_link_faults(eng.topology, count, seed=5)
        inject_cube_link_faults(eng, faults)
        res = eng.run()
        eng.audit()
        rows.append(
            (count, res.accepted_fraction, res.avg_latency_cycles,
             eng.routing.escape_fraction())
        )
    return rows


def test_fault_degradation_cube(benchmark, reporter):
    rows = run_once(benchmark, run_all)
    reporter(
        "fault_degradation_cube",
        render_table(
            ["failed channel lanes", "accepted (frac of capacity)",
             "latency (cyc)", "escape fraction"],
            [list(r) for r in rows],
            title="Torus fault degradation — uniform traffic at full load, Duato routing",
        ),
    )
    accepted = [r[1] for r in rows]
    escape = [r[3] for r in rows]
    # monotone non-increasing within noise
    for healthy, degraded in zip(accepted, accepted[1:]):
        assert degraded <= healthy + 0.03
    # graceful: 20% lane loss keeps more than half the throughput
    assert accepted[-1] > 0.5 * accepted[0]
    # and strictly measurable: 20% loss does cost something
    assert accepted[-1] < accepted[0]
    # faults squeeze adaptive lanes, pushing traffic onto escape channels
    assert escape[-1] > escape[0]
