"""Exception hierarchy for the repro package.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch package failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class TopologyError(ReproError):
    """Invalid topology parameters or malformed topology queries.

    Raised, for example, when a k-ary n-tree is requested with ``k < 2`` or
    when a node id outside ``[0, N)`` is passed to a coordinate helper.
    """


class RoutingError(ReproError):
    """A routing algorithm was asked to route an impossible request.

    This indicates an internal inconsistency (e.g. a packet whose current
    switch is not on any minimal path to its destination) and should never
    occur during a well-formed simulation.
    """


class ConfigurationError(ReproError):
    """Invalid simulation or experiment configuration values."""


class SimulationError(ReproError):
    """The simulation engine detected an inconsistent runtime state.

    The engine performs cheap invariant checks (credit underflow, buffer
    overflow, livelock watchdog); a violation raises this error rather than
    silently corrupting statistics.
    """


class DeadlockError(SimulationError):
    """The progress watchdog concluded the network is deadlocked.

    The routing algorithms implemented here are deadlock-free by
    construction, so this error signals an implementation bug, a custom
    user routing function that is not deadlock-free, or an injected fault
    that an unprotected (deterministic) algorithm cannot route around.

    Attributes:
        snapshot: a :class:`repro.sim.diagnostics.DeadlockSnapshot` of the
            stalled network (blocked packets, held lanes, cycle counters),
            or ``None`` when the raiser had no engine at hand.
    """

    def __init__(self, message: str, snapshot=None):
        super().__init__(message)
        self.snapshot = snapshot

    def __reduce__(self):
        # keep the snapshot across pickling (sweep worker processes)
        return (type(self), (self.args[0], self.snapshot))


class PointTimeoutError(ReproError):
    """A sweep point exceeded its wall-clock budget and was terminated.

    Raised by the resilient sweep harness; the simulation process is
    killed, so no partial statistics survive — unless checkpointing was
    active, in which case the retry resumes from the newest valid
    checkpoint instead of starting over.
    """


class WorkerDiedError(SimulationError):
    """A supervised sweep worker died or stopped heartbeating.

    Derives from :class:`SimulationError` so the resilient sweep's retry
    machinery treats it like any other transient point failure; the
    supervisor additionally applies backoff before relaunching, since a
    dead worker usually means host pressure (OOM killer, preemption)
    rather than a simulation bug.
    """


class CheckpointError(ReproError):
    """A checkpoint could not be written, read or verified.

    Covers unpicklable live resources (an open event-stream file
    handle), truncated or corrupt payloads, digest mismatches between
    the header and the restored engine's fingerprint, and checkpoints
    recorded under a different config digest (stale)."""


class AnalysisError(ReproError):
    """Post-processing failure, e.g. saturation requested on an empty sweep."""
