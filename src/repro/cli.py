"""Command-line interface: ``repro-net`` / ``python -m repro``.

Subcommands:

* ``run`` — one simulation point, printing the §6 metrics (``--json``
  emits the versioned run document with telemetry instead);
* ``sweep`` — a load sweep for one configuration (one CNF curve), with
  live per-point progress on stderr (``--json`` for machine output);
* ``trace`` — one instrumented run: packet-lifecycle event trace
  (Chrome ``trace_event`` and/or JSONL) plus windowed per-lane counters
  (compose ``--flight`` / ``--statehash`` for the timeline and digest
  chain alongside the trace);
* ``diff`` — the divergence bisection debugger: compare two runs' state
  digest chains (run documents, ledger records or config JSON), locate
  the first divergent interval, replay both sides to the exact first
  divergent cycle and name the subsystem/link/lane/flit that differs
  (exit 0 identical, 4 diverged);
* ``fig5`` / ``fig6`` / ``fig7`` — regenerate a paper figure's series
  (``--plot`` adds terminal scatter plots for fig5/fig6);
* ``tables`` — print Tables 1 and 2 next to the paper's values;
* ``drain`` — batch-drain one full permutation and report the makespan;
* ``faults`` — fault-degradation experiments on either network (add
  ``--transient`` for a mid-run fail/repair window with a throughput
  timeline);
* ``chaos`` — randomized fail-stop fault storms with the reliable
  transport installed: goodput-degradation and retransmit-overhead
  curves over a fault-rate × repair-time × load grid, appended to the
  ledger as ``chaos`` records for the scorecard's reliability panel;
* ``analyze`` — congestion forensics from a ``--ledger`` JSONL file:
  the latency-attribution breakdown, wait-for graph digest (deadlock
  precursors) and link-hotspot ranking of a ``--forensics`` run, with
  optional standalone SVG heatmap/breakdown or HTML output;
* ``report`` — render the HTML reproduction scorecard (paper-reference
  overlays + fidelity scores) from a ``--ledger`` JSONL file;
* ``bench`` — record an engine performance baseline
  (``BENCH_<host>.json``: cycles/sec overall and per step phase, probes
  off/on) or ``--compare`` against one (exit 3 on regression);
* ``find-sat`` — bisect the offered load for the saturation point;
* ``dimensions`` — the cube-dimensionality study (§11 outlook);
* ``info`` — topology/normalization facts for a network.

``--cprofile`` (on ``run``, ``sweep`` and ``trace``) wraps the command
in :mod:`cProfile`; note ``--profile`` keeps its historical meaning of
the simulation *effort* profile (fast/default/full).  ``--ledger`` (on
``run``, ``sweep``, ``trace`` and ``faults``) appends every completed
run's document to an append-only JSONL metrics ledger that ``report``
renders into a scorecard.  ``--forensics`` (on ``run`` and ``sweep``)
attaches the congestion-forensics tier — per-packet latency
attribution, wait-for graph sampling, link hotspots — whose document
rides on the run's telemetry into the ledger for ``analyze``.
``--flight`` (on ``run``, ``sweep``, ``trace``, ``chaos`` and
``congestion``) attaches the flight recorder (:mod:`repro.obs.flight`):
a bounded multi-layer time series — engine rates, link occupancy,
transport retransmissions, congestion windows — riding on
``telemetry.flight`` into the run document and ledger for the
scorecard's dynamics panel.  ``--watch`` adds a live in-place status
line on stderr and ``--events PATH`` streams samples/annotations (or
per-point campaign records) as JSONL; both imply ``--flight``.
``--statehash`` (on ``run`` and ``trace``) attaches the state-digest
audit trail (:mod:`repro.obs.statehash`): a bounded chain of layered
Merkle-style state roots on ``telemetry.statehash``, the input of
``diff`` and the scorecard's audit panel; ``--audit`` additionally runs
the engine invariant audit at every digest boundary (and implies
``--statehash``).  ``--checkpoint DIR`` (on ``run``, ``sweep``,
``chaos`` and ``congestion``) writes digest-verified engine
checkpoints (:mod:`repro.sim.checkpoint`) every ``--checkpoint-every``
cycles; ``--resume DIR`` finishes an interrupted run or campaign from
the newest valid checkpoint, reloading already-completed campaign
points from their per-point caches.  Campaigns exit 130 on Ctrl-C and
143 on SIGTERM, flushing completed points either way.

Examples::

    repro-net run --network cube --algorithm duato --load 0.5 --json
    repro-net run --network cube --load 0.5 --statehash --json > a.json
    repro-net diff a.json b.json --out divergence.html
    repro-net run --network cube --pattern transpose --load 0.7 \\
        --forensics --ledger runs.jsonl
    repro-net analyze --ledger runs.jsonl --heatmap hotspots.svg
    repro-net sweep --pattern uniform --ledger runs.jsonl
    repro-net report --ledger runs.jsonl --out scorecard.html
    repro-net bench && repro-net bench --compare BENCH_$(hostname).json
    repro-net trace --network tree --vcs 2 --pattern transpose --load 0.8
    repro-net fig6 --pattern complement --profile fast --plot
    repro-net drain --network tree --pattern bitrev
    repro-net tables
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import signal
import sys
import threading

from .errors import ConfigurationError, ReproError
from .experiments.degradation import degradation_experiment, transient_experiment
from .experiments.dimension import dimension_study
from .experiments.drain import drain_permutation
from .experiments.fig5 import fig5_experiment
from .experiments.fig6 import fig6_experiment
from .experiments.fig7 import fig7_experiment
from .experiments.report import (
    render_ascii_plot,
    render_cnf,
    render_comparison,
    render_delay_table,
)
from .experiments.search import find_saturation
from .experiments.sweep import default_loads, run_sweep
from .experiments.tables import table1_rows, table2_rows
from .profiles import get_profile
from .sim.run import cube_config, simulate, tree_config
from .timing.normalization import cube_scaling, equal_cost_pairs, tree_scaling
from .topology.cube import KAryNCube
from .topology.tree import KAryNTree
from .traffic.patterns import PATTERNS


def _add_common(p: argparse.ArgumentParser, with_algo: bool = True) -> None:
    p.add_argument("--network", choices=("tree", "cube"), default="tree")
    p.add_argument("--k", type=int, default=None, help="radix (default: paper network)")
    p.add_argument("--n", type=int, default=None, help="dimension/levels")
    if with_algo:
        p.add_argument(
            "--algorithm",
            default=None,
            help="tree_adaptive (tree) or dor/duato (cube); default per network",
        )
    p.add_argument("--vcs", type=int, default=4)
    p.add_argument("--pattern", choices=sorted(PATTERNS), default="uniform")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--profile", default=None, help="fast, default or full")
    p.add_argument(
        "--arbiter",
        choices=("round_robin", "age"),
        default="round_robin",
        help="lane arbitration policy (age = oldest packet first)",
    )


def _add_observability(p: argparse.ArgumentParser) -> None:
    """Machine output, ledger and CPU-profiling flags shared by
    run/sweep/trace."""
    p.add_argument(
        "--json",
        action="store_true",
        help="emit a versioned machine-readable JSON document (with telemetry)",
    )
    p.add_argument(
        "--ledger",
        default=None,
        metavar="JSONL",
        help=(
            "append every completed run's versioned document to this JSONL "
            "metrics ledger (deduplicated by config digest + seed)"
        ),
    )
    p.add_argument(
        "--cprofile",
        nargs="?",
        const="-",
        default=None,
        metavar="STATS",
        help=(
            "run under cProfile; with no value print the top functions to "
            "stderr, with a path dump pstats there (--profile remains the "
            "simulation effort profile)"
        ),
    )


def _add_flight(p: argparse.ArgumentParser) -> None:
    """Flight-recorder flags shared by run/sweep/chaos/congestion."""
    p.add_argument(
        "--flight",
        nargs="?",
        const=0,
        default=None,
        type=int,
        metavar="CYCLES",
        help=(
            "attach the flight recorder (bounded multi-layer time series on "
            "telemetry.flight); optional value overrides the sampling "
            "interval in cycles (default 128)"
        ),
    )
    p.add_argument(
        "--watch",
        action="store_true",
        help=(
            "live in-place status line on stderr while the run/campaign "
            "progresses (implies --flight)"
        ),
    )
    p.add_argument(
        "--events",
        default=None,
        metavar="JSONL",
        help=(
            "stream flight samples/annotations to this JSONL file as they "
            "happen (implies --flight); campaigns stream one point record "
            "per completed point"
        ),
    )


def _flight_config(args):
    """The FlightConfig requested by --flight/--watch/--events, or None."""
    interval = getattr(args, "flight", None)
    if interval is None and not (
        getattr(args, "watch", False) or getattr(args, "events", None)
    ):
        return None
    from .obs.flight import FlightConfig

    if interval:
        return FlightConfig(interval_cycles=interval)
    return FlightConfig()


def _add_statehash(p: argparse.ArgumentParser) -> None:
    """State-digest audit-trail flags shared by run/trace."""
    p.add_argument(
        "--statehash",
        nargs="?",
        const=0,
        default=None,
        type=int,
        metavar="CYCLES",
        help=(
            "attach the state-digest audit trail (bounded Merkle-style "
            "digest chain on telemetry.statehash, the input of `diff`); "
            "optional value overrides the digest interval in cycles "
            "(default 128)"
        ),
    )
    p.add_argument(
        "--audit",
        action="store_true",
        help=(
            "run the engine invariant audit at every digest boundary "
            "(implies --statehash); violations then surface within one "
            "interval of their origin instead of at drain time"
        ),
    )


def _statehash_config(args):
    """The StateDigestConfig requested by --statehash/--audit, or None."""
    interval = getattr(args, "statehash", None)
    audit = getattr(args, "audit", False)
    if interval is None and not audit:
        return None
    from .obs.statehash import StateDigestConfig

    if interval:
        return StateDigestConfig(interval_cycles=interval, audit=audit)
    return StateDigestConfig(audit=audit)


def _compose_probes(probes):
    """One probe from many (None entries dropped), or None."""
    live = [p for p in probes if p is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]
    from .obs import MultiProbe

    return MultiProbe(live)


def _watch_sampler(stream=None):
    """An ``on_sample`` callback rendering one in-place status line."""
    stream = stream or sys.stderr

    def on_sample(row) -> None:
        span = row["span"] or 1
        parts = [
            f"t={row['cycle'] + 1:>8,}",
            f"inj {row['injected'] / span:6.2f}",
            f"dlv {row['delivered'] / span:6.2f} fl/cyc",
            f"in-flight {row['in_flight']:>6,}",
            f"backlog {row['backlog']:>8,}",
        ]
        if "retx" in row:
            parts.append(f"retx {row['retx']:>5}")
        if "cwnd_mean" in row:
            parts.append(f"cwnd {row['cwnd_mean']:5.2f}")
            parts.append(f"held {row['held']:>5}")
        print("\r  " + "  ".join(parts) + "\x1b[K", end="", file=stream, flush=True)

    return on_sample


def _campaign_events(path):
    """A per-point JSONL event writer for campaign --events, or None."""
    if path is None:
        return None
    fh = open(path, "w", encoding="utf-8")

    def write(p) -> None:
        record = {
            "type": "point",
            "done": p.done,
            "total": p.total,
            "label": p.label,
            "offered": p.offered,
            "status": p.status,
            "flight": getattr(p, "flight", None),
        }
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.flush()

    write.close = fh.close
    return write


def _campaign_progress(args):
    """Compose the progress callback for a campaign command.

    Honors ``--watch`` (in-place status line instead of one line per
    point) and ``--events`` (per-point JSONL records, flight digest
    included).  Returns ``(progress, close)``.
    """
    printer = _progress_printer(inplace=getattr(args, "watch", False))
    events = _campaign_events(getattr(args, "events", None))
    if events is None:
        return printer, lambda: None

    def progress(p) -> None:
        printer(p)
        events(p)

    return progress, events.close


def _add_checkpoint(p: argparse.ArgumentParser) -> None:
    """Checkpoint/resume flags shared by run/sweep/chaos/congestion."""
    p.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help=(
            "write digest-verified engine checkpoints into this directory "
            "(periodic snapshots + manifest); an interrupted run/campaign "
            "can later be finished with --resume DIR"
        ),
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=1000,
        metavar="CYCLES",
        help="cycles between periodic checkpoints (default 1000)",
    )
    p.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help=(
            "resume from an existing checkpoint directory: completed "
            "campaign points reload from their per-point caches, "
            "interrupted ones restart from their newest valid checkpoint "
            "(corrupt or stale checkpoints are discarded with a recorded "
            "finding); keeps checkpointing into the same directory"
        ),
    )


def _checkpoint_dir(args) -> str | None:
    """The checkpoint directory requested by --checkpoint/--resume."""
    checkpoint = getattr(args, "checkpoint", None)
    resume = getattr(args, "resume", None)
    if resume is not None:
        if (
            checkpoint is not None
            and pathlib.Path(checkpoint).resolve() != pathlib.Path(resume).resolve()
        ):
            raise ConfigurationError(
                "--checkpoint and --resume name different directories"
            )
        if not pathlib.Path(resume).is_dir():
            raise ConfigurationError(
                f"--resume directory {resume!r} does not exist"
            )
        return resume
    return checkpoint


def _checkpoint_policy(args):
    """The per-run CheckpointPolicy requested on the command line, or None."""
    directory = _checkpoint_dir(args)
    if directory is None:
        return None
    from .sim.checkpoint import CheckpointPolicy

    return CheckpointPolicy(
        directory=directory, interval_cycles=args.checkpoint_every
    )


def _campaign_checkpoints(args):
    """The CampaignCheckpoints supervision requested, or None."""
    directory = _checkpoint_dir(args)
    if directory is None:
        return None
    from .experiments.sweep import CampaignCheckpoints

    return CampaignCheckpoints(
        directory=directory, interval_cycles=args.checkpoint_every
    )


class _SigtermInterrupt(KeyboardInterrupt):
    """SIGTERM, promoted to the KeyboardInterrupt teardown path."""


@contextlib.contextmanager
def _sigterm_as_interrupt():
    """Give SIGTERM the same grace as Ctrl-C for the enclosed campaign.

    Campaigns already checkpoint in-flight points and flush completed
    ones on KeyboardInterrupt; a supervisor's TERM (systemd, Slurm, CI
    runners) deserves the identical teardown instead of an abrupt die.
    The previous handler is restored on exit; off the main thread this
    is a no-op (signal handlers can only be installed there).
    """
    if threading.current_thread() is not threading.main_thread() or not hasattr(
        signal, "SIGTERM"
    ):
        yield
        return

    def raise_interrupt(signum, frame):
        raise _SigtermInterrupt

    previous = signal.signal(signal.SIGTERM, raise_interrupt)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _open_ledger(args):
    """The Ledger named by ``--ledger``, or None."""
    path = getattr(args, "ledger", None)
    if path is None:
        return None
    from .obs.ledger import Ledger

    return Ledger(path)


def _make_config(args, load: float):
    profile = get_profile(args.profile)
    common = dict(
        vcs=args.vcs,
        pattern=args.pattern,
        load=load,
        seed=args.seed,
        warmup_cycles=profile.warmup_cycles,
        total_cycles=profile.total_cycles,
        arbiter=getattr(args, "arbiter", "round_robin"),
    )
    if args.network == "tree":
        return tree_config(k=args.k or 4, n=args.n or 4, **common)
    algorithm = getattr(args, "algorithm", None) or "duato"
    return cube_config(k=args.k or 16, n=args.n or 2, algorithm=algorithm, **common)


def _with_cprofile(args, body):
    """Run ``body`` under cProfile when ``--cprofile`` was given.

    ``--cprofile`` with no value prints the top cumulative functions to
    stderr; with a path it dumps a :mod:`pstats` file for ``snakeviz``
    and friends.  (The effort profile stays on ``--profile``.)
    """
    target = getattr(args, "cprofile", None)
    if target is None:
        return body()
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return body()
    finally:
        profiler.disable()
        if target == "-":
            pstats.Stats(profiler, stream=sys.stderr).sort_stats(
                "cumulative"
            ).print_stats(25)
        else:
            profiler.dump_stats(target)
            print(f"cProfile stats written to {target}", file=sys.stderr)


def cmd_run(args) -> int:
    def body() -> int:
        import dataclasses

        config = _make_config(args, args.load)
        if args.latencies or args.forensics:
            config = dataclasses.replace(config, collect_latencies=True)
        flight = _flight_config(args)
        recorder = None
        if flight is not None:
            from .obs.flight import FlightRecorder

            recorder = FlightRecorder(
                flight,
                on_sample=_watch_sampler() if args.watch else None,
                events=args.events,
            )
        digests = None
        statehash = _statehash_config(args)
        if statehash is not None:
            from .obs.statehash import StateDigestProbe

            digests = StateDigestProbe(statehash)
        extra = _compose_probes([recorder, digests])
        checkpoint = _checkpoint_policy(args)
        deadlock = probe = None
        if args.forensics and checkpoint is not None:
            if extra is not None:
                raise ConfigurationError(
                    "--checkpoint/--resume with --forensics cannot also take "
                    "--flight/--statehash on run (drop one tier)"
                )
            from .obs.forensics import simulate_with_forensics

            result = simulate_with_forensics(
                config, sample_every=args.sample_every, checkpoint=checkpoint
            )
        elif args.forensics:
            from .obs.forensics import run_with_forensics

            result, probe, deadlock = run_with_forensics(
                config, sample_every=args.sample_every, probe=extra
            )
        else:
            result = simulate(config, probe=extra, checkpoint=checkpoint)
        if args.watch:
            print(file=sys.stderr)  # finish the in-place status line
        ledger = _open_ledger(args)
        if ledger is not None:
            ledger.append_run(result, kind="forensics" if args.forensics else "run")
        if args.json:
            from .metrics.io import run_result_to_dict

            doc = run_result_to_dict(result)
            if args.forensics:
                doc["deadlock"] = str(deadlock) if deadlock is not None else None
            print(json.dumps(doc, indent=1))
            return 1 if deadlock is not None else 0
        print(result.summary())
        if result.telemetry is not None:
            print(result.telemetry.summary())
            print(result.telemetry.phase_summary())
        pct = result.latency_percentiles()
        if pct is not None:
            from .obs.percentiles import format_percentiles

            print(format_percentiles(pct))
        if probe is not None:
            from .obs.forensics import describe_forensics

            print(describe_forensics(probe.summary()))
        if result.telemetry is not None and result.telemetry.flight is not None:
            from .obs.flight import describe_flight

            print(describe_flight(result.telemetry.flight))
        if result.telemetry is not None and result.telemetry.statehash is not None:
            from .obs.statehash import describe_statehash

            print(describe_statehash(result.telemetry.statehash))
        if deadlock is not None:
            print(f"error: {deadlock}", file=sys.stderr)
            return 1
        return 0

    return _with_cprofile(args, body)


def _progress_printer(stream=None, inplace=False):
    """Live per-point sweep progress (stderr by default).

    ``inplace`` rewrites one status line (``--watch``) instead of
    printing one line per point; either way a flight digest rides along
    when the point was flight-instrumented.
    """
    stream = stream or sys.stderr

    def report(p) -> None:
        rate = f"{p.cycles_per_sec:,.0f} cyc/s" if p.cycles_per_sec else p.status
        line = f"  [{p.done}/{p.total}] load {p.offered:.3f} {p.status:<6} {rate}"
        digest = getattr(p, "flight", None)
        if digest:
            annotations = ",".join(digest["annotations"]) or "-"
            line += f"  flight {digest['rows']} rows [{annotations}]"
        if inplace:
            end = "\n" if p.done >= p.total else ""
            print("\r" + line + "\x1b[K", end=end, file=stream, flush=True)
        else:
            print(line, file=stream)

    return report


def cmd_sweep(args) -> int:
    def body() -> int:
        profile = get_profile(args.profile)
        loads = default_loads(profile.sweep_points)
        telemetry: list = []

        flight = _flight_config(args)
        simulate_fn = None
        if flight is not None:
            if args.forensics:
                raise ConfigurationError(
                    "--forensics and --flight cannot be combined on sweep "
                    "(run supports both at once)"
                )
            from functools import partial

            from .obs.flight import simulate_with_flight

            simulate_fn = partial(simulate_with_flight, flight=flight)
        campaign_progress, close_events = _campaign_progress(args)

        def progress(p) -> None:
            campaign_progress(p)
            if p.cycles_per_sec is not None:
                telemetry.append(p.cycles_per_sec)

        try:
            with _sigterm_as_interrupt():
                series = run_sweep(
                    lambda load: _make_config(args, load),
                    loads,
                    label=args.pattern,
                    progress=progress,
                    ledger=_open_ledger(args),
                    forensics=args.forensics,
                    simulate_fn=simulate_fn,
                    checkpoints=_campaign_checkpoints(args),
                )
        except _SigtermInterrupt:
            print(
                "terminated: completed points were flushed to the cache/ledger",
                file=sys.stderr,
            )
            return 143
        except KeyboardInterrupt:
            print(
                "interrupted: completed points were flushed to the cache/ledger",
                file=sys.stderr,
            )
            return 130
        finally:
            close_events()
        from .metrics.saturation import saturation_point

        if args.json:
            from .metrics.io import sweep_document

            print(json.dumps(sweep_document(series, telemetry), indent=1))
            return 0

        from .experiments.report import render_table

        rows = [
            [p.offered, p.offered_measured, p.accepted, p.latency_cycles, p.delivered_packets]
            for p in series.points
        ]
        print(
            render_table(
                ["offered", "measured", "accepted", "latency_cyc", "packets"],
                rows,
                title=f"{args.network} sweep, {args.pattern} traffic",
            )
        )
        print(f"saturation: {saturation_point(series):.3f} of capacity")
        return 0

    return _with_cprofile(args, body)


def cmd_trace(args) -> int:
    def body() -> int:
        from .errors import DeadlockError
        from .obs import MultiProbe, TraceProbe, WindowedCounterProbe
        from .sim.run import build_engine

        config = _make_config(args, args.load)
        tracer = TraceProbe(max_events=args.max_events)
        counters = WindowedCounterProbe(window_cycles=args.window)
        probes = [tracer, counters]
        recorder = None
        flight = _flight_config(args)
        if flight is not None:
            from .obs.flight import FlightRecorder

            recorder = FlightRecorder(
                flight,
                on_sample=_watch_sampler() if args.watch else None,
                events=args.events,
            )
            probes.append(recorder)
        statehash = _statehash_config(args)
        if statehash is not None:
            from .obs.statehash import StateDigestProbe

            probes.append(StateDigestProbe(statehash))
        engine = build_engine(config, probe=MultiProbe(probes))
        deadlocked = None
        try:
            result = engine.run()
        except DeadlockError as exc:
            # the trace up to the wedge is exactly what one wants to see
            deadlocked = exc
            result = engine.result
        if recorder is not None and args.watch:
            print(file=sys.stderr)

        ledger = _open_ledger(args)
        if ledger is not None:
            ledger.append_run(result, kind="trace")

        out = pathlib.Path(args.out)
        written = []
        if args.format in ("chrome", "both"):
            tracer.write_chrome_trace(out)
            written.append(str(out))
        if args.format in ("jsonl", "both"):
            jsonl = out.with_suffix(".jsonl") if args.format == "both" else out
            tracer.write_jsonl(jsonl)
            written.append(str(jsonl))
        if args.counters:
            pathlib.Path(args.counters).write_text(
                json.dumps({"window_cycles": args.window, "windows": counters.to_dicts()})
            )
            written.append(args.counters)

        if args.json:
            from .metrics.io import run_result_to_dict

            doc = run_result_to_dict(result)
            doc["trace"] = {
                "events": len(tracer.events),
                "truncated": tracer.truncated,
                "counter_windows": len(counters.windows),
                "written": written,
                "deadlock": str(deadlocked) if deadlocked is not None else None,
            }
            print(json.dumps(doc, indent=1))
            return 1 if deadlocked is not None else 0

        print(result.summary())
        if result.telemetry is not None:
            print(result.telemetry.summary())
            print(result.telemetry.phase_summary())
        print(
            f"trace: {len(tracer.events)} events"
            + (" (truncated)" if tracer.truncated else "")
            + f", {len(counters.windows)} counter windows -> {', '.join(written)}"
        )
        if result.telemetry is not None and result.telemetry.flight is not None:
            from .obs.flight import describe_flight

            print(describe_flight(result.telemetry.flight))
        if result.telemetry is not None and result.telemetry.statehash is not None:
            from .obs.statehash import describe_statehash

            print(describe_statehash(result.telemetry.statehash))
        blocked = counters.most_blocked(3)
        if blocked and blocked[0][1]["blocked_cycles"]:
            print("most blocked channel directions (switch, port):")
            for (switch, port), tot in blocked:
                if not tot["blocked_cycles"]:
                    continue
                print(
                    f"  sw{switch} port{port}: {tot['blocked_cycles']} blocked cycles, "
                    f"{tot['flits']} flits over {tot['cycles']} measured cycles"
                )
        if deadlocked is not None:
            print(f"error: {deadlocked}", file=sys.stderr)
            return 1
        return 0

    return _with_cprofile(args, body)


def cmd_diff(args) -> int:
    from .obs.diff import DIVERGENCE_EXIT_CODE, describe_diff, diff_runs

    doc = diff_runs(
        args.a,
        args.b,
        interval=args.interval,
        max_findings=args.max_findings,
    )
    if args.out:
        from .obs.report import render_diff_html

        pathlib.Path(args.out).write_text(render_diff_html(doc))
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(describe_diff(doc))
    return 0 if doc["identical"] else DIVERGENCE_EXIT_CODE


def cmd_fig5(args) -> int:
    cnf = fig5_experiment(args.pattern, get_profile(args.profile), seed=args.seed)
    print(render_cnf(cnf))
    if getattr(args, "plot", False):
        print()
        print(render_ascii_plot(cnf, "accepted"))
        print()
        print(render_ascii_plot(cnf, "latency"))
    return 0


def cmd_fig6(args) -> int:
    cnf = fig6_experiment(args.pattern, get_profile(args.profile), seed=args.seed)
    print(render_cnf(cnf))
    if getattr(args, "plot", False):
        print()
        print(render_ascii_plot(cnf, "accepted"))
        print()
        print(render_ascii_plot(cnf, "latency"))
    return 0


def cmd_fig7(args) -> int:
    print(render_comparison(fig7_experiment(args.pattern, get_profile(args.profile))))
    return 0


def cmd_drain(args) -> int:
    result = drain_permutation(_make_config(args, load=0.0))
    print(f"pattern:         {args.pattern}")
    print(f"packets drained: {result.packets}")
    print(f"makespan:        {result.makespan_cycles} cycles")
    print(f"avg latency:     {result.avg_latency_cycles:.1f} cycles")
    print(f"max latency:     {result.max_latency_cycles} cycles")
    print(f"throughput:      {result.throughput_flits_per_cycle:.2f} flits/cycle aggregate")
    return 0


def cmd_find_sat(args) -> int:
    estimate = find_saturation(
        lambda load: _make_config(args, load),
        resolution=args.resolution,
    )
    print(
        f"saturation: {estimate.load:.3f} of capacity "
        f"(bracket [{estimate.lo:.3f}, {estimate.hi:.3f}], "
        f"{estimate.evaluations} simulations)"
    )
    return 0


def cmd_dimensions(args) -> int:
    from .experiments.report import render_table

    rows = dimension_study(
        algorithm=args.algorithm or "duato",
        pattern=args.pattern,
        profile=get_profile(args.profile),
    )
    print(
        render_table(
            ["shape", "flit B", "wires", "T_clock ns", "sat bits/ns", "latency ns"],
            [
                [
                    r.variant.label,
                    r.variant.flit_bytes,
                    r.variant.wire.value,
                    round(r.variant.clock_ns, 2),
                    round(r.saturation_bits_per_ns, 1),
                    round(r.low_load_latency_ns, 1),
                ]
                for r in rows
            ],
            title="Cube dimensionality under physical constraints (N=256)",
        )
    )
    return 0


def cmd_faults(args) -> int:
    from .experiments.report import render_table

    profile = get_profile(args.profile)
    ledger = _open_ledger(args)
    if args.transient:
        result, row = transient_experiment(
            network=args.network,
            fraction=args.fraction,
            fail_at=args.fail_at,
            repair_at=args.repair_at,
            profile=profile,
            load=args.load,
            vcs=args.vcs,
            seed=args.seed,
            fault_seed=args.fault_seed,
            k=args.k,
            n=args.n,
            algorithm=getattr(args, "algorithm", None),
            ledger=ledger,
        )
        print(result.summary())
        print(f"faults: {row.faults} channel directions failed mid-run, then repaired")
        if result.throughput_timeline:
            peak = max(result.throughput_timeline) or 1
            print("delivered flits per interval (fault window dips, repair recovers):")
            for i, flits in enumerate(result.throughput_timeline):
                bar = "#" * round(40 * flits / peak)
                print(f"  t{i:<3d} {flits:>7d} {bar}")
        return 0
    try:
        fractions = tuple(float(f) for f in args.fractions.split(",") if f.strip())
    except ValueError:
        raise ConfigurationError(f"bad --fractions {args.fractions!r}") from None
    rows = degradation_experiment(
        network=args.network,
        fractions=fractions,
        profile=profile,
        load=args.load,
        vcs=args.vcs,
        seed=args.seed,
        fault_seed=args.fault_seed,
        k=args.k,
        n=args.n,
        algorithm=getattr(args, "algorithm", None),
        ledger=ledger,
    )
    print(
        render_table(
            ["fault frac", "failed chans", "accepted", "latency_cyc", "escape frac"],
            [
                [
                    r.fraction,
                    r.faults,
                    round(r.accepted, 4),
                    None if r.latency_cycles is None else round(r.latency_cycles, 1),
                    None if r.escape_fraction is None else round(r.escape_fraction, 3),
                ]
                for r in rows
            ],
            title=f"{args.network} fault degradation, load {args.load:g}",
        )
    )
    return 0


def cmd_chaos(args) -> int:
    from .experiments.chaos import chaos_campaign, degradation_rows
    from .experiments.report import render_table
    from .traffic.transport import TransportConfig

    profile = get_profile(args.profile)
    try:
        rates = tuple(float(f) for f in args.rates.split(",") if f.strip())
        repairs = tuple(int(f) for f in args.repairs.split(",") if f.strip())
    except ValueError:
        raise ConfigurationError(
            f"bad --rates {args.rates!r} or --repairs {args.repairs!r}"
        ) from None
    transport = None
    if args.base_timeout is not None or args.max_retries is not None:
        from .experiments.chaos import default_transport

        base = default_transport(profile)
        transport = TransportConfig(
            ack_delay=base.ack_delay,
            base_timeout=args.base_timeout or base.base_timeout,
            backoff=base.backoff,
            jitter=base.jitter,
            max_retries=(
                args.max_retries if args.max_retries is not None else base.max_retries
            ),
            seed=base.seed,
        )
    ledger = _open_ledger(args)
    networks = ("tree", "cube") if args.network == "both" else (args.network,)
    all_rows = []
    progress, close_events = _campaign_progress(args)
    try:
        for network in networks:
            print(f"chaos campaign: {network}", file=sys.stderr)
            try:
                with _sigterm_as_interrupt():
                    campaign = chaos_campaign(
                        network=network,
                        fault_rates=rates,
                        repair_grid=repairs,
                        profile=profile,
                        vcs=args.vcs,
                        seed=args.seed,
                        storm_seed=args.storm_seed,
                        k=args.k,
                        n=args.n,
                        algorithm=args.algorithm if args.network != "both" else None,
                        transport=transport,
                        flight=_flight_config(args),
                        parallel=args.parallel,
                        max_workers=args.workers,
                        retries=args.retries,
                        timeout=args.timeout,
                        progress=progress,
                        ledger=ledger,
                        checkpoints=_campaign_checkpoints(args),
                    )
            except _SigtermInterrupt:
                print(
                    "terminated: completed points were flushed to the ledger",
                    file=sys.stderr,
                )
                return 143
            except KeyboardInterrupt:
                print(
                    "interrupted: completed points were flushed to the ledger",
                    file=sys.stderr,
                )
                return 130
            for row in degradation_rows(campaign):
                all_rows.append({"network": network, **row})
    finally:
        close_events()
    if args.json:
        print(json.dumps({"rows": all_rows}, indent=1))
        return 0
    print(
        render_table(
            ["network", "fault rate", "repair", "goodput", "retx ovh",
             "dropped", "gave up", "failures"],
            [
                [
                    r["network"],
                    r["fault_rate"],
                    r["repair_cycles"] or "perm",
                    round(r["goodput_fraction"], 4),
                    round(r["retransmit_overhead"], 4),
                    r["dropped"],
                    r["given_up"],
                    r["failures"],
                ]
                for r in all_rows
            ],
            title="fail-stop chaos campaign (load-averaged per fault rate)",
        )
    )
    if ledger is not None:
        print(
            f"chaos records appended to {args.ledger}; render the goodput "
            "panel with: repro-net report --ledger "
            f"{args.ledger} --out scorecard.html",
            file=sys.stderr,
        )
    return 0


def cmd_congestion(args) -> int:
    from .experiments.congestion import collapse_rows, congestion_campaign
    from .experiments.report import render_table
    from .traffic.transport import TransportConfig

    profile = get_profile(args.profile)
    modes = {"both": (False, True), "open": (False,), "closed": (True,)}[args.mode]
    transport = None
    if (
        args.base_timeout is not None
        or args.backoff is not None
        or args.max_retries is not None
    ):
        from .experiments.chaos import default_transport

        base = default_transport(profile)
        transport = TransportConfig(
            ack_delay=base.ack_delay,
            base_timeout=args.base_timeout or base.base_timeout,
            backoff=args.backoff if args.backoff is not None else base.backoff,
            jitter=base.jitter,
            max_retries=(
                args.max_retries if args.max_retries is not None else base.max_retries
            ),
            seed=base.seed,
        )
    ledger = _open_ledger(args)
    print(f"congestion campaign: {args.network}", file=sys.stderr)
    progress, close_events = _campaign_progress(args)
    try:
        with _sigterm_as_interrupt():
            campaign = congestion_campaign(
                network=args.network,
                modes=modes,
                max_factor=args.max_factor,
                profile=profile,
                vcs=args.vcs,
                pattern=args.pattern,
                seed=args.seed,
                k=args.k,
                n=args.n,
                algorithm=args.algorithm,
                transport=transport,
                flight=_flight_config(args),
                arbiter_closed=args.arbiter_closed,
                parallel=args.parallel,
                max_workers=args.workers,
                retries=args.retries,
                timeout=args.timeout,
                progress=progress,
                ledger=ledger,
                checkpoints=_campaign_checkpoints(args),
            )
    except _SigtermInterrupt:
        print(
            "terminated: completed points were flushed to the ledger",
            file=sys.stderr,
        )
        return 143
    except KeyboardInterrupt:
        print(
            "interrupted: completed points were flushed to the ledger",
            file=sys.stderr,
        )
        return 130
    finally:
        close_events()
    rows = collapse_rows(campaign)
    if args.json:
        print(json.dumps({"rows": rows}, indent=1))
        return 0
    print(
        render_table(
            ["mode", "arbiter", "load", "x sat", "goodput", "p99 lat",
             "retx ovh", "gave up"],
            [
                [
                    r["mode"],
                    r["arbiter"],
                    round(r["load"], 3),
                    round(r["factor"], 2),
                    round(r["goodput_fraction"], 4),
                    r["p99_latency"],
                    round(r["retransmit_overhead"], 4),
                    r["given_up"],
                ]
                for r in rows
            ],
            title="overload campaign: open vs closed loop past saturation",
        )
    )
    if ledger is not None:
        print(
            f"congestion records appended to {args.ledger}; render the "
            f"collapse panel with: repro-net report --ledger {args.ledger} "
            "--out scorecard.html",
            file=sys.stderr,
        )
    return 0


def cmd_analyze(args) -> int:
    from .obs.ledger import Ledger

    matches = []
    for rec in Ledger(args.ledger).records():
        telemetry = (rec.get("run") or {}).get("telemetry") or {}
        if not telemetry.get("forensics"):
            continue
        if args.network and rec.get("network") != args.network:
            continue
        if args.pattern and rec.get("pattern") != args.pattern:
            continue
        if args.algorithm and rec.get("algorithm") != args.algorithm:
            continue
        matches.append(rec)
    if not matches:
        raise ConfigurationError(
            f"ledger {args.ledger} holds no forensics-instrumented runs "
            "matching the filters (record one with run/sweep --forensics)"
        )
    try:
        rec = matches[args.index]
    except IndexError:
        raise ConfigurationError(
            f"--index {args.index} out of range: {len(matches)} matching record(s)"
        ) from None
    doc = rec["run"]["telemetry"]["forensics"]
    label = (
        f"{rec.get('network', '?')} k={rec.get('k', '?')} n={rec.get('n', '?')} "
        f"{rec.get('algorithm', '?')} {rec.get('vcs', '?')}vc "
        f"{rec.get('pattern', '?')} load {rec.get('load', 0):g}"
    )

    if args.json:
        print(json.dumps({"record": label, "forensics": doc}, indent=1))
    else:
        if len(matches) > 1:
            which = args.index if args.index >= 0 else len(matches) + args.index
            print(
                f"{len(matches)} forensics record(s) in {args.ledger}; "
                f"analyzing [{which}] (select with --index)"
            )
        print(label)
        from .obs.forensics import describe_forensics

        print(describe_forensics(doc))

    written = []
    if args.heatmap or args.breakdown or args.out:
        from .obs.heatmap import (
            hotspot_heatmap_svg,
            latency_breakdown_svg,
            standalone_svg,
        )

        if args.heatmap:
            svg = hotspot_heatmap_svg(doc["hotspots"], metric=args.metric)
            pathlib.Path(args.heatmap).write_text(standalone_svg(svg))
            written.append(args.heatmap)
        if args.breakdown:
            svg = latency_breakdown_svg(doc["attribution"])
            pathlib.Path(args.breakdown).write_text(standalone_svg(svg))
            written.append(args.breakdown)
        if args.out:
            import html as _html

            page = (
                "<!doctype html>\n<meta charset='utf-8'>\n"
                f"<title>congestion forensics — {_html.escape(label)}</title>\n"
                f"<h1>Congestion forensics</h1>\n<p>{_html.escape(label)}</p>\n"
                + standalone_svg(latency_breakdown_svg(doc["attribution"]))
                + "\n"
                + standalone_svg(hotspot_heatmap_svg(doc["hotspots"], metric=args.metric))
                + "\n"
            )
            pathlib.Path(args.out).write_text(page)
            written.append(args.out)
    if written:
        print(f"wrote {', '.join(written)}", file=sys.stderr)
    return 0


def cmd_report(args) -> int:
    from .obs.ledger import Ledger
    from .obs.report import write_scorecard

    ledger = Ledger(args.ledger)
    records = [
        rec
        for rec in ledger.records()
        if args.include_faults or rec["kind"] != "faults"
    ]
    from .metrics.io import run_result_from_dict

    results = [run_result_from_dict(rec["run"]) for rec in records]
    if not results:
        raise ConfigurationError(
            f"ledger {args.ledger} holds no scorable runs "
            "(fault records are excluded unless --include-faults)"
        )
    from .obs.report import partition_results

    figures = write_scorecard(results, args.out, title=args.title, tol=args.tol)
    _, chaos, congestion = partition_results(results)
    extras = f" + {len(chaos)} chaos run(s)" if chaos else ""
    if congestion:
        extras += f" + {len(congestion)} overload run(s)"
    print(
        f"scorecard: {len(results)} runs -> {len(figures)} figure(s)"
        f"{extras} -> {args.out}"
    )
    for fig in figures:
        if fig.score is None:
            print(f"  {fig.title}: no paper reference (unscored)")
        else:
            print(f"  {fig.title}: fidelity {fig.score:.0%}")
            for label, score in sorted(fig.fidelity.items()):
                ref = fig.refs[label]
                print(
                    f"    {label}: saturation {fig.saturation[label]:.3f} "
                    f"vs {ref.figure} {ref.saturation:.3f} -> {score:.0%}"
                )
    return 0


def cmd_bench(args) -> int:
    from .obs.bench import (
        REGRESSION_EXIT_CODE,
        compare,
        default_baseline_path,
        load_baseline,
        remeasure,
        run_bench,
        save_baseline,
    )

    if args.compare is None:
        doc = run_bench(repeats=args.repeats or 3, cycles=args.cycles)
        out = args.out or default_baseline_path()
        save_baseline(doc, out)
        if args.json:
            print(json.dumps(doc, indent=1))
            return 0
        print(f"bench baseline ({doc['host']}, python {doc['python']}) -> {out}")
        for entry in doc["entries"]:
            from .obs.telemetry import RunTelemetry

            t = RunTelemetry.from_dict(entry["telemetry"])
            print(f"  {entry['name']:<12} {entry['cycles_per_sec']:>12,.0f} cyc/s   "
                  f"{t.phase_summary()}")
        return 0

    baseline = load_baseline(args.compare)
    current = remeasure(baseline, repeats=args.repeats)
    if args.out:
        from .obs.bench import bench_document

        save_baseline(
            bench_document(current, args.repeats or baseline.get("repeats", 3)),
            args.out,
        )
    if args.json:
        from .obs.bench import compare_document

        doc = compare_document(baseline, current, threshold=args.threshold)
        print(json.dumps(doc, indent=1))
        return 0 if doc["passed"] else REGRESSION_EXIT_CODE
    findings = compare(baseline, current, threshold=args.threshold)
    for base, cur in zip(baseline["entries"], current):
        print(f"  {base['name']:<12} baseline {base['cycles_per_sec']:>12,.0f} "
              f"cyc/s   now {cur['cycles_per_sec']:>12,.0f} cyc/s")
    if findings:
        print(f"PERF REGRESSION vs {args.compare} (threshold {args.threshold:.0%}):",
              file=sys.stderr)
        for finding in findings:
            print(f"  {finding}", file=sys.stderr)
        return REGRESSION_EXIT_CODE
    print(f"ok: no entry slower than baseline by more than {args.threshold:.0%}")
    return 0


def cmd_tables(args) -> int:
    print(render_delay_table(table1_rows(), "Table 1 — 16-ary 2-cube routing delays (ns)"))
    print()
    print(render_delay_table(table2_rows(), "Table 2 — 4-ary 4-tree routing delays (ns)"))
    return 0


def cmd_info(args) -> int:
    if args.network == "tree":
        topo = KAryNTree(args.k or 4, args.n or 4)
        scaling = tree_scaling(topo.k, topo.n)
    else:
        topo = KAryNCube(args.k or 16, args.n or 2)
        scaling = cube_scaling(topo.k, topo.n)
    print(topo.describe())
    print(f"flit width:        {scaling.flit_bytes} bytes")
    print(f"packet length:     {scaling.packet_flits} flits (64 bytes)")
    print(f"node capacity:     {scaling.capacity_flits_per_cycle} flits/cycle (§5)")
    print("equal-cost pairs (§5):")
    for entry in equal_cost_pairs(max_nodes=4000):
        print(f"  N={entry['nodes']}: tree {entry['tree']}, cubes {entry['cubes']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-net",
        description=(
            "Reproduction of 'Network Performance under Physical Constraints' "
            "(Petrini & Vanneschi, ICPP 1997)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="simulate one offered-load point")
    _add_common(p)
    p.add_argument("--load", type=float, default=0.5, help="fraction of capacity")
    p.add_argument(
        "--latencies",
        action="store_true",
        help="collect per-packet latency samples and print exact percentiles",
    )
    p.add_argument(
        "--forensics",
        action="store_true",
        help=(
            "attach the congestion-forensics tier (latency attribution, "
            "wait-for graph sampling, link hotspots); implies --latencies "
            "and survives a deadlock with a post-mortem"
        ),
    )
    p.add_argument(
        "--sample-every",
        type=int,
        default=200,
        help="wait-for graph sampling period in cycles (with --forensics)",
    )
    _add_flight(p)
    _add_statehash(p)
    _add_observability(p)
    _add_checkpoint(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("sweep", help="run a load sweep for one configuration")
    _add_common(p)
    p.add_argument(
        "--forensics",
        action="store_true",
        help=(
            "instrument every point with the congestion-forensics tier; "
            "ledger records are filed as kind=forensics for analyze"
        ),
    )
    _add_flight(p)
    _add_observability(p)
    _add_checkpoint(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "trace",
        help="one instrumented run: event trace + windowed lane counters",
    )
    _add_common(p)
    p.add_argument("--load", type=float, default=0.5, help="fraction of capacity")
    p.add_argument(
        "--out",
        default="trace.json",
        help="trace output path (Chrome trace_event JSON; .jsonl for jsonl)",
    )
    p.add_argument(
        "--format",
        choices=("chrome", "jsonl", "both"),
        default="chrome",
        help="chrome://tracing document, JSONL event stream, or both",
    )
    p.add_argument(
        "--window",
        type=int,
        default=200,
        help="counter window length in cycles",
    )
    p.add_argument(
        "--counters",
        default=None,
        help="also write the windowed counters to this JSON path",
    )
    p.add_argument(
        "--max-events",
        type=int,
        default=1_000_000,
        help="trace event cap (the trace is marked truncated past it)",
    )
    _add_flight(p)
    _add_statehash(p)
    _add_observability(p)
    p.set_defaults(func=cmd_trace)

    for name, func, help_ in (
        ("fig5", cmd_fig5, "fat-tree CNF curves (Figure 5)"),
        ("fig6", cmd_fig6, "cube CNF curves (Figure 6)"),
        ("fig7", cmd_fig7, "absolute comparison (Figure 7)"),
    ):
        p = sub.add_parser(name, help=help_)
        p.add_argument(
            "--pattern",
            choices=("uniform", "complement", "transpose", "bitrev"),
            default="uniform",
        )
        p.add_argument("--profile", default=None)
        p.add_argument("--seed", type=int, default=11 if name == "fig5" else 13)
        if name != "fig7":
            p.add_argument("--plot", action="store_true", help="add terminal scatter plots")
        p.set_defaults(func=func)

    p = sub.add_parser("drain", help="batch-drain one full permutation")
    _add_common(p)
    p.set_defaults(func=cmd_drain)

    p = sub.add_parser("faults", help="fault-degradation experiments (both networks)")
    _add_common(p)
    p.add_argument("--load", type=float, default=1.0, help="fraction of capacity")
    p.add_argument(
        "--fractions",
        default="0,0.05,0.1,0.2",
        help="comma-separated fault fractions of the channel population",
    )
    p.add_argument("--fault-seed", type=int, default=5, help="fault placement seed")
    p.add_argument(
        "--transient",
        action="store_true",
        help="single run with a mid-run fault window (fail at T, repair at T')",
    )
    p.add_argument("--fraction", type=float, default=0.1, help="fault fraction for --transient")
    p.add_argument("--fail-at", type=int, default=None, help="fault strike cycle")
    p.add_argument("--repair-at", type=int, default=None, help="fault repair cycle")
    p.add_argument(
        "--ledger",
        default=None,
        metavar="JSONL",
        help="append every fault run's document to this JSONL metrics ledger",
    )
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "chaos",
        help="fail-stop fault storms under reliable transport (goodput curves)",
    )
    p.add_argument(
        "--network",
        choices=("tree", "cube", "both"),
        default="both",
        help="paper network(s) to storm (default: both, for the scorecard panel)",
    )
    p.add_argument("--k", type=int, default=None, help="radix (default: paper network)")
    p.add_argument("--n", type=int, default=None, help="dimension/levels")
    p.add_argument(
        "--algorithm",
        default=None,
        help="adaptive algorithm override (lane-level storms need one); "
        "ignored with --network both",
    )
    p.add_argument("--vcs", type=int, default=4)
    p.add_argument("--seed", type=int, default=47, help="traffic seed")
    p.add_argument("--storm-seed", type=int, default=5, help="fault draw + strike seed")
    p.add_argument("--profile", default=None, help="fast, default or full")
    p.add_argument(
        "--rates",
        default="0,0.05,0.1,0.2",
        help="comma-separated fault rates (fraction of the channel population)",
    )
    p.add_argument(
        "--repairs",
        default="0",
        help="comma-separated per-fault down times in cycles (0 = permanent)",
    )
    p.add_argument(
        "--base-timeout",
        type=int,
        default=None,
        help="transport retransmission timer in cycles (default: profile-scaled)",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retransmissions per message before giving up (default 4)",
    )
    p.add_argument("--parallel", action="store_true", help="fan points over a pool")
    p.add_argument("--workers", type=int, default=None, help="pool size")
    p.add_argument("--retries", type=int, default=0, help="attempts per failed point")
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point wall-clock budget in seconds (watchdog subprocess)",
    )
    p.add_argument("--json", action="store_true", help="emit the rows as JSON")
    _add_flight(p)
    p.add_argument(
        "--ledger",
        default=None,
        metavar="JSONL",
        help="append every chaos run as a kind=chaos record (report renders "
        "the goodput-degradation panel from them)",
    )
    _add_checkpoint(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "congestion",
        help="overload campaign past saturation: open vs closed loop (collapse curves)",
    )
    p.add_argument("--network", choices=("tree", "cube"), default="tree")
    p.add_argument("--k", type=int, default=None, help="radix (default: paper network)")
    p.add_argument("--n", type=int, default=None, help="dimension/levels")
    p.add_argument(
        "--algorithm",
        default=None,
        help="routing algorithm override; default per network",
    )
    p.add_argument("--vcs", type=int, default=4)
    p.add_argument("--pattern", choices=sorted(PATTERNS), default="uniform")
    p.add_argument("--seed", type=int, default=29, help="traffic seed")
    p.add_argument("--profile", default=None, help="fast, default or full")
    p.add_argument(
        "--mode",
        choices=("both", "open", "closed"),
        default="both",
        help="which control modes to sweep (default: both, for the contrast)",
    )
    p.add_argument(
        "--max-factor",
        type=float,
        default=2.0,
        help="top of the offered-load axis in saturation multiples",
    )
    p.add_argument(
        "--arbiter-closed",
        choices=("round_robin", "age"),
        default="round_robin",
        help="lane arbitration policy for closed-loop runs (age improves the "
        "median past saturation but inflates the tail; default: round_robin)",
    )
    p.add_argument(
        "--base-timeout",
        type=int,
        default=None,
        help="transport retransmission timer in cycles (default: profile-scaled)",
    )
    p.add_argument(
        "--backoff",
        type=float,
        default=None,
        help="timeout backoff multiplier per retry (1.0 reproduces a naive "
        "fixed-timer transport, the classic collapse regime; default 2.0)",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retransmissions per message before giving up (default 4)",
    )
    p.add_argument("--parallel", action="store_true", help="fan points over a pool")
    p.add_argument("--workers", type=int, default=None, help="pool size")
    p.add_argument("--retries", type=int, default=0, help="attempts per failed point")
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point wall-clock budget in seconds (watchdog subprocess)",
    )
    p.add_argument("--json", action="store_true", help="emit the rows as JSON")
    _add_flight(p)
    p.add_argument(
        "--ledger",
        default=None,
        metavar="JSONL",
        help="append every overload run as a kind=congestion record (report "
        "renders the collapse panel from them)",
    )
    _add_checkpoint(p)
    p.set_defaults(func=cmd_congestion)

    p = sub.add_parser(
        "analyze",
        help="congestion forensics (attribution/wait-for/hotspots) from a ledger",
    )
    p.add_argument(
        "--ledger", required=True, metavar="JSONL", help="ledger to analyze"
    )
    p.add_argument(
        "--network", choices=("tree", "cube"), default=None, help="filter records"
    )
    p.add_argument(
        "--pattern", choices=sorted(PATTERNS), default=None, help="filter records"
    )
    p.add_argument("--algorithm", default=None, help="filter records")
    p.add_argument(
        "--index",
        type=int,
        default=-1,
        help="which matching record to analyze (default -1: the most recent)",
    )
    p.add_argument(
        "--heatmap",
        default=None,
        metavar="SVG",
        help="write the link-hotspot heatmap as a standalone SVG file",
    )
    p.add_argument(
        "--breakdown",
        default=None,
        metavar="SVG",
        help="write the latency-breakdown panel as a standalone SVG file",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="HTML",
        help="write an HTML page with both panels",
    )
    p.add_argument(
        "--metric",
        choices=("blocked_cycles", "flits"),
        default="blocked_cycles",
        help="heatmap cell metric (congestion vs utilization)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the raw forensics document instead of the text digest",
    )
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "diff",
        help="bisect the first divergent cycle between two digested runs",
    )
    p.add_argument(
        "a",
        help="first side: run document / ledger JSONL / config JSON",
    )
    p.add_argument(
        "b",
        help="second side: run document / ledger JSONL / config JSON",
    )
    p.add_argument(
        "--interval",
        type=int,
        default=None,
        metavar="CYCLES",
        help=(
            "digest interval for re-runs (default 128); sides that already "
            "carry a chain at a different stride are re-run to align"
        ),
    )
    p.add_argument(
        "--max-findings",
        type=int,
        default=64,
        help="cap on per-field findings in the structured state diff",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="HTML",
        help="also write the divergence report as an HTML page",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the raw diff document instead of the text digest",
    )
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser(
        "report",
        help="render the HTML reproduction scorecard from a metrics ledger",
    )
    p.add_argument("--ledger", required=True, metavar="JSONL", help="ledger to score")
    p.add_argument("--out", default="scorecard.html", help="output HTML path")
    p.add_argument("--title", default="Reproduction scorecard")
    p.add_argument(
        "--tol",
        type=float,
        default=0.05,
        help="saturation-detection tolerance (fraction)",
    )
    p.add_argument(
        "--include-faults",
        action="store_true",
        help="also plot runs recorded by fault experiments (degraded points)",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "bench",
        help="record or compare an engine performance baseline",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="JSON",
        help="baseline output path (default BENCH_<host>.json when recording)",
    )
    p.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help=(
            "re-measure the recipes in this baseline and exit 3 when any "
            "entry regressed past the threshold"
        ),
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="tolerated slowdown fraction before failing (default 0.15)",
    )
    p.add_argument("--repeats", type=int, default=None,
                   help="runs per entry; best-of is kept (default 3 / baseline's)")
    p.add_argument("--cycles", type=int, default=2000,
                   help="cycles per suite run when recording a new baseline")
    p.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit the baseline document (recording) or the comparison "
            "document with per-entry deltas and pass/fail (--compare) as "
            "JSON; the regression exit code is unchanged"
        ),
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("find-sat", help="bisect the saturation point")
    _add_common(p)
    p.add_argument("--resolution", type=float, default=0.02)
    p.set_defaults(func=cmd_find_sat)

    p = sub.add_parser("dimensions", help="cube dimensionality study (§11)")
    p.add_argument("--pattern", choices=("uniform", "complement"), default="uniform")
    p.add_argument("--algorithm", choices=("dor", "duato"), default="duato")
    p.add_argument("--profile", default=None)
    p.set_defaults(func=cmd_dimensions)

    p = sub.add_parser("tables", help="print Tables 1 and 2 (Chien cost model)")
    p.set_defaults(func=cmd_tables)

    p = sub.add_parser("info", help="topology and normalization facts")
    p.add_argument("--network", choices=("tree", "cube"), default="tree")
    p.add_argument("--k", type=int, default=None)
    p.add_argument("--n", type=int, default=None)
    p.set_defaults(func=cmd_info)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
