"""Simulation run configuration.

A :class:`SimulationConfig` is a complete, validated recipe for one
simulation run; :func:`repro.sim.run.simulate` turns it into a result.
Defaults follow the paper: 4-flit lane buffers, 64-byte packets (expressed
in flits by the caller via the network scaling), a 2000-cycle warm-up and
a 20000-cycle horizon.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError

#: built-in algorithms usable on each network family
TREE_ALGORITHMS = ("tree_adaptive", "tree_deterministic")
CUBE_ALGORITHMS = ("dor", "duato")

#: extension registry: algorithm name -> network family ("tree"/"cube").
#: Populated by :func:`repro.routing.base.register` for algorithm classes
#: that declare a ``network`` attribute — custom algorithms (e.g. the
#: deliberately unsafe routings used by the fault-tolerance tests) become
#: valid config values without editing the built-in tuples.
_EXTRA_ALGORITHMS: dict[str, str] = {}


def register_algorithm_family(name: str, network: str) -> None:
    """Declare a registered routing algorithm's network family."""
    if network not in ("tree", "cube"):
        raise ConfigurationError(f"unknown network family {network!r}")
    _EXTRA_ALGORITHMS[name] = network


def algorithms_for(network: str) -> tuple[str, ...]:
    """All algorithm names valid on a network family (built-in + extras)."""
    builtin = TREE_ALGORITHMS if network == "tree" else CUBE_ALGORITHMS
    extras = tuple(
        sorted(n for n, fam in _EXTRA_ALGORITHMS.items() if fam == network and n not in builtin)
    )
    return builtin + extras


@dataclass
class SimulationConfig:
    """Recipe for a single simulation run.

    Attributes:
        network: ``"tree"`` (k-ary n-tree) or ``"cube"`` (k-ary n-cube).
        k, n: topology parameters.
        algorithm: ``"tree_adaptive"``, ``"dor"`` or ``"duato"``.
        vcs: virtual channels per physical channel direction.
        buffer_flits: input and output lane depth in flits (paper: 4).
        packet_flits: packet length in flits (32 tree / 16 cube for the
            paper's 64-byte packets).
        pattern: traffic pattern name (see :mod:`repro.traffic.patterns`).
        pattern_kwargs: extra pattern constructor arguments (hotspot etc.).
        load: offered bandwidth as a fraction of the network capacity.
        capacity_flits_per_cycle: per-node capacity used to translate
            ``load`` into an injection rate (§5 normalization).
        warmup_cycles: statistics ignored before this cycle.
        total_cycles: the run halts at this cycle.
        seed: master RNG seed (controls traffic and tie-breaking).
        arbiter: lane arbitration policy — ``"round_robin"`` (paper
            default, fair rotation) or ``"age"`` (oldest packet first by
            creation cycle, bounding tail latency under overload).
        collect_latencies: record every packet latency (for percentile
            analysis) instead of aggregates only.
        interval_cycles: when > 0, record delivered flits per interval of
            this length over the measurement window
            (``RunResult.throughput_timeline``) for stability and warm-up
            adequacy analysis.
        watchdog_cycles: raise :class:`~repro.errors.DeadlockError` after
            this many consecutive cycles without any flit movement while
            packets are in flight; 0 disables the watchdog.
    """

    network: str
    k: int
    n: int
    algorithm: str
    vcs: int
    packet_flits: int
    capacity_flits_per_cycle: float
    pattern: str = "uniform"
    pattern_kwargs: dict = field(default_factory=dict)
    load: float = 0.1
    buffer_flits: int = 4
    warmup_cycles: int = 2000
    total_cycles: int = 20000
    seed: int = 1
    arbiter: str = "round_robin"
    collect_latencies: bool = False
    interval_cycles: int = 0
    watchdog_cycles: int = 3000

    def __post_init__(self) -> None:
        if self.network not in ("tree", "cube"):
            raise ConfigurationError(f"unknown network family {self.network!r}")
        allowed = algorithms_for(self.network)
        if self.algorithm not in allowed:
            raise ConfigurationError(
                f"algorithm {self.algorithm!r} not usable on {self.network!r}; "
                f"allowed: {', '.join(allowed)}"
            )
        if self.k < 2 or self.n < 1:
            raise ConfigurationError(f"invalid topology k={self.k}, n={self.n}")
        if self.vcs < 1:
            raise ConfigurationError(f"need at least 1 virtual channel, got {self.vcs}")
        if self.algorithm == "dor" and (self.vcs < 2 or self.vcs % 2):
            raise ConfigurationError(
                f"dor splits lanes into two virtual networks and needs an "
                f"even vc count >= 2, got {self.vcs}"
            )
        if self.algorithm == "duato" and self.vcs < 3:
            raise ConfigurationError(
                f"duato needs vcs >= 3 (V-2 adaptive + 2 escape), got {self.vcs}"
            )
        if self.buffer_flits < 1:
            raise ConfigurationError(f"buffer_flits must be >= 1, got {self.buffer_flits}")
        if self.packet_flits < 2:
            raise ConfigurationError(
                f"a wormhole packet needs header and tail: packet_flits >= 2, got {self.packet_flits}"
            )
        if not 0.0 <= self.load:
            raise ConfigurationError(f"negative load {self.load}")
        if self.capacity_flits_per_cycle <= 0:
            raise ConfigurationError("capacity_flits_per_cycle must be positive")
        if not 0 <= self.warmup_cycles < self.total_cycles:
            raise ConfigurationError(
                f"need 0 <= warmup < total, got warmup={self.warmup_cycles}, "
                f"total={self.total_cycles}"
            )
        if self.arbiter not in ("round_robin", "age"):
            raise ConfigurationError(
                f"unknown arbiter {self.arbiter!r}; allowed: round_robin, age"
            )
        if self.watchdog_cycles < 0:
            raise ConfigurationError("watchdog_cycles must be >= 0")
        if self.interval_cycles < 0:
            raise ConfigurationError("interval_cycles must be >= 0")

    @property
    def num_nodes(self) -> int:
        return self.k**self.n

    @property
    def injection_flits_per_cycle(self) -> float:
        """Per-node offered load in flits/cycle."""
        return self.load * self.capacity_flits_per_cycle

    def label(self) -> str:
        """Compact identifier used in reports and logs."""
        return (
            f"{self.network}-{self.k}ary{self.n}-{self.algorithm}-{self.vcs}vc-"
            f"{self.pattern}-load{self.load:.3f}"
        )
