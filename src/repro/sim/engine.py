"""The flit-level wormhole simulation engine (paper §4).

Every clock cycle runs three phases, in an order that guarantees a flit
advances through at most one pipeline stage per cycle (the §5
normalization makes T_link = T_crossbar = T_routing = 1 clock):

1. **Link phase** — for every unidirectional channel with buffered output
   flits, an arbiter picks one output lane holding a flit and a credit;
   that flit crosses to the downstream input lane (or ejection lane).
   The policy is ``config.arbiter``: round-robin (paper default) or
   oldest-packet-first by creation cycle (``"age"``), which bounds tail
   latency under sustained overload.  Node injection runs in the same phase: each node streams at
   most one flit per cycle of its current packet into an injection lane
   (the single injection channel / source throttling of §3).
2. **Crossbar phase** — every crossbar-bound (input → output) lane pair
   forwards one flit if the output lane has space, returning a credit
   upstream; flits that arrived in this cycle's link phase are held one
   cycle (``last_arrival`` stamp).  Forwarding the tail releases the input
   lane and the crossbar path.
3. **Routing phase** — each switch routes at most one new header per
   cycle; pending headers are served round-robin and a header that cannot
   be routed (all candidate lanes busy) simply retries next cycle.

The hot loops are deliberately written with inlined state updates (no
method calls per flit): Python-level call overhead would dominate a
256-node, 20000-cycle run otherwise.  The checked equivalents on the lane
classes are exercised by the unit tests, and :meth:`Engine.audit` verifies
the global invariants (buffer bounds, credit consistency, flit
conservation) after any run.
"""

from __future__ import annotations

import time

from ..errors import ConfigurationError, DeadlockError, SimulationError
from ..obs.telemetry import PHASE_NAMES, RunTelemetry, config_digest
from ..router.lane import EjectionLane, InputLane, LinkDirection, OutputLane
from ..routing.base import RoutingAlgorithm
from ..topology.base import Topology
from ..topology.cube import KAryNCube
from ..traffic.generator import BernoulliInjector
from .config import SimulationConfig
from .diagnostics import capture_snapshot
from .packet import FAULT_SENTINEL, Packet
from .results import RunResult

#: effectively infinite credit for ejection channels (the node consumes
#: flits as fast as the link can deliver them)
_EJECT_CREDITS = 1 << 60


class _Node:
    """Per-node injection state: the single injection channel of §3."""

    __slots__ = ("nid", "source", "lanes", "rr", "packet", "sent", "lane")

    def __init__(self, nid: int, source, lanes: list[InputLane]):
        self.nid = nid
        self.source = source
        #: injection lanes at the attached switch port
        self.lanes = lanes
        self.rr = 0
        #: packet currently being streamed into the network
        self.packet: Packet | None = None
        self.sent = 0
        self.lane: InputLane | None = None


class Engine:
    """One simulation run over a built network.

    Args:
        topology: the network under test.
        routing: a routing algorithm compatible with the topology.
        injector: per-node traffic sources.
        config: run recipe (must be consistent with the other arguments).
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingAlgorithm,
        injector: BernoulliInjector,
        config: SimulationConfig,
    ):
        if injector.num_nodes != topology.num_nodes:
            raise ConfigurationError(
                f"injector built for {injector.num_nodes} nodes, "
                f"topology has {topology.num_nodes}"
            )
        self.topology = topology
        self.config = config
        self.injector = injector
        vcs = config.vcs
        cap = config.buffer_flits

        num_switches = topology.num_switches
        base_ports = topology.ports_per_switch()
        is_direct = isinstance(topology, KAryNCube)
        total_ports = base_ports + (1 if is_direct else 0)

        #: in_lanes[switch][port] -> list of InputLane (may be empty for
        #: unused directions, e.g. root up-ports)
        self.in_lanes: list[list[list[InputLane]]] = [
            [[InputLane(s, p, v, cap) for v in range(vcs)] for p in range(total_ports)]
            for s in range(num_switches)
        ]
        self.out_lanes: list[list[list[OutputLane]]] = [
            [[OutputLane(s, p, v, cap) for v in range(vcs)] for p in range(total_ports)]
            for s in range(num_switches)
        ]

        self.dirs: list[LinkDirection] = []
        self._wire_switch_links(cap)
        self._wire_node_links(cap, is_direct, vcs)
        self._prune_unwired()

        # cycle hooks (fault schedules, instrumentation): cycle -> callbacks.
        # _next_hook_cycle caches the earliest key so the hot loop pays a
        # single int comparison per cycle; -1 means no hooks armed.
        self._cycle_hooks: dict[int, list] = {}
        self._next_hook_cycle = -1

        #: attached observability probe (repro.obs); None keeps the hot
        #: loop on its fast path with only `is not None` guards
        self.probe = None

        # routing bookkeeping
        self.pending: list[list[InputLane]] = [[] for _ in range(num_switches)]
        self.route_rr = [0] * num_switches
        self._in_route_queue = [False] * num_switches
        self.route_queue: list[int] = []
        self.bindings: list[InputLane] = []

        # statistics
        self.cycle = 0
        self.injected_packets_total = 0
        self.delivered_packets_total = 0
        self.injected_flits_total = 0
        self.delivered_flits_total = 0
        #: worms destroyed in flight by fail-stop faults (kill_packet)
        self.dropped_packets_total = 0
        self.dropped_flits_total = 0
        self.result = RunResult(config=config, measured_cycles=config.total_cycles - config.warmup_cycles)
        #: flits delivered to each node during the measurement window
        #: (fairness/hotspot analyses)
        self.delivered_flits_per_node = [0] * topology.num_nodes
        #: rolling counter behind RunResult.throughput_timeline
        self._interval_delivered = 0
        self._last_progress = 0
        #: cycle the current run() entered at — an attribute rather than a
        #: run() local so a checkpointed engine can resume_run() and still
        #: report telemetry.cycles over the whole logical run
        self._run_started_at = 0
        self._next_pid = 0
        #: high-water mark of packets simultaneously in flight (telemetry)
        self._peak_in_flight = 0
        #: cumulative wall seconds per step phase, indexed like PHASE_NAMES
        #: (5 perf_counter reads per cycle — well under 1% of a step)
        self._phase_seconds = [0.0, 0.0, 0.0, 0.0]
        self._phase_at_start = (0.0, 0.0, 0.0, 0.0)
        self._warmup_snapshot_taken = config.warmup_cycles == 0
        #: oldest-first arbitration (config.arbiter == "age"); checked once
        #: per direction/switch in the hot loops
        self._age_arbiter = config.arbiter == "age"

        routing.attach(self)
        self.routing = routing
        self._build_nodes()

    # -- construction ----------------------------------------------------------

    def _wire_switch_links(self, cap: int) -> None:
        for link in self.topology.switch_links():
            for sa, pa, sb, pb in (
                (link.switch_a, link.port_a, link.switch_b, link.port_b),
                (link.switch_b, link.port_b, link.switch_a, link.port_a),
            ):
                outs = self.out_lanes[sa][pa]
                ins = self.in_lanes[sb][pb]
                for out, inp in zip(outs, ins):
                    if out.sink is not None or inp.src_out is not None:
                        raise SimulationError(
                            f"port wired twice: switch {sa} port {pa} -> switch {sb} port {pb}"
                        )
                    out.sink = inp
                    out.credits = cap
                    inp.src_out = out
                self.dirs.append(LinkDirection(outs))

    def _wire_node_links(self, cap: int, is_direct: bool, vcs: int) -> None:
        self.eject_lanes: list[list[EjectionLane]] = [[] for _ in range(self.topology.num_nodes)]
        self._injection_lanes: list[list[InputLane]] = [[] for _ in range(self.topology.num_nodes)]
        for nl in self.topology.node_links():
            s, p, node = nl.switch, nl.port, nl.node
            # ejection: switch output lanes -> per-VC ejection sinks
            outs = self.out_lanes[s][p]
            for out in outs:
                ej = EjectionLane(node)
                out.sink = ej
                out.credits = _EJECT_CREDITS
                self.eject_lanes[node].append(ej)
            self.dirs.append(LinkDirection(outs, to_node=True))
            # injection: the node feeds the switch input lanes directly.
            # A cube router has a single injection channel (P = 17 in §5);
            # a tree leaf port carries the full V lanes (P = 2kV).
            ins = self.in_lanes[s][p]
            if is_direct:
                ins = ins[:1]
                self.in_lanes[s][p] = ins
            self._injection_lanes[node] = ins

    def _prune_unwired(self) -> None:
        """Drop lanes on unconnected ports (e.g. root external links)."""
        for s in range(self.topology.num_switches):
            for p in range(len(self.out_lanes[s])):
                outs = self.out_lanes[s][p]
                if outs and outs[0].sink is None:
                    self.out_lanes[s][p] = []
                    self.in_lanes[s][p] = []

    def _build_nodes(self) -> None:
        self.nodes = [
            _Node(nid, self.injector.sources[nid], self._injection_lanes[nid])
            for nid in range(self.topology.num_nodes)
        ]
        self.active_nodes = [node for node in self.nodes if node.source.active]

    def preload_packet(self, src: int, dst: int, created: int = 0) -> None:
        """Queue one packet at a source before the run starts.

        Useful for deterministic unit tests, examples and debugging: the
        packet joins the node's source queue (behind any stochastic
        traffic) and is injected through the normal single-channel path.

        Raises:
            ConfigurationError: for out-of-range nodes or ``src == dst``.
        """
        nodes = self.topology.num_nodes
        if not (0 <= src < nodes and 0 <= dst < nodes):
            raise ConfigurationError(f"nodes out of range: {src}->{dst} (N={nodes})")
        if src == dst:
            raise ConfigurationError("a packet needs distinct source and destination")
        node = self.nodes[src]
        node.source.queue.append((created, dst))
        if node not in self.active_nodes:
            self.active_nodes.append(node)

    # -- observability -------------------------------------------------------------

    def attach_probe(self, probe) -> None:
        """Attach an observability probe (see :mod:`repro.obs.probe`).

        The probe's ``bind`` runs immediately so it can pre-size per-lane
        state from the live engine.  Only one probe slot exists; compose
        several with :class:`~repro.obs.probe.MultiProbe`.

        Raises:
            ConfigurationError: when a probe is already attached.
        """
        if self.probe is not None:
            raise ConfigurationError(
                "a probe is already attached; compose probes with MultiProbe"
            )
        probe.bind(self)
        self.probe = probe

    def _start_run(self) -> tuple[int, float]:
        """Snapshot cycle, wall clock and phase timers at run entry."""
        self._phase_at_start = tuple(self._phase_seconds)
        if self.probe is not None:
            self.probe.on_run_start(self)
        return self.cycle, time.perf_counter()

    def _finish_run(self, started_at_cycle: int, wall_start: float) -> None:
        """Attach telemetry to the result and close out the probe."""
        wall = time.perf_counter() - wall_start
        cycles = self.cycle - started_at_cycle
        self.result.telemetry = RunTelemetry(
            config_hash=config_digest(self.config),
            seed=self.config.seed,
            cycles=cycles,
            wall_clock_s=wall,
            cycles_per_sec=cycles / wall if wall > 0 else 0.0,
            peak_in_flight=self._peak_in_flight,
            phase_seconds={
                name: self._phase_seconds[i] - self._phase_at_start[i]
                for i, name in enumerate(PHASE_NAMES)
            },
        )
        if self.probe is not None:
            self.probe.on_run_end(self)

    # -- cycle hooks ---------------------------------------------------------------

    def add_cycle_hook(self, cycle: int, fn) -> None:
        """Schedule ``fn(engine)`` to run at the start of cycle ``cycle``.

        Hooks fire before the link phase, so state changed by a hook (a
        fault struck or repaired, say) is visible to every phase of that
        same cycle.  Hooks may re-arm themselves or add hooks for the
        same or later cycles while running.

        Raises:
            ConfigurationError: when ``cycle`` lies in the past.
        """
        if cycle < self.cycle:
            raise ConfigurationError(
                f"cannot hook cycle {cycle}; the engine is already at {self.cycle}"
            )
        self._cycle_hooks.setdefault(cycle, []).append(fn)
        if self._next_hook_cycle < 0 or cycle < self._next_hook_cycle:
            self._next_hook_cycle = cycle

    def _run_cycle_hooks(self, t: int) -> None:
        # hooks may add same-cycle hooks while running, hence the loop;
        # bookkeeping is settled BEFORE each hook runs so a hook that
        # snapshots the engine (checkpointing) captures exactly the
        # not-yet-run remainder — never itself, never a stale next-cycle
        while self._next_hook_cycle == t:
            pending = self._cycle_hooks[t]
            fn = pending.pop(0)
            if not pending:
                del self._cycle_hooks[t]
                self._next_hook_cycle = (
                    min(self._cycle_hooks) if self._cycle_hooks else -1
                )
            fn(self)

    # -- one simulation cycle ----------------------------------------------------

    def step(self) -> bool:
        """Advance one cycle; returns True when any flit moved (progress)."""
        t = self.cycle
        if t == self._next_hook_cycle:
            self._run_cycle_hooks(t)
        warm = t >= self.config.warmup_cycles
        if warm and not self._warmup_snapshot_taken:
            # freeze the cumulative per-direction flit counters so the
            # utilization analyses can report measurement-window rates
            self._warmup_snapshot_taken = True
            for d in self.dirs:
                d.flits_at_warmup = d.flits
        probe = self.probe
        res = self.result
        progress = False
        clock = time.perf_counter
        phase_start = clock()

        # ---- phase 1a: link traversal -------------------------------------
        age_arb = self._age_arbiter
        for d in self.dirs:
            if d.nbusy == 0:
                continue
            lanes = d.lanes
            n = len(lanes)
            lane = None
            idx = 0
            if age_arb:
                # oldest packet first (creation cycle; index breaks ties)
                best_age = 0
                for j in range(n):
                    cand = lanes[j]
                    if cand.buffered > 0 and cand.credits > 0:
                        age = cand.packet.created
                        if lane is None or age < best_age:
                            lane = cand
                            idx = j
                            best_age = age
            else:
                rr = d.rr
                for off in range(n):
                    j = rr + off
                    if j >= n:
                        j -= n
                    cand = lanes[j]
                    if cand.buffered > 0 and cand.credits > 0:
                        lane = cand
                        idx = j
                        break
            if lane is None:
                # busy direction, no lane had both a flit and a credit
                if probe is not None:
                    probe.on_direction_blocked(t, d)
                continue
            pkt = lane.packet
            lane.buffered -= 1
            lane.credits -= 1
            lane.sent += 1
            d.flits += 1
            if lane.buffered == 0:
                d.nbusy -= 1
            sink = lane.sink
            if d.to_node:
                # ejection: consume immediately
                if sink.packet is None:
                    sink.packet = pkt
                    sink.received = 1
                    pkt.head_delivered = t
                    if probe is not None:
                        probe.on_head_delivered(t, pkt)
                else:
                    sink.received += 1
                if warm:
                    res.delivered_flits += 1
                    self.delivered_flits_per_node[sink.node] += 1
                    self._interval_delivered += 1
                self.delivered_flits_total += 1
                if sink.received == pkt.size:
                    pkt.delivered = t
                    sink.packet = None
                    sink.received = 0
                    self.delivered_packets_total += 1
                    if probe is not None:
                        probe.on_tail_delivered(t, pkt)
                    if pkt.injected >= self.config.warmup_cycles:
                        res.delivered_packets += 1
                        lat = t - pkt.injected
                        res.latency_sum += lat
                        res.head_latency_sum += pkt.head_delivered - pkt.injected
                        if lat > res.latency_max:
                            res.latency_max = lat
                        if self.config.collect_latencies:
                            res.latencies.append(lat)
            else:
                if sink.packet is None:
                    sink.packet = pkt
                    sink.received = 1
                    sink.last_arrival = t
                    self._enqueue_header(sink)
                    if probe is not None:
                        probe.on_head_arrived(t, sink, pkt)
                else:
                    sink.received += 1
                    sink.last_arrival = t
            if lane.sent == pkt.size:
                # tail left this switch: free the output lane
                lane.packet = None
                lane.sent = 0
            d.rr = idx + 1 if idx + 1 < n else 0
            progress = True

        phases = self._phase_seconds
        now = clock()
        phases[0] += now - phase_start
        phase_start = now

        # ---- phase 1b: injection ------------------------------------------
        cap = self.config.buffer_flits
        default_size = self.config.packet_flits
        for node in self.active_nodes:
            src = node.source
            created = src.advance(t)
            if created:
                if warm:
                    res.generated_packets += created
                if probe is not None:
                    probe.on_packets_generated(t, node.nid, created)
            pkt = node.packet
            if pkt is None:
                if not src.queue:
                    continue
                # allocate a free injection lane (rotating fair choice)
                lanes = node.lanes
                n = len(lanes)
                lane = None
                for off in range(n):
                    idx = (node.rr + off) % n
                    if lanes[idx].packet is None:
                        lane = lanes[idx]
                        node.rr = (idx + 1) % n
                        break
                if lane is None:
                    continue
                entry = src.queue.popleft()
                # trace-driven sources carry an explicit per-message size
                size = entry[2] if len(entry) > 2 else default_size
                pkt = Packet(self._next_pid, node.nid, entry[1], size, entry[0])
                self._next_pid += 1
                pkt.injected = t
                lane.packet = pkt
                lane.received = 1
                lane.last_arrival = t
                self._enqueue_header(lane)
                node.packet = pkt
                node.sent = 1
                node.lane = lane
                self.injected_packets_total += 1
                self.injected_flits_total += 1
                in_flight = (
                    self.injected_packets_total
                    - self.delivered_packets_total
                    - self.dropped_packets_total
                )
                if in_flight > self._peak_in_flight:
                    self._peak_in_flight = in_flight
                if warm:
                    res.injected_packets += 1
                if probe is not None:
                    probe.on_packet_injected(t, pkt)
                progress = True
                if node.sent == size:  # degenerate tiny packets
                    node.packet = None
                    node.lane = None
            else:
                lane = node.lane
                if lane.received - lane.forwarded < cap:
                    lane.received += 1
                    lane.last_arrival = t
                    node.sent += 1
                    self.injected_flits_total += 1
                    progress = True
                    if node.sent == pkt.size:
                        node.packet = None
                        node.lane = None

        now = clock()
        phases[1] += now - phase_start
        phase_start = now

        # ---- phase 2: crossbar --------------------------------------------
        bindings = self.bindings
        i = 0
        while i < len(bindings):
            lane = bindings[i]
            buffered = lane.received - lane.forwarded
            if lane.last_arrival == t:
                buffered -= 1
            if buffered > 0:
                out = lane.bound
                if out.buffered < out.cap:
                    lane.forwarded += 1
                    if out.buffered == 0:
                        out.direction.nbusy += 1
                    out.buffered += 1
                    src_out = lane.src_out
                    if src_out is not None:
                        src_out.credits += 1
                    progress = True
                    if lane.forwarded == lane.packet.size:
                        # tail through the crossbar: release input lane
                        lane.packet = None
                        lane.received = 0
                        lane.forwarded = 0
                        lane.bound = None
                        last = bindings.pop()
                        if last is not lane:
                            bindings[i] = last
                        continue  # serve the swapped-in binding at this slot
            i += 1

        now = clock()
        phases[2] += now - phase_start
        phase_start = now

        # ---- phase 3: routing (one header per switch per cycle) ------------
        if self.route_queue:
            select = self.routing.select
            still = []
            for s in self.route_queue:
                pend = self.pending[s]
                if not pend:
                    self._in_route_queue[s] = False
                    continue
                n = len(pend)
                if age_arb:
                    # oldest header first; sort stability breaks ties on
                    # arrival order within the pending list
                    order = sorted(range(n), key=lambda i2: pend[i2].packet.created)
                else:
                    order = None
                    rr = self.route_rr[s] % n
                routed = -1
                for off in range(n):
                    if order is not None:
                        idx = order[off]
                    else:
                        idx = rr + off
                        if idx >= n:
                            idx -= n
                    lane = pend[idx]
                    if lane.received == 1 and lane.last_arrival == t:
                        # the header itself arrived in this cycle's link
                        # phase; routing it costs one full T_routing.
                        # (received > 1 means the header arrived earlier —
                        # last_arrival tracks the newest flit, not the head.)
                        continue
                    out = select(s, lane, lane.packet)
                    if out is not None:
                        lane.bound = out
                        out.packet = lane.packet
                        bindings.append(lane)
                        routed = idx
                        if probe is not None:
                            probe.on_header_routed(t, s, lane, out)
                        break
                if routed >= 0:
                    pend.pop(routed)
                    self.route_rr[s] = routed % len(pend) if pend else 0
                    progress = True
                if pend:
                    still.append(s)
                else:
                    self._in_route_queue[s] = False
            self.route_queue = still

        interval = self.config.interval_cycles
        if interval and warm and (t - self.config.warmup_cycles + 1) % interval == 0:
            res.throughput_timeline.append(self._interval_delivered)
            self._interval_delivered = 0

        if probe is not None:
            probe.on_cycle(t)
        phases[3] += clock() - phase_start
        self.cycle = t + 1
        return progress

    def _enqueue_header(self, lane: InputLane) -> None:
        s = lane.switch
        self.pending[s].append(lane)
        if not self._in_route_queue[s]:
            self._in_route_queue[s] = True
            self.route_queue.append(s)

    # -- full run ----------------------------------------------------------------

    def run(self) -> RunResult:
        """Run to ``config.total_cycles`` and return the measurements.

        Raises:
            DeadlockError: if the watchdog sees no flit movement for
                ``config.watchdog_cycles`` cycles while packets are in
                flight (indicates a routing bug, not an expected outcome).
        """
        start_cycle, wall_start = self._start_run()
        self._run_started_at = start_cycle
        return self._run_to_total(wall_start)

    def resume_run(self) -> RunResult:
        """Continue a restored run to ``config.total_cycles``.

        The checkpoint/restore counterpart of :meth:`run` (see
        :mod:`repro.sim.checkpoint`): probes keep the accumulated state
        they were pickled with, so ``on_run_start`` must *not* re-fire —
        a statehash chain or flight timeline continues seamlessly across
        the restore.  Telemetry spans the whole logical run
        (``_run_started_at`` travelled inside the checkpoint); only the
        wall-clock fields measure this process's share.
        """
        return self._run_to_total(time.perf_counter())

    def _run_to_total(self, wall_start: float) -> RunResult:
        watchdog = self.config.watchdog_cycles
        total = self.config.total_cycles
        start_cycle = self._run_started_at
        while self.cycle < total:
            if self.step():
                self._last_progress = self.cycle
            elif (
                watchdog
                and self.in_flight_packets() > 0
                and self.cycle - self._last_progress >= watchdog
            ):
                self._finish_run(start_cycle, wall_start)
                raise self._deadlock(
                    f"no flit movement for {watchdog} cycles at cycle {self.cycle} "
                    f"with {self.in_flight_packets()} packets in flight "
                    f"({self.config.label()})"
                )
        self.result.in_flight_at_end = self.in_flight_packets()
        self._finish_run(start_cycle, wall_start)
        return self.result

    def run_until_drained(self, max_cycles: int = 1_000_000) -> int:
        """Run until every queued and in-flight packet is delivered.

        Used for batch experiments (e.g. draining one full permutation,
        the "global permutation pattern" of §6) where the metric is the
        makespan rather than a steady-state rate.  Ignores
        ``config.total_cycles``; statistics windows still apply as
        configured.

        Returns:
            The cycle at which the network became empty.

        Raises:
            DeadlockError: when the watchdog fires, or nothing is
                delivered by ``max_cycles``.
        """
        watchdog = self.config.watchdog_cycles
        start_cycle, wall_start = self._start_run()
        while True:
            if self.in_flight_packets() == 0 and all(
                node.source.done() for node in self.active_nodes
            ):
                self._finish_run(start_cycle, wall_start)
                return self.cycle
            if self.cycle >= max_cycles:
                self._finish_run(start_cycle, wall_start)
                raise self._deadlock(
                    f"drain did not complete within {max_cycles} cycles "
                    f"({self.in_flight_packets()} packets in flight)"
                )
            if self.step():
                self._last_progress = self.cycle
            elif (
                watchdog
                and self.in_flight_packets() > 0
                and self.cycle - self._last_progress >= watchdog
            ):
                self._finish_run(start_cycle, wall_start)
                raise self._deadlock(
                    f"no flit movement for {watchdog} cycles at cycle {self.cycle} "
                    f"during drain ({self.config.label()})"
                )

    def _deadlock(self, message: str) -> DeadlockError:
        """Build a DeadlockError carrying a diagnostic network snapshot."""
        snapshot = capture_snapshot(self)
        return DeadlockError(f"{message}\n{snapshot.describe()}", snapshot=snapshot)

    def in_flight_packets(self) -> int:
        """Packets injected but neither delivered nor dropped."""
        return (
            self.injected_packets_total
            - self.delivered_packets_total
            - self.dropped_packets_total
        )

    def state_fingerprint(self, detail: bool = False) -> dict:
        """Layered digest of the complete simulation state at this cycle.

        The backend validation contract (see DESIGN.md): any alternative
        engine backend must produce identical fingerprints at identical
        cycles for identical configs.  Covers lanes, credits, routing,
        injection queues, transport/AIMD state and RNG stream positions;
        excludes measurement accumulators and wall-clock state.  With
        ``detail``, per-link, per-lane and per-node leaf digests are
        included for divergence localization.  Delegates to
        :func:`repro.obs.statehash.engine_fingerprint`.
        """
        from ..obs.statehash import engine_fingerprint

        return engine_fingerprint(self, detail=detail)

    def kill_packet(self, pkt: Packet, reason: str = "fault") -> int:
        """Tear down an in-flight worm (fail-stop fault semantics).

        Flushes every flit of ``pkt`` still buffered in the network,
        releases all input, output and ejection lanes it holds, restores
        the credit counters of the flushed lane pairs, unbinds it from
        the crossbar and the routing queues, and stops the source if the
        worm was still streaming in (the unstreamed remainder is never
        injected, so flit conservation holds).  The drop is stamped on
        the packet, counted in the engine totals and the measurement
        window, and reported through ``on_packet_dropped``.

        Safe to call from a cycle hook: hooks fire before the link phase
        so no phase iteration is in progress.

        Returns:
            The number of flits flushed from the network (0 when the
            packet already left it — delivered or previously dropped).

        Raises:
            SimulationError: when asked to kill the fault sentinel.
        """
        if pkt is FAULT_SENTINEL:
            raise SimulationError("cannot kill the fault sentinel")
        if pkt.delivered >= 0 or pkt.dropped >= 0:
            return 0
        t = self.cycle
        flushed = 0

        node = self.nodes[pkt.src]
        if node.packet is pkt:
            node.packet = None
            node.lane = None
            node.sent = 0

        victims: list[InputLane] = []
        for switch_ports in self.in_lanes:
            for port_lanes in switch_ports:
                for lane in port_lanes:
                    if lane.packet is pkt:
                        victims.append(lane)
        dead = {id(lane) for lane in victims if lane.bound is not None}
        if dead:
            self.bindings[:] = [b for b in self.bindings if id(b) not in dead]
        for lane in victims:
            if lane.bound is None:
                # an unbound header is still waiting in the routing queue
                pend = self.pending[lane.switch]
                if lane in pend:
                    pend.remove(lane)
            flushed += lane.received - lane.forwarded
            lane.packet = None
            lane.received = 0
            lane.forwarded = 0
            lane.bound = None
            if lane.src_out is not None:
                # the (output lane -> input lane) pair carries a single
                # packet, so after the flush the downstream buffer is
                # empty and the upstream credit counter returns to cap
                lane.src_out.credits = lane.cap

        for switch_ports in self.out_lanes:
            for port_lanes in switch_ports:
                for lane in port_lanes:
                    if lane.packet is pkt:
                        if lane.buffered > 0:
                            lane.direction.nbusy -= 1
                            flushed += lane.buffered
                        lane.packet = None
                        lane.buffered = 0
                        lane.sent = 0

        for ej in self.eject_lanes[pkt.dst]:
            if ej.packet is pkt:
                ej.packet = None
                ej.received = 0

        pkt.dropped = t
        self.dropped_packets_total += 1
        self.dropped_flits_total += flushed
        if pkt.injected >= self.config.warmup_cycles:
            self.result.dropped_packets += 1
            self.result.dropped_flits += flushed
        if self.probe is not None:
            self.probe.on_packet_dropped(t, pkt, reason)
        return flushed

    def unrouted_headers(self):
        """Yield every input lane holding a header that routing has not
        bound yet, as ``(switch, lane)`` pairs.

        These are exactly the *waiting* parties of the network's wait-for
        relation: a blocked wormhole chain always terminates at one of
        them (or at an ejection channel).  Read-only over live engine
        state — used by the deadlock snapshot and the wait-for graph
        sampler, safe to call between cycles.
        """
        for s in self.route_queue:
            for lane in self.pending[s]:
                if lane.bound is None and lane.packet is not None:
                    yield s, lane

    # -- invariants ----------------------------------------------------------------

    def audit(self) -> None:
        """Verify global invariants; raises SimulationError on violation.

        Checked after runs by the test-suite:

        * buffer occupancies within ``[0, cap]``;
        * credit counters mirror downstream free space exactly;
        * crossbar bindings are mutually consistent;
        * flit conservation: every injected flit is either delivered or
          buffered in exactly one lane.
        """
        buffered_flits = 0
        for s in range(self.topology.num_switches):
            for port_lanes in self.in_lanes[s]:
                for lane in port_lanes:
                    buf = lane.received - lane.forwarded
                    if not 0 <= buf <= lane.cap:
                        raise SimulationError(f"input buffer out of range: {lane!r}")
                    if lane.packet is None and (lane.received or lane.forwarded or lane.bound):
                        raise SimulationError(f"free input lane with residue: {lane!r}")
                    if lane.bound is not None and lane.bound.packet is not lane.packet:
                        raise SimulationError(f"binding mismatch: {lane!r} -> {lane.bound!r}")
                    buffered_flits += buf
            for port_lanes in self.out_lanes[s]:
                for lane in port_lanes:
                    if not 0 <= lane.buffered <= lane.cap:
                        raise SimulationError(f"output buffer out of range: {lane!r}")
                    sink = lane.sink
                    if isinstance(sink, InputLane):
                        expect = sink.cap - (sink.received - sink.forwarded)
                        if lane.credits != expect:
                            raise SimulationError(
                                f"credit drift: {lane!r} credits={lane.credits}, "
                                f"downstream free space={expect}"
                            )
                    buffered_flits += lane.buffered
        # delivered_flits_total counts every ejected flit (including those
        # of packets still partially in flight) and dropped_flits_total
        # every flit flushed by a fail-stop kill, so what remains in the
        # network is exactly the sum of lane buffers.
        in_network = (
            self.injected_flits_total
            - self.delivered_flits_total
            - self.dropped_flits_total
        )
        if buffered_flits != in_network:
            raise SimulationError(
                f"flit conservation violated: buffered={buffered_flits}, "
                f"injected-delivered={in_network}"
            )
