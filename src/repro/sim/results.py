"""Raw measurements from one simulation run (paper §6).

The two quantitative parameters of §6 are computed here:

* **accepted bandwidth** — flits delivered to their destinations during the
  measurement window, per node per cycle, reported both in flits/cycle and
  as a fraction of the network capacity (the CNF y-axis);
* **network latency** — average header-injection-to-tail-delivery delay of
  packets measured in the window (source queueing excluded, as in §6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AnalysisError
from ..obs.telemetry import RunTelemetry
from .config import SimulationConfig


@dataclass
class RunResult:
    """Outcome of one simulation run.

    All counters refer to the measurement window ``[warmup, total)`` only.

    Attributes:
        config: the run recipe.
        measured_cycles: length of the measurement window.
        generated_packets: packets created by the sources in the window
            (the realized offered load).
        injected_packets: packets whose header entered an injection lane
            in the window.
        delivered_packets: packets whose tail reached the destination in
            the window *and* whose header was injected after the warm-up
            (latency samples come from these).
        delivered_flits: all flits delivered in the window, regardless of
            injection time (throughput counts every delivery).
        latency_sum / latency_max: over the latency sample set.
        latencies: per-packet samples when ``config.collect_latencies``.
        in_flight_at_end: packets still in the network when the run halted.
        dropped_packets / dropped_flits: worms destroyed in the window by
            fail-stop faults (``Engine.kill_packet``) and the flits
            flushed with them; always 0 under the lossless default.
        retransmitted_packets: copies re-injected by the reliable
            transport after a timeout (window-scoped, like injections).
        duplicate_packets: deliveries the transport's sink-side filter
            suppressed as duplicates of an already-delivered message.
        given_up_packets: messages the transport abandoned after
            exhausting its retry budget.
        goodput_flits: flits of *first-copy* deliveries in the window —
            the useful payload, excluding duplicates and (by
            construction) retransmitted copies of lost worms.
        telemetry: provenance/performance record attached by the engine
            when the run completes (config digest, seed, wall clock,
            cycles/sec, peak in-flight); ``None`` for hand-built results.
    """

    config: SimulationConfig
    measured_cycles: int
    generated_packets: int = 0
    injected_packets: int = 0
    delivered_packets: int = 0
    delivered_flits: int = 0
    latency_sum: int = 0
    head_latency_sum: int = 0
    latency_max: int = 0
    latencies: list[int] = field(default_factory=list)
    in_flight_at_end: int = 0
    dropped_packets: int = 0
    dropped_flits: int = 0
    retransmitted_packets: int = 0
    duplicate_packets: int = 0
    given_up_packets: int = 0
    goodput_flits: int = 0
    #: delivered flits per interval of ``config.interval_cycles`` cycles
    #: (empty unless that option is set); trailing partial intervals are
    #: dropped
    throughput_timeline: list[int] = field(default_factory=list)
    telemetry: RunTelemetry | None = None

    # -- §6 metrics -----------------------------------------------------------

    @property
    def offered_flits_per_cycle(self) -> float:
        """Realized offered load per node (flits/cycle).

        A run with an empty measurement window (``warmup == total``, or a
        second ``run()`` call on a finished engine) has no rate to
        report: 0.0, explicitly, rather than a ZeroDivisionError.
        """
        if self.measured_cycles <= 0:
            return 0.0
        return (
            self.generated_packets
            * self.config.packet_flits
            / (self.measured_cycles * self.config.num_nodes)
        )

    @property
    def accepted_flits_per_cycle(self) -> float:
        """Accepted bandwidth per node (flits/cycle): the sustained data
        delivery rate given the offered bandwidth at the input.  0.0
        when the measurement window is empty (see
        :attr:`offered_flits_per_cycle`)."""
        if self.measured_cycles <= 0:
            return 0.0
        return self.delivered_flits / (self.measured_cycles * self.config.num_nodes)

    @property
    def offered_fraction(self) -> float:
        """Realized offered load as a fraction of capacity."""
        return self.offered_flits_per_cycle / self.config.capacity_flits_per_cycle

    @property
    def accepted_fraction(self) -> float:
        """Accepted bandwidth as a fraction of capacity (CNF y-axis)."""
        return self.accepted_flits_per_cycle / self.config.capacity_flits_per_cycle

    @property
    def goodput_flits_per_cycle(self) -> float:
        """First-copy delivered payload per node (flits/cycle).

        The reliability counterpart of :attr:`accepted_flits_per_cycle`:
        duplicates and retransmitted copies carry no new payload, so
        under faults goodput <= accepted bandwidth.  0.0 when the
        measurement window is empty, and equal to the accepted bandwidth
        when no reliable transport is attached (``goodput_flits`` stays
        0 then, so callers should gate on :attr:`reliable`).
        """
        if self.measured_cycles <= 0:
            return 0.0
        return self.goodput_flits / (self.measured_cycles * self.config.num_nodes)

    @property
    def goodput_fraction(self) -> float:
        """First-copy goodput as a fraction of network capacity."""
        return self.goodput_flits_per_cycle / self.config.capacity_flits_per_cycle

    @property
    def reliable(self) -> bool:
        """True when a reliable transport accounted this run (any of the
        transport counters moved, or first-copy goodput was recorded)."""
        return bool(
            self.goodput_flits
            or self.retransmitted_packets
            or self.duplicate_packets
            or self.given_up_packets
        )

    @property
    def retransmit_overhead(self) -> float:
        """Retransmitted copies per injected packet in the window (0.0
        for an empty window or a run without the transport)."""
        if self.injected_packets <= 0:
            return 0.0
        return self.retransmitted_packets / self.injected_packets

    @property
    def avg_latency_cycles(self) -> float:
        """Average network latency in cycles over the sample set.

        Raises:
            AnalysisError: when no packet completed inside the window
                (deep saturation with a tiny window) — callers decide how
                to present the missing point.
        """
        if self.delivered_packets == 0:
            raise AnalysisError(f"no delivered packets in run {self.config.label()}")
        return self.latency_sum / self.delivered_packets

    @property
    def avg_head_latency_cycles(self) -> float:
        """Average injection-to-header-delivery delay (§8: head latency).

        The path-acquisition component of the network latency: rises with
        contention but is insensitive to link multiplexing.
        """
        if self.delivered_packets == 0:
            raise AnalysisError(f"no delivered packets in run {self.config.label()}")
        return self.head_latency_sum / self.delivered_packets

    @property
    def avg_tail_latency_cycles(self) -> float:
        """Average header-to-tail delay (§8: tail latency).

        The serialization component: ``S − 1`` cycles uncontended, and
        up to V times that when V packets multiplex each link.
        """
        return self.avg_latency_cycles - self.avg_head_latency_cycles

    @property
    def saturated(self) -> bool:
        """Heuristic per-run saturation flag: accepted visibly below offered.

        §6 defines saturation as the minimum offered bandwidth where the
        accepted bandwidth is lower than the packet creation rate; a 5%
        relative margin absorbs Bernoulli noise on short windows.
        """
        return self.accepted_flits_per_cycle < 0.95 * self.offered_flits_per_cycle

    def latency_percentiles(self) -> dict | None:
        """Exact percentiles over the per-packet latency samples.

        Requires ``config.collect_latencies``; returns ``None`` when no
        samples exist (flag off, or nothing delivered in the window).
        Keys: ``samples``, ``p50``, ``p95``, ``p99``, ``max`` — the same
        vocabulary as the forensics attribution histograms, but computed
        from the full sorted sample set, so values are exact.
        """
        if not self.latencies:
            return None
        samples = sorted(self.latencies)
        n = len(samples)

        def at(q: float) -> int:
            return samples[min(n - 1, max(0, round(q * n) - 1))]

        return {
            "samples": n,
            "p50": at(0.50),
            "p95": at(0.95),
            "p99": at(0.99),
            "max": samples[-1],
        }

    def summary(self) -> str:
        """One-line human-readable digest."""
        if self.measured_cycles <= 0:
            return f"{self.config.label()}: no measurement window (0 cycles)"
        try:
            lat = f"{self.avg_latency_cycles:.1f}"
        except AnalysisError:
            lat = "n/a"
        line = (
            f"{self.config.label()}: offered={self.offered_fraction:.3f} "
            f"accepted={self.accepted_fraction:.3f} latency={lat}cyc "
            f"delivered={self.delivered_packets}"
        )
        if self.dropped_packets:
            line += f" dropped={self.dropped_packets}"
        if self.reliable:
            line += (
                f" goodput={self.goodput_fraction:.3f} "
                f"retx={self.retransmitted_packets} "
                f"gave_up={self.given_up_packets}"
            )
        return line
