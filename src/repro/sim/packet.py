"""Packet bookkeeping.

A packet is a worm of ``size`` flits; the first flit is the header (it
carries the routing information and allocates lanes), the last the tail
(it releases them).  Individual flits carry no payload in the model, so
the packet object only records identity and the timestamps needed for the
paper's metrics:

* ``created`` — cycle the source process generated it;
* ``injected`` — cycle the header entered the injection lane (the start of
  the paper's network latency, which excludes source queueing);
* ``delivered`` — cycle the tail reached the destination node;
* ``dropped`` — cycle a fail-stop fault killed the worm in flight (-1
  for the lossless default; a packet is never both delivered and
  dropped).
"""

from __future__ import annotations


class Packet:
    """One wormhole packet."""

    __slots__ = (
        "pid",
        "src",
        "dst",
        "size",
        "created",
        "injected",
        "head_delivered",
        "delivered",
        "dropped",
    )

    def __init__(self, pid: int, src: int, dst: int, size: int, created: int):
        self.pid = pid
        self.src = src
        self.dst = dst
        self.size = size
        self.created = created
        self.injected = -1
        #: cycle the header flit reached the destination (§8 distinguishes
        #: head latency from tail latency for the flow-control analysis)
        self.head_delivered = -1
        self.delivered = -1
        #: cycle a fail-stop fault destroyed the worm in flight
        self.dropped = -1

    @property
    def network_latency(self) -> int:
        """Header injection to tail delivery, in cycles (§6).

        Only meaningful once delivered; -1 sentinel arithmetic is guarded
        by the caller (the stats collector only sees delivered packets).
        """
        return self.delivered - self.injected

    @property
    def head_latency(self) -> int:
        """Header injection to header delivery — path-acquisition delay."""
        return self.head_delivered - self.injected

    @property
    def tail_latency(self) -> int:
        """Header delivery to tail delivery — the serialization /
        link-multiplexing component the paper's §8 discussion isolates."""
        return self.delivered - self.head_delivered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(pid={self.pid}, {self.src}->{self.dst}, size={self.size}, "
            f"created={self.created}, injected={self.injected}, delivered={self.delivered})"
        )


class _FaultSentinel(Packet):
    """The sentinel's own type, so pickling preserves ``is``-identity.

    Checkpointing pickles the whole engine graph; a sentinel pickled by
    value would come back as a copy and silently break every
    ``is FAULT_SENTINEL`` check after a restore.  Reducing to the module
    attribute costs nothing for ordinary packets (pickle consults
    ``__reduce__`` per *type*, via C dispatch) — unlike a pickler-level
    ``persistent_id`` hook, which is a Python call per pickled object.
    """

    __slots__ = ()

    def __reduce__(self):
        return (_restore_fault_sentinel, ())


def _restore_fault_sentinel() -> "Packet":
    return FAULT_SENTINEL


#: Sentinel packet marking a lane as dead (fault injection): it never
#: moves and is never delivered, so allocating it to a lane makes the
#: lane permanently busy for routing without touching the hot paths.
#: Defined here (rather than in :mod:`repro.faults`) so low-level code —
#: the engine's deadlock diagnostics in particular — can recognize
#: faulted lanes without importing the fault subsystem.
FAULT_SENTINEL = _FaultSentinel(pid=-1, src=0, dst=0, size=1 << 30, created=-1)
