"""High-level simulation entry points.

:func:`simulate` turns a :class:`~repro.sim.config.SimulationConfig` into a
:class:`~repro.sim.results.RunResult`; :func:`tree_config` and
:func:`cube_config` build paper-faithful configurations (flit widths,
capacities and packet sizes from the §5 normalization) with one call.

Example::

    from repro.sim import simulate
    from repro.sim.run import tree_config

    result = simulate(tree_config(vcs=4, pattern="uniform", load=0.5))
    print(result.accepted_fraction, result.avg_latency_cycles)
"""

from __future__ import annotations

from ..routing.base import make_routing
from ..timing.normalization import cube_scaling, tree_scaling
from ..topology.cube import KAryNCube
from ..topology.tree import KAryNTree
from ..traffic.generator import BernoulliInjector
from ..traffic.patterns import make_pattern
from .config import SimulationConfig
from .engine import Engine
from .results import RunResult


def build_engine(config: SimulationConfig, probe=None) -> Engine:
    """Instantiate topology, routing, traffic and engine for a config.

    Args:
        config: the run recipe.
        probe: optional observability probe (:mod:`repro.obs`) attached
            before the first cycle, so it sees the whole run.
    """
    if config.network == "tree":
        topo = KAryNTree(config.k, config.n)
    else:
        topo = KAryNCube(config.k, config.n)
    routing = make_routing(config.algorithm)
    pattern = make_pattern(config.pattern, topo.num_nodes, **config.pattern_kwargs)
    injector = BernoulliInjector(
        pattern,
        flits_per_cycle=config.injection_flits_per_cycle,
        packet_flits=config.packet_flits,
        seed=config.seed,
    )
    engine = Engine(topo, routing, injector, config)
    if probe is not None:
        engine.attach_probe(probe)
    return engine


def simulate(config: SimulationConfig, probe=None, checkpoint=None) -> RunResult:
    """Run one simulation to completion and return its measurements.

    An optional ``probe`` (:mod:`repro.obs`) instruments the run; the
    returned result always carries :class:`~repro.obs.telemetry.RunTelemetry`.

    ``checkpoint`` (a :class:`~repro.sim.checkpoint.CheckpointPolicy`)
    makes the run resumable: a valid checkpoint in the policy's
    directory finishes the interrupted run (byte-identical document,
    wall-clock aside); otherwise the run starts fresh with a
    :class:`~repro.sim.checkpoint.CheckpointProbe` composed onto
    ``probe``.
    """
    if checkpoint is not None:
        from .checkpoint import attach_checkpoints, resume_point

        resumed = resume_point(checkpoint, config)
        if resumed is not None:
            return resumed
        engine = build_engine(config, probe=probe)
        attach_checkpoints(engine, checkpoint)
        return engine.run()
    return build_engine(config, probe=probe).run()


def tree_config(
    k: int = 4,
    n: int = 4,
    vcs: int = 4,
    pattern: str = "uniform",
    load: float = 0.1,
    algorithm: str = "tree_adaptive",
    **overrides,
) -> SimulationConfig:
    """Paper-normalized k-ary n-tree configuration (§5 defaults).

    2-byte flits (64-byte packets = 32 flits), capacity 1 flit/cycle/node,
    adaptive routing (``algorithm="tree_deterministic"`` selects the
    oblivious baseline).  ``overrides`` reach :class:`SimulationConfig`
    directly (seed, warmup_cycles, total_cycles, ...).
    """
    scaling = tree_scaling(k, n)
    return SimulationConfig(
        network="tree",
        k=k,
        n=n,
        algorithm=algorithm,
        vcs=vcs,
        packet_flits=overrides.pop("packet_flits", scaling.packet_flits),
        capacity_flits_per_cycle=scaling.capacity_flits_per_cycle,
        pattern=pattern,
        load=load,
        **overrides,
    )


def cube_config(
    k: int = 16,
    n: int = 2,
    algorithm: str = "duato",
    vcs: int = 4,
    pattern: str = "uniform",
    load: float = 0.1,
    **overrides,
) -> SimulationConfig:
    """Paper-normalized k-ary n-cube configuration (§5 defaults).

    4-byte flits (64-byte packets = 16 flits), capacity ``8/k`` flits per
    cycle per node (0.5 for the 16-ary 2-cube).
    """
    scaling = cube_scaling(k, n)
    return SimulationConfig(
        network="cube",
        k=k,
        n=n,
        algorithm=algorithm,
        vcs=vcs,
        packet_flits=overrides.pop("packet_flits", scaling.packet_flits),
        capacity_flits_per_cycle=scaling.capacity_flits_per_cycle,
        pattern=pattern,
        load=load,
        **overrides,
    )


def quick_run(**kwargs) -> RunResult:
    """Tiny-network smoke helper used by examples and docs.

    Any keyword accepted by :func:`tree_config`; defaults to a 2-ary
    2-tree at light load with short windows so it completes in
    milliseconds.
    """
    defaults = dict(k=2, n=2, vcs=2, load=0.2, warmup_cycles=50, total_cycles=400)
    defaults.update(kwargs)
    return simulate(tree_config(**defaults))
