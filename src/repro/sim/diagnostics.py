"""Deadlock diagnostics.

When the engine's progress watchdog fires, a bare "no flit movement"
message is nearly useless for debugging a routing algorithm or a fault
scenario: the interesting question is *which* packets are stuck *where*,
and what resources they hold.  :func:`capture_snapshot` freezes exactly
that — the blocked packets with their positions and progress counters,
the held output lanes, the pending unrouted headers and the faulted lane
population — into a plain-data :class:`DeadlockSnapshot` that travels on
:class:`~repro.errors.DeadlockError` (including across the process
boundary of a parallel sweep, so a worker's deadlock arrives in the
parent fully diagnosable).
"""

from __future__ import annotations

from dataclasses import dataclass

from .packet import FAULT_SENTINEL


@dataclass(frozen=True)
class BlockedPacket:
    """One in-flight packet observed at watchdog time.

    Attributes:
        pid / src / dst / size: packet identity.
        switch / port / vc: input lane currently holding the header-most
            buffered flits of the packet (one entry per allocated input
            lane, so a long worm spanning several switches contributes
            several entries).
        received / forwarded: the lane's progress counters.
        routed: whether the lane already holds a crossbar binding (False
            means the header is still waiting for the routing phase to
            find it a free output lane).
    """

    pid: int
    src: int
    dst: int
    size: int
    switch: int
    port: int
    vc: int
    received: int
    forwarded: int
    routed: bool


@dataclass(frozen=True)
class DeadlockSnapshot:
    """Plain-data state of a stalled network, attached to DeadlockError.

    Attributes:
        cycle: cycle at which the watchdog fired.
        last_progress_cycle: last cycle any flit moved.
        in_flight: packets injected but not fully delivered.
        blocked: per-input-lane observations (capped at ``limit`` entries
            at capture time; ``truncated`` tells whether the cap bit).
        truncated: True when more blocked lanes existed than reported.
        held_lanes: output lanes allocated to real packets.
        pending_headers: input lanes queued for routing with no binding.
        faulted_lanes: output lanes disabled by fault injection.
    """

    cycle: int
    last_progress_cycle: int
    in_flight: int
    blocked: tuple[BlockedPacket, ...]
    truncated: bool
    held_lanes: int
    pending_headers: int
    faulted_lanes: int

    def describe(self) -> str:
        """Multi-line human-readable rendering for logs and CLI output."""
        lines = [
            f"deadlock at cycle {self.cycle} "
            f"(last progress at cycle {self.last_progress_cycle})",
            f"  in flight: {self.in_flight} packets; "
            f"held output lanes: {self.held_lanes}; "
            f"unrouted headers: {self.pending_headers}; "
            f"faulted lanes: {self.faulted_lanes}",
        ]
        for b in self.blocked:
            state = "bound" if b.routed else "UNROUTED"
            lines.append(
                f"  pkt {b.pid} {b.src}->{b.dst} ({b.size} flits) at "
                f"switch {b.switch} port {b.port} vc {b.vc}: "
                f"received {b.received}, forwarded {b.forwarded}, {state}"
            )
        if self.truncated:
            lines.append("  ... (more blocked lanes omitted)")
        return "\n".join(lines)


def capture_snapshot(engine, limit: int = 16) -> DeadlockSnapshot:
    """Freeze the blocked state of ``engine`` into a DeadlockSnapshot.

    Args:
        engine: a live :class:`~repro.sim.engine.Engine`.
        limit: cap on the number of per-lane ``blocked`` entries kept
            (the counters are always exact; only the listing is capped).
    """
    blocked: list[BlockedPacket] = []
    blocked_total = 0
    for s in range(engine.topology.num_switches):
        for port_lanes in engine.in_lanes[s]:
            for lane in port_lanes:
                pkt = lane.packet
                if pkt is None or pkt is FAULT_SENTINEL:
                    continue
                blocked_total += 1
                if len(blocked) < limit:
                    blocked.append(
                        BlockedPacket(
                            pid=pkt.pid,
                            src=pkt.src,
                            dst=pkt.dst,
                            size=pkt.size,
                            switch=lane.switch,
                            port=lane.port,
                            vc=lane.vc,
                            received=lane.received,
                            forwarded=lane.forwarded,
                            routed=lane.bound is not None,
                        )
                    )
    held = 0
    faulted = 0
    for s in range(engine.topology.num_switches):
        for port_lanes in engine.out_lanes[s]:
            for lane in port_lanes:
                if lane.packet is FAULT_SENTINEL:
                    faulted += 1
                elif lane.packet is not None:
                    held += 1
    pending_headers = sum(1 for _ in engine.unrouted_headers())
    return DeadlockSnapshot(
        cycle=engine.cycle,
        last_progress_cycle=engine._last_progress,
        in_flight=engine.in_flight_packets(),
        blocked=tuple(blocked),
        truncated=blocked_total > len(blocked),
        held_lanes=held,
        pending_headers=pending_headers,
        faulted_lanes=faulted,
    )
