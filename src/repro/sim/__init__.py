"""Flit-level wormhole simulation engine (paper §4).

* :mod:`repro.sim.packet` — packet bookkeeping.
* :mod:`repro.sim.config` — :class:`SimulationConfig`, the complete recipe
  for one run (network, routing, traffic, load, windows, seed).
* :mod:`repro.sim.engine` — the three-phase cycle loop (link, crossbar,
  routing) over the lane structures of :mod:`repro.router`.
* :mod:`repro.sim.results` — raw per-run measurements.
* :mod:`repro.sim.run` — :func:`simulate`, the one-call public entry point.
"""

from .config import SimulationConfig
from .engine import Engine
from .packet import Packet
from .results import RunResult
from .run import build_engine, simulate

__all__ = [
    "SimulationConfig",
    "Engine",
    "Packet",
    "RunResult",
    "build_engine",
    "simulate",
]
