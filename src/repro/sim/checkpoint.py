"""Digest-verified engine checkpoint/restore and the supervision glue.

A checkpoint is one file holding the *complete* simulation state — the
same closure :mod:`repro.obs.statehash` fingerprints: fabric lanes,
buffers, credits and routes, arbiter and routing state, injection
queues and source stream positions, transport/AIMD state and every RNG
stream.  Rather than re-enumerating that state field by field (and
silently rotting the first time the engine grows a new attribute), the
whole engine object graph is pickled; the recorded
``Engine.state_fingerprint()`` root then *proves* the restore is exact,
because the fingerprint enumerates the state independently of pickle.

File format: one ASCII JSON header line (format version, config digest,
seed, cycle, fingerprint root, payload digest and byte count) followed
by the pickle payload.  Files are written atomically (temp file, fsync,
``os.replace``) so a crash mid-write leaves either the old checkpoint
or none.  On load, three gates run in order — payload digest, config
digest (staleness), restored fingerprint root — and a failed gate
raises :class:`~repro.errors.CheckpointError` with a ``kind`` tag that
becomes a structured *discard finding* in the directory's manifest.

Verification caveat: the fingerprint's RNG leaf folds Mersenne state
with CPython's unsalted tuple hash, so a checkpoint verifies on the
same interpreter build that wrote it (the normal supervisor topology:
parent resumes what its killed child saved).  The payload itself is
portable pickle.

:class:`CheckpointProbe` takes periodic checkpoints from *engine cycle
hooks*, not from ``on_cycle``: a hook fires at the start of a cycle,
when the state is a consistent post-step boundary and every composed
probe (flight, forensics, statehash) has fully observed the previous
cycle — so probe order inside a :class:`~repro.obs.probe.MultiProbe`
can never leave a sibling half-observed inside the snapshot.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import importlib
import io
import json
import os
import pathlib
import pickle
import signal
import threading
import weakref

try:  # pragma: no cover - exercised only on non-POSIX hosts
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

from ..errors import CheckpointError, ConfigurationError
from ..obs.probe import MultiProbe, Probe
from ..obs.telemetry import config_digest

#: bump on breaking changes to the header schema or pickle envelope
CHECKPOINT_FORMAT_VERSION = 1
CHECKPOINT_MAGIC = "repro-checkpoint"
CHECKPOINT_SUFFIX = ".rckpt"
MANIFEST_NAME = "manifest.json"

_LOCK_NAME = ".lock"
_MAX_HEADER_BYTES = 65536


# -- cross-process file locking ------------------------------------------------


@contextlib.contextmanager
def file_lock(path):
    """Exclusive advisory lock on ``path`` (``fcntl.flock``).

    Shared by checkpoint manifests and the
    :class:`~repro.experiments.runcache.RunCache` so concurrent workers
    on one directory serialize their read-modify-write windows.  On
    platforms without ``fcntl`` the lock degrades to a no-op (the
    atomic-rename writes still prevent torn files, only manifest merges
    can race).
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fh = open(path, "a+b")
    try:
        if fcntl is not None:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        yield fh
    finally:
        if fcntl is not None:
            with contextlib.suppress(OSError):
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        fh.close()


# -- pickle envelope -----------------------------------------------------------
#
# Plain pickle suffices: the one identity-sensitive object in the graph,
# the engine's fault sentinel, reduces itself back to the module
# singleton (see repro.sim.packet._FaultSentinel) — a per-type C-level
# dispatch, unlike a pickler-wide persistent_id hook, which costs one
# Python call per pickled object (~15x slower on a whole-engine dump).


def _fail(kind: str, message: str):
    exc = CheckpointError(message)
    exc.kind = kind
    raise exc


# -- one checkpoint file -------------------------------------------------------


def save_checkpoint(engine, path) -> dict:
    """Write ``engine``'s complete state to ``path`` atomically.

    Returns the header dict.  Raises :class:`CheckpointError` when the
    engine graph holds an unpicklable live resource (e.g. a flight
    recorder streaming events to an open file).
    """
    buf = io.BytesIO()
    try:
        pickle.Pickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(engine)
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"engine state is not serializable: {exc}"
        ) from exc
    payload = buf.getvalue()
    fingerprint = engine.state_fingerprint()
    header = {
        "magic": CHECKPOINT_MAGIC,
        "format": CHECKPOINT_FORMAT_VERSION,
        "config": config_digest(engine.config),
        "seed": engine.config.seed,
        "cycle": engine.cycle,
        "total_cycles": engine.config.total_cycles,
        "root": fingerprint["root"],
        "payload_digest": hashlib.blake2b(payload, digest_size=16).hexdigest(),
        "payload_bytes": len(payload),
    }
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "wb") as fh:
        fh.write(json.dumps(header, sort_keys=True).encode("ascii"))
        fh.write(b"\n")
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return header


def read_checkpoint_header(path) -> dict:
    """Parse and sanity-check the header line only (cheap; no unpickle)."""
    try:
        with open(path, "rb") as fh:
            line = fh.readline(_MAX_HEADER_BYTES)
    except OSError as exc:
        _fail("unreadable", f"{path}: {exc}")
    try:
        header = json.loads(line.decode("ascii"))
    except (UnicodeDecodeError, ValueError):
        _fail("corrupt", f"{path}: unparseable checkpoint header")
    if not isinstance(header, dict) or header.get("magic") != CHECKPOINT_MAGIC:
        _fail("corrupt", f"{path}: not a repro checkpoint")
    if header.get("format") != CHECKPOINT_FORMAT_VERSION:
        _fail(
            "stale",
            f"{path}: checkpoint format {header.get('format')!r}, "
            f"this build reads {CHECKPOINT_FORMAT_VERSION}",
        )
    return header


def load_checkpoint(path, config=None):
    """Restore an engine from ``path``; returns ``(engine, header)``.

    Three verification gates, in cost order: the payload digest (bit
    rot, truncation), the config digest when ``config`` is given
    (staleness — a checkpoint from some other recipe), and finally the
    restored engine's recomputed fingerprint root against the recorded
    one (the restore-is-exact proof).  Any failed gate raises
    :class:`CheckpointError` with ``.kind`` set.
    """
    header = read_checkpoint_header(path)
    if config is not None and config_digest(config) != header.get("config"):
        _fail(
            "stale",
            f"{path}: checkpoint config {header.get('config')} does not "
            f"match requested config {config_digest(config)}",
        )
    with open(path, "rb") as fh:
        fh.readline(_MAX_HEADER_BYTES)
        payload = fh.read()
    if len(payload) != header.get("payload_bytes"):
        _fail(
            "corrupt",
            f"{path}: payload is {len(payload)} bytes, header recorded "
            f"{header.get('payload_bytes')}",
        )
    digest = hashlib.blake2b(payload, digest_size=16).hexdigest()
    if digest != header.get("payload_digest"):
        _fail("corrupt", f"{path}: payload digest mismatch")
    try:
        engine = pickle.loads(payload)
    except CheckpointError:
        raise
    except Exception as exc:
        _fail("corrupt", f"{path}: payload does not unpickle: {exc}")
    if engine.cycle != header.get("cycle"):
        _fail(
            "corrupt",
            f"{path}: restored engine at cycle {engine.cycle}, header "
            f"recorded {header.get('cycle')}",
        )
    root = engine.state_fingerprint()["root"]
    if root != header.get("root"):
        _fail(
            "fingerprint-mismatch",
            f"{path}: restored fingerprint {root} != recorded "
            f"{header.get('root')}",
        )
    return engine, header


# -- directory scanning --------------------------------------------------------


def checkpoint_files(directory) -> list:
    """Checkpoint paths in ``directory``, newest cycle first (the
    zero-padded filenames make lexicographic order cycle order)."""
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob(f"ckpt-*{CHECKPOINT_SUFFIX}"), reverse=True)


def has_resumable(directory, config=None) -> bool:
    """Cheap header-only scan: does any checkpoint match ``config``?"""
    digest = None if config is None else config_digest(config)
    for path in checkpoint_files(directory):
        try:
            header = read_checkpoint_header(path)
        except CheckpointError:
            continue
        if digest is None or header.get("config") == digest:
            return True
    return False


def newest_valid_checkpoint(directory, config=None):
    """Load the newest checkpoint in ``directory`` that survives all
    verification gates, or ``None``.

    Corrupt/stale/unverifiable files are skipped and recorded as
    structured discard findings in the directory manifest — a resume
    must never trust a checkpoint it cannot prove.
    """
    findings = []
    loaded = None
    for path in checkpoint_files(directory):
        try:
            loaded = load_checkpoint(path, config=config)
            break
        except CheckpointError as exc:
            findings.append(
                {
                    "file": pathlib.Path(path).name,
                    "kind": getattr(exc, "kind", "corrupt"),
                    "error": str(exc),
                }
            )
    if findings:
        record_discards(directory, findings)
    return loaded


# -- the per-directory manifest ------------------------------------------------


def manifest_path(directory) -> pathlib.Path:
    return pathlib.Path(directory) / MANIFEST_NAME


def _empty_manifest() -> dict:
    return {
        "format": CHECKPOINT_FORMAT_VERSION,
        "config": None,
        "seed": None,
        "checkpoints": [],
        "discarded": [],
        "completed": False,
    }


def read_manifest(directory) -> dict:
    """The directory's manifest, or an empty one when absent/unreadable."""
    try:
        with open(manifest_path(directory), encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return _empty_manifest()
    if not isinstance(doc, dict) or doc.get("format") != CHECKPOINT_FORMAT_VERSION:
        return _empty_manifest()
    return doc


def _atomic_json(path, doc) -> None:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _update_manifest(directory, mutate) -> dict:
    """Flocked read-modify-write of the manifest (concurrent workers on
    a shared campaign directory must not interleave partial merges)."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with file_lock(directory / _LOCK_NAME):
        doc = read_manifest(directory)
        mutate(doc)
        _atomic_json(manifest_path(directory), doc)
    return doc


def record_discards(directory, findings) -> None:
    """Append discard findings for rejected checkpoint files."""

    def mutate(doc):
        doc["discarded"].extend(findings)

    _update_manifest(directory, mutate)


def clear_checkpoints(directory, completed: bool = True) -> None:
    """Remove a point's checkpoint files once its result is safe.

    Called by campaign supervision after a point's result document
    lands in the per-point cache — the checkpoints have nothing left to
    protect, and leaving them would make a later ``--resume`` replay
    the tail of an already-finished run.
    """
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return
    for path in directory.glob(f"ckpt-*{CHECKPOINT_SUFFIX}"):
        with contextlib.suppress(OSError):
            path.unlink()

    def mutate(doc):
        doc["checkpoints"] = []
        doc["completed"] = bool(completed)

    _update_manifest(directory, mutate)


# -- configuration -------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CheckpointConfig:
    """Knobs for one run's periodic checkpointing."""

    #: cycles between periodic checkpoints
    interval_cycles: int = 1000
    #: newest checkpoints retained on disk per directory
    keep: int = 2

    def __post_init__(self):
        if self.interval_cycles <= 0:
            raise ConfigurationError(
                f"interval_cycles must be positive, got {self.interval_cycles}"
            )
        if self.keep < 1:
            raise ConfigurationError(f"keep must be at least 1, got {self.keep}")


@dataclasses.dataclass(frozen=True)
class CheckpointPolicy:
    """A picklable checkpoint request threaded through entry points.

    ``simulate(config, checkpoint=CheckpointPolicy("ckpts/"))`` first
    tries to resume from the newest valid checkpoint in ``directory``
    (unless ``resume`` is off), then runs with a
    :class:`CheckpointProbe` composed onto whatever probe the caller
    supplied.  Picklable so campaign pools ship it to worker processes.
    """

    directory: str
    interval_cycles: int = 1000
    keep: int = 2
    resume: bool = True

    @property
    def config(self) -> CheckpointConfig:
        return CheckpointConfig(
            interval_cycles=self.interval_cycles, keep=self.keep
        )


# -- the probe -----------------------------------------------------------------

#: live probes reachable by the SIGUSR1 escalation handler
_LIVE = weakref.WeakSet()


class CheckpointProbe(Probe):
    """Periodic + on-demand checkpoints, composable with any probe tier.

    Periodic checkpoints ride engine cycle hooks (see module docstring
    for why that beats ``on_cycle``).  :meth:`request` — typically from
    the supervisor's SIGUSR1 soft-timeout escalation — schedules an
    extra checkpoint plus a diagnostic snapshot at the next cycle
    boundary, where the state is consistent again.

    ``finisher`` names a module-level function as ``"module:attr"``;
    after a resumed run completes, :func:`resume_point` calls
    ``finisher(engine, result, **finisher_args)`` to reapply the
    post-run work the original entry point would have done (audits,
    reliability documents).  A dotted path rather than a callable keeps
    the probe — and therefore the checkpoint itself — picklable.
    """

    def __init__(self, directory, config=None, finisher=None, finisher_args=None):
        self.directory = str(directory)
        self.config = config or CheckpointConfig()
        self.finisher = finisher
        self.finisher_args = dict(finisher_args or {})
        self.engine = None
        self.taken = 0
        self.escalations = 0
        self._requested = False
        self._last_cycle = -1

    def bind(self, engine) -> None:
        self.engine = engine

    def on_run_start(self, engine) -> None:
        self.engine = engine
        _LIVE.add(self)
        nxt = engine.cycle + self.config.interval_cycles
        if nxt < engine.config.total_cycles:
            engine.add_cycle_hook(nxt, self._periodic)

    def resumed(self, engine, directory=None) -> None:
        """Re-register after a restore.

        ``on_run_start`` must *not* re-fire on resume (sibling probes
        would reset their accumulated state), so this re-links the
        restored probe to the live registry — the armed cycle hooks
        travelled inside the pickle and need no re-arming.
        """
        self.engine = engine
        if directory is not None:
            self.directory = str(directory)
        _LIVE.add(self)

    def request(self) -> None:
        """Ask for a checkpoint + diagnostic snapshot at the next cycle
        boundary (async-signal safe: just sets a flag)."""
        self._requested = True

    def on_cycle(self, cycle: int) -> None:
        if self._requested and self.engine is not None:
            self._requested = False
            nxt = cycle + 1
            if nxt < self.engine.config.total_cycles:
                self.engine.add_cycle_hook(nxt, self._escalate)

    # -- hook bodies (engine state is at a consistent cycle boundary) --------

    def _periodic(self, engine) -> None:
        # re-arm BEFORE writing, so the snapshot carries the next
        # periodic hook and a restored run keeps checkpointing itself
        nxt = engine.cycle + self.config.interval_cycles
        if nxt < engine.config.total_cycles:
            engine.add_cycle_hook(nxt, self._periodic)
        self._write(engine)

    def _escalate(self, engine) -> None:
        from .diagnostics import capture_snapshot

        self.escalations += 1
        self._write(engine)
        doc = {
            "cycle": engine.cycle,
            "reason": "soft-timeout escalation",
            "in_flight": engine.in_flight_packets(),
            "snapshot": capture_snapshot(engine).describe(),
        }
        _atomic_json(
            pathlib.Path(self.directory) / f"escalation-c{engine.cycle:012d}.json",
            doc,
        )

    def _write(self, engine) -> None:
        if engine.cycle == self._last_cycle:
            return
        directory = pathlib.Path(self.directory)
        name = f"ckpt-{engine.cycle:012d}{CHECKPOINT_SUFFIX}"
        header = save_checkpoint(engine, directory / name)
        self._last_cycle = engine.cycle
        self.taken += 1
        files = sorted(directory.glob(f"ckpt-*{CHECKPOINT_SUFFIX}"))
        stale = files[: -self.config.keep] if len(files) > self.config.keep else []
        pruned = {p.name for p in stale}
        for path in stale:
            with contextlib.suppress(OSError):
                path.unlink()

        def mutate(doc):
            doc["config"] = header["config"]
            doc["seed"] = header["seed"]
            doc["completed"] = False
            entries = [
                e
                for e in doc["checkpoints"]
                if e.get("file") not in pruned and e.get("cycle") != header["cycle"]
            ]
            entries.append(
                {
                    "file": name,
                    "cycle": header["cycle"],
                    "root": header["root"],
                    "payload_bytes": header["payload_bytes"],
                }
            )
            doc["checkpoints"] = sorted(entries, key=lambda e: e["cycle"])

        _update_manifest(directory, mutate)


def find_checkpoint_probe(probe):
    """The :class:`CheckpointProbe` inside a probe tree, or ``None``."""
    if isinstance(probe, CheckpointProbe):
        return probe
    for child in getattr(probe, "probes", ()):
        found = find_checkpoint_probe(child)
        if found is not None:
            return found
    return None


def attach_checkpoints(engine, policy, finisher=None, finisher_args=None):
    """Compose a :class:`CheckpointProbe` onto ``engine`` per ``policy``."""
    probe = CheckpointProbe(
        policy.directory,
        policy.config,
        finisher=finisher,
        finisher_args=finisher_args,
    )
    if engine.probe is None:
        engine.attach_probe(probe)
    else:
        # the existing probe tree is already bound; bind only ourselves
        engine.probe = MultiProbe([engine.probe, probe])
        probe.bind(engine)
    return probe


# -- resume --------------------------------------------------------------------


def _resolve_finisher(spec: str):
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise CheckpointError(
            f"finisher {spec!r} is not a 'module:function' dotted path"
        )
    try:
        return getattr(importlib.import_module(module_name), attr)
    except (ImportError, AttributeError) as exc:
        raise CheckpointError(
            f"cannot resolve checkpoint finisher {spec!r}: {exc}"
        ) from exc


def resume_point(policy, config):
    """Finish an interrupted run from its newest valid checkpoint.

    Returns the completed :class:`~repro.sim.results.RunResult`, or
    ``None`` when no trustworthy checkpoint for ``config`` exists (the
    caller then runs from scratch).  The resumed run's document is
    byte-identical to an uninterrupted run's, wall-clock telemetry
    aside — the statehash chain, when active, proves it.
    """
    if policy is None or not policy.resume:
        return None
    loaded = newest_valid_checkpoint(policy.directory, config=config)
    if loaded is None:
        return None
    engine, _header = loaded
    probe = find_checkpoint_probe(engine.probe)
    if probe is not None:
        probe.resumed(engine, directory=policy.directory)
    result = engine.resume_run()
    if probe is not None and probe.finisher:
        fn = _resolve_finisher(probe.finisher)
        result = fn(engine, result, **probe.finisher_args)
    return result


# -- supervision signal plumbing -----------------------------------------------


def request_all_checkpoints() -> None:
    """Flag every live :class:`CheckpointProbe` (signal-handler body)."""
    for probe in list(_LIVE):
        probe.request()


def install_escalation_handler() -> bool:
    """Route SIGUSR1 to :func:`request_all_checkpoints` in this process.

    Installed by supervised sweep workers so the parent's soft-timeout
    escalation lands as a checkpoint + diagnostic snapshot rather than
    nothing.  Returns False (and installs nothing) on platforms without
    SIGUSR1 or off the main thread.
    """
    if not hasattr(signal, "SIGUSR1"):
        return False
    if threading.current_thread() is not threading.main_thread():
        return False
    signal.signal(signal.SIGUSR1, lambda signum, frame: request_all_checkpoints())
    return True
