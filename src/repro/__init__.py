"""repro — reproduction of *Network Performance under Physical Constraints*
(Fabrizio Petrini and Marco Vanneschi, ICPP 1997).

A flit-level wormhole-routing simulator for k-ary n-trees (fat-trees) and
k-ary n-cubes (tori), with the paper's five routing configurations,
Chien's router cost model and the physical-constraint normalization that
makes the two networks comparable.

Quick start::

    from repro import simulate, tree_config, cube_config

    tree = simulate(tree_config(vcs=4, pattern="uniform", load=0.5,
                                warmup_cycles=200, total_cycles=1200))
    cube = simulate(cube_config(algorithm="duato", pattern="uniform",
                                load=0.5, warmup_cycles=200, total_cycles=1200))
    print(tree.accepted_fraction, cube.accepted_fraction)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .errors import (
    AnalysisError,
    ConfigurationError,
    DeadlockError,
    PointTimeoutError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)
from .faults import (
    CubeLinkFault,
    FaultSchedule,
    ScheduledFault,
    TreeUplinkFault,
    inject_cube_link_faults,
    inject_tree_uplink_faults,
    random_cube_link_faults,
    random_uplink_faults,
    validate_escape_connectivity,
)
from .obs import (
    Ledger,
    MultiProbe,
    NullProbe,
    Probe,
    RunTelemetry,
    TraceProbe,
    WindowedCounterProbe,
    config_digest,
    write_scorecard,
)
from .profiles import DEFAULT, FAST, FULL, Profile, get_profile
from .sim.config import SimulationConfig
from .sim.engine import Engine
from .sim.results import RunResult
from .sim.run import build_engine, cube_config, simulate, tree_config
from .timing.chien import RouterDelays, table1_cube_delays, table2_tree_delays
from .timing.normalization import NetworkScaling, cube_scaling, tree_scaling
from .topology.cube import KAryNCube
from .topology.tree import KAryNTree
from .traffic.patterns import PATTERNS, make_pattern
from .workloads import Trace, run_trace

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "ConfigurationError",
    "DeadlockError",
    "ReproError",
    "RoutingError",
    "SimulationError",
    "TopologyError",
    "DEFAULT",
    "FAST",
    "FULL",
    "Profile",
    "get_profile",
    "SimulationConfig",
    "Engine",
    "RunResult",
    "build_engine",
    "cube_config",
    "simulate",
    "tree_config",
    "RouterDelays",
    "table1_cube_delays",
    "table2_tree_delays",
    "NetworkScaling",
    "cube_scaling",
    "tree_scaling",
    "KAryNCube",
    "KAryNTree",
    "PATTERNS",
    "make_pattern",
    "PointTimeoutError",
    "CubeLinkFault",
    "FaultSchedule",
    "ScheduledFault",
    "TreeUplinkFault",
    "inject_cube_link_faults",
    "inject_tree_uplink_faults",
    "random_cube_link_faults",
    "random_uplink_faults",
    "validate_escape_connectivity",
    "Trace",
    "run_trace",
    "Ledger",
    "MultiProbe",
    "NullProbe",
    "Probe",
    "RunTelemetry",
    "TraceProbe",
    "WindowedCounterProbe",
    "config_digest",
    "write_scorecard",
    "__version__",
]
