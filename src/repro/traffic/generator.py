"""Packet generation processes (paper §4, §7).

Each node generates fixed-size packets according to a Bernoulli process: in
every cycle a packet is created with probability ``p`` chosen so that the
node offers ``load × capacity`` flits per cycle.  Rather than drawing one
random number per node per cycle, :class:`PacketSource` samples the
geometric inter-arrival gaps directly, which is equivalent and much cheaper
(one draw per packet).

Deterministic permutations with fixed points (``dest == source``) simply
never inject at those nodes, matching the paper's observation that under
bit reversal 16 nodes "do not inject any packet into the network".
"""

from __future__ import annotations

import math
import random
from collections import deque

from ..errors import ConfigurationError
from .patterns import TrafficPattern


class PacketSource:
    """Bernoulli packet source for a single node.

    Args:
        node: the source node id.
        pattern: destination chooser.
        prob: per-cycle packet creation probability in ``[0, 1]``.
        rng: dedicated random stream (sources must not share streams if
            runs are to be reproducible under refactoring).
    """

    __slots__ = ("node", "pattern", "prob", "rng", "queue", "_next", "_log1mp", "active")

    def __init__(self, node: int, pattern: TrafficPattern, prob: float, rng: random.Random):
        if not 0.0 <= prob <= 1.0:
            raise ConfigurationError(f"injection probability {prob} not in [0, 1]")
        self.node = node
        self.pattern = pattern
        self.prob = prob
        self.rng = rng
        #: queue of (creation_cycle, destination) awaiting injection
        self.queue: deque[tuple[int, int]] = deque()
        self.active = prob > 0.0
        if self.active and pattern.is_permutation():
            # Fixed-point sources never inject.
            if pattern.destination(node, rng) == node:
                self.active = False
        self._log1mp = math.log1p(-prob) if 0.0 < prob < 1.0 else 0.0
        # The first arrival counts failures from cycle 0 inclusive, so it
        # draws a gap from the virtual cycle -1 (arrival at cycle 0 is
        # possible); subsequent gaps are >= 1 cycle apart.
        self._next = self._draw_gap(start=-1) if self.active else -1

    def _draw_gap(self, start: int) -> int:
        """Next creation cycle at or after ``start`` (geometric gap >= 1)."""
        if self.prob >= 1.0:
            return start + 1
        u = self.rng.random()
        # Geometric number of failures before the first success.
        gap = int(math.log(u) / self._log1mp) + 1 if u > 0.0 else 1
        return start + max(gap, 1)

    def done(self) -> bool:
        """True when this source will never offer another packet.

        A stochastic source is done only when inactive with an empty
        queue; trace-driven sources (``repro.workloads``) implement the
        same protocol over a finite schedule.  Used by
        :meth:`~repro.sim.engine.Engine.run_until_drained`.
        """
        return not self.active and not self.queue

    def advance(self, cycle: int) -> int:
        """Generate all packets created up to and including ``cycle``.

        Returns the number of packets created this call.  Created packets
        are appended to :attr:`queue` with their creation cycle (used for
        measuring the offered load and, if ever needed, total latency
        including source queueing).
        """
        if not self.active:
            return 0
        created = 0
        while self._next <= cycle:
            dst = self.pattern.destination(self.node, self.rng)
            if dst != self.node:
                self.queue.append((self._next, dst))
                created += 1
            self._next = self._draw_gap(self._next)
        return created

    def pending(self) -> int:
        """Number of packets waiting in the source queue."""
        return len(self.queue)


class BernoulliInjector:
    """Factory wiring one :class:`PacketSource` per node.

    Args:
        pattern: traffic pattern shared by all nodes.
        flits_per_cycle: offered load per node in flits/cycle
            (``fraction-of-capacity × node capacity``).
        packet_flits: packet length in flits; the per-cycle packet
            probability is ``flits_per_cycle / packet_flits``.
        seed: master seed; each node gets an independent substream.
    """

    def __init__(
        self,
        pattern: TrafficPattern,
        flits_per_cycle: float,
        packet_flits: int,
        seed: int = 0,
    ):
        if packet_flits < 1:
            raise ConfigurationError(f"packet_flits must be >= 1, got {packet_flits}")
        if flits_per_cycle < 0:
            raise ConfigurationError(f"negative offered load {flits_per_cycle}")
        prob = flits_per_cycle / packet_flits
        if prob > 1.0:
            raise ConfigurationError(
                f"offered load {flits_per_cycle} flits/cycle exceeds one "
                f"packet per cycle (packet is {packet_flits} flits)"
            )
        self.pattern = pattern
        self.packet_flits = packet_flits
        self.prob = prob
        self.seed = seed
        self.num_nodes = pattern.num_nodes
        master = random.Random(seed)
        self.sources = [
            PacketSource(node, pattern, prob, random.Random(master.getrandbits(64)))
            for node in range(pattern.num_nodes)
        ]

    def offered_flits_per_cycle(self) -> float:
        """Nominal per-node offered load in flits/cycle."""
        return self.prob * self.packet_flits
