"""Closed-loop congestion control over the reliable transport (ECN-style).

The paper measures each network up to its saturation point; past it, the
ARQ transport of :mod:`repro.traffic.transport` retransmits blindly into
an already-congested fabric and goodput collapses.  This module closes
the loop with the three textbook ingredients, scaled to the flit-level
model:

* **marking** — :class:`CongestionMarker` watches every link direction
  with the same per-direction blocked accounting the forensics
  :class:`~repro.obs.forensics.HotspotProbe` uses, declares a link *hot*
  when it was blocked for more than a threshold fraction of the last
  window, and stamps each packet whose header crosses a hot or fully
  occupied link.  The stamp travels back to the source on the modeled
  ACK path (the transport folds it into the ACK event);
* **reaction** — :class:`CongestionControl` keeps one AIMD congestion
  window per (source, destination) pair.  New messages wait in a
  per-source hold queue until their destination's window has room, so
  retransmissions and fresh traffic share a single throttled injection
  path.  A clean ACK grows the window additively
  (``+ additive_increase / cwnd``), a marked ACK or a retransmission
  timeout shrinks it multiplicatively (floored at ``min_window``, with a
  per-destination cooldown so one congestion event is punished once);
  a given-up message releases its window slot like an ACK would, so the
  retry budget cannot leak window capacity;
* **arbitration** — pairs with ``config.arbiter = "age"``
  (:mod:`repro.router.arbiter`), which serves the oldest packet first
  and bounds tail latency while the windows shed load.

Everything is deterministic: marking is driven by cycle counts, windows
are pure arithmetic over the seeded event order, and the hold queues
release in a fixed scan order.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..obs.probe import MultiProbe, Probe
from .transport import ReliableTransport, TransportConfig, attach_reliability


@dataclass(frozen=True)
class CongestionConfig:
    """Tuning knobs of the closed control loop.

    Attributes:
        window_cycles: marking window length; a link's blocked count is
            compared against the threshold at the end of every window.
        hot_fraction: fraction of a window a link must spend blocked to
            be declared hot for the next window.
        occupancy_fraction: instantaneous trigger — a header crossing a
            link with *more* than this fraction of its lanes busy is
            marked even if the link was not hot last window.  The
            comparison is strict, so 1.0 (the default) disables the
            trigger: full occupancy is the steady state of any link near
            saturation and marking on it alone pins every window at the
            floor (windowed blocked-time is the primary signal).
        initial_window: starting congestion window (packets in flight
            per destination).
        min_window: multiplicative-decrease floor; at least 1 packet may
            always be outstanding, so the loop never deadlocks a flow.
        max_window: additive-increase ceiling.
        additive_increase: window growth per clean ACK, scaled by the
            current window (``cwnd += additive_increase / cwnd``, the
            one-per-RTT TCP shape).
        multiplicative_decrease: window multiplier on a marked ACK or
            timeout (0 < factor < 1).
        cooldown: minimum cycles between two decreases of the same
            destination window, so one burst of marked ACKs counts as a
            single congestion event.
        pump_scan: how many held messages a single release pass may
            examine per source; bounds per-cycle work under deep
            overload backlogs while still letting traffic to open
            destinations bypass a saturated one.
    """

    window_cycles: int = 64
    hot_fraction: float = 0.5
    occupancy_fraction: float = 1.0
    initial_window: float = 2.0
    min_window: float = 1.0
    max_window: float = 64.0
    additive_increase: float = 1.0
    multiplicative_decrease: float = 0.5
    cooldown: int = 64
    pump_scan: int = 64

    def __post_init__(self) -> None:
        if self.window_cycles < 1:
            raise ConfigurationError(
                f"window_cycles must be >= 1, got {self.window_cycles}"
            )
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_fraction must be in (0, 1], got {self.hot_fraction}"
            )
        if not 0.0 < self.occupancy_fraction <= 1.0:
            raise ConfigurationError(
                f"occupancy_fraction must be in (0, 1], got {self.occupancy_fraction}"
            )
        if self.min_window < 1.0:
            raise ConfigurationError(
                f"min_window must be >= 1 (a closed window deadlocks the "
                f"flow), got {self.min_window}"
            )
        if not self.min_window <= self.initial_window <= self.max_window:
            raise ConfigurationError(
                f"need min_window <= initial_window <= max_window, got "
                f"{self.min_window}/{self.initial_window}/{self.max_window}"
            )
        if self.additive_increase <= 0:
            raise ConfigurationError(
                f"additive_increase must be > 0, got {self.additive_increase}"
            )
        if not 0.0 < self.multiplicative_decrease < 1.0:
            raise ConfigurationError(
                f"multiplicative_decrease must be in (0, 1), got "
                f"{self.multiplicative_decrease}"
            )
        if self.cooldown < 0:
            raise ConfigurationError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.pump_scan < 1:
            raise ConfigurationError(f"pump_scan must be >= 1, got {self.pump_scan}")


class CongestionMarker(Probe):
    """Stamps packets that cross congested links (the ECN half).

    A link direction is *hot* for a whole marking window when it spent
    at least ``hot_fraction`` of the previous window blocked (busy but
    unable to move a flit — the same event the forensics hotspot probe
    counts).  Independently, a header arriving over a direction with
    more than ``occupancy_fraction`` of its lanes busy is marked
    immediately (strict, so the 1.0 default disables this trigger).
    Ejection links participate through a node → direction map, so the
    classic hotspot-destination collapse is seen by the loop.

    Marks are keyed by packet id; the transport consumes them at
    delivery time and folds the flag into the modeled ACK.
    """

    def __init__(self, config: CongestionConfig | None = None):
        self.config = config or CongestionConfig()
        self.engine = None
        #: id(direction) -> [direction, blocked cycles this window]
        self._blocked: dict[int, list] = {}
        #: id(direction) of links hot for the current window
        self._hot: set[int] = set()
        #: node -> its ejection LinkDirection
        self._eject: dict[int, object] = {}
        #: pids stamped and not yet consumed
        self._marked: set[int] = set()
        self._window_end = 0
        # whole-run marking statistics (summary document)
        self.packets_marked = 0
        self.windows = 0
        self.hot_link_windows = 0
        self.peak_hot_links = 0

    def bind(self, engine) -> None:
        self.engine = engine
        self._blocked = {id(d): [d, 0] for d in engine.dirs}
        self._eject = {
            d.lanes[0].sink.node: d for d in engine.dirs if d.to_node
        }
        self._window_end = engine.cycle + self.config.window_cycles

    # -- checkpointing --------------------------------------------------------

    def __getstate__(self) -> dict:
        # the hot-link tables are keyed by id(direction), which is
        # meaningless in another process; pickle the direction objects
        # themselves (shared references inside one engine pickle) and
        # rebuild the id keys on restore
        state = dict(self.__dict__)
        state["_blocked"] = [list(rec) for rec in self._blocked.values()]
        state["_hot"] = [
            rec[0] for rec in self._blocked.values() if id(rec[0]) in self._hot
        ]
        return state

    def __setstate__(self, state: dict) -> None:
        blocked = state.pop("_blocked")
        hot = state.pop("_hot")
        self.__dict__.update(state)
        self._blocked = {id(rec[0]): rec for rec in blocked}
        self._hot = {id(d) for d in hot}

    # -- hot-link accounting --------------------------------------------------

    def on_direction_blocked(self, cycle: int, direction) -> None:
        self._blocked[id(direction)][1] += 1

    def on_cycle(self, cycle: int) -> None:
        if cycle + 1 < self._window_end:
            return
        threshold = self.config.hot_fraction * self.config.window_cycles
        hot = set()
        for rec in self._blocked.values():
            if rec[1] >= threshold:
                hot.add(id(rec[0]))
            rec[1] = 0
        self._hot = hot
        self.windows += 1
        nhot = len(hot)
        self.hot_link_windows += nhot
        if nhot > self.peak_hot_links:
            self.peak_hot_links = nhot
        self._window_end += self.config.window_cycles

    # -- stamping -------------------------------------------------------------

    def _crossed_congested(self, direction) -> bool:
        if id(direction) in self._hot:
            return True
        lanes = direction.lanes
        return direction.nbusy > self.config.occupancy_fraction * len(lanes)

    def on_head_arrived(self, cycle: int, lane, packet) -> None:
        if self._crossed_congested(lane.src_out.direction):
            if packet.pid not in self._marked:
                self._marked.add(packet.pid)
                self.packets_marked += 1

    def on_head_delivered(self, cycle: int, packet) -> None:
        # the final (ejection) hop never fires on_head_arrived
        direction = self._eject.get(packet.dst)
        if direction is not None and self._crossed_congested(direction):
            if packet.pid not in self._marked:
                self._marked.add(packet.pid)
                self.packets_marked += 1

    def on_packet_dropped(self, cycle: int, packet, reason: str) -> None:
        self._marked.discard(packet.pid)

    # -- transport interface --------------------------------------------------

    def consume(self, pid: int) -> bool:
        """Pop and return the mark of ``pid`` (False if unmarked)."""
        if pid in self._marked:
            self._marked.remove(pid)
            return True
        return False

    def discard(self, pid: int) -> None:
        """Drop the mark of a packet that no longer needs it."""
        self._marked.discard(pid)

    def summary(self) -> dict:
        return {
            "packets_marked": self.packets_marked,
            "windows": self.windows,
            "hot_link_windows": self.hot_link_windows,
            "peak_hot_links": self.peak_hot_links,
            "unconsumed_marks": len(self._marked),
        }


class CongestionControl:
    """Per-destination AIMD windows gating injection (the reaction half).

    State per (source, destination) pair: ``[cwnd, in_flight,
    last_decrease_cycle]``.  The integer part of ``cwnd`` bounds how many
    messages of that pair may be unresolved past the hold queue at once;
    :class:`ReliableTransport` asks :meth:`try_release` before letting a
    held message join the injection path and reports ACKs, timeouts and
    give-ups back.
    """

    def __init__(self, config: CongestionConfig, marker: CongestionMarker):
        self.config = config
        self.marker = marker
        self._windows: dict[tuple[int, int], list] = {}
        # whole-run loop statistics (summary document)
        self.released = 0
        self.held = 0
        self.clean_acks = 0
        self.marked_acks = 0
        self.timeouts = 0
        self.decreases = 0
        self.min_cwnd_seen = config.initial_window
        self.max_cwnd_seen = config.initial_window

    def _state(self, src: int, dst: int) -> list:
        key = (src, dst)
        state = self._windows.get(key)
        if state is None:
            state = [self.config.initial_window, 0, -1]
            self._windows[key] = state
        return state

    # -- gating ---------------------------------------------------------------

    def try_release(self, src: int, dst: int) -> bool:
        """Claim a window slot for one message; False = keep holding."""
        state = self._state(src, dst)
        if state[1] < int(state[0]):
            state[1] += 1
            self.released += 1
            return True
        self.held += 1
        return False

    # -- feedback -------------------------------------------------------------

    def on_ack(
        self, cycle: int, src: int, dst: int, marked: bool, claimed: bool = True
    ) -> None:
        state = self._state(src, dst)
        if claimed and state[1] > 0:
            state[1] -= 1
        if marked:
            self.marked_acks += 1
            self._decrease(cycle, state)
            return
        self.clean_acks += 1
        cfg = self.config
        cwnd = state[0] + cfg.additive_increase / state[0]
        if cwnd > cfg.max_window:
            cwnd = cfg.max_window
        state[0] = cwnd
        if cwnd > self.max_cwnd_seen:
            self.max_cwnd_seen = cwnd

    def on_timeout(self, cycle: int, src: int, dst: int) -> None:
        """A retransmission timer fired: treat the loss as congestion."""
        self.timeouts += 1
        self._decrease(cycle, self._state(src, dst))

    def on_requeue(self, src: int, dst: int) -> None:
        """A timed-out message returned to the hold queue: release its
        slot (the retransmission re-claims one through
        :meth:`try_release`, so retries never bypass the gate)."""
        state = self._state(src, dst)
        if state[1] > 0:
            state[1] -= 1

    def on_give_up(self, src: int, dst: int) -> None:
        """A message left the protocol unACKed: free its window slot."""
        state = self._state(src, dst)
        if state[1] > 0:
            state[1] -= 1

    def _decrease(self, cycle: int, state: list) -> None:
        cfg = self.config
        if state[2] >= 0 and cycle - state[2] < cfg.cooldown:
            return
        state[2] = cycle
        cwnd = state[0] * cfg.multiplicative_decrease
        if cwnd < cfg.min_window:
            cwnd = cfg.min_window
        state[0] = cwnd
        self.decreases += 1
        if cwnd < self.min_cwnd_seen:
            self.min_cwnd_seen = cwnd

    def summary(self) -> dict:
        return {
            "control": dataclasses.asdict(self.config),
            "released": self.released,
            "held": self.held,
            "clean_acks": self.clean_acks,
            "marked_acks": self.marked_acks,
            "timeouts": self.timeouts,
            "decreases": self.decreases,
            "flows": len(self._windows),
            "min_cwnd": self.min_cwnd_seen,
            "max_cwnd": self.max_cwnd_seen,
            "marking": self.marker.summary(),
        }


def install_congestion(
    engine,
    transport_config: TransportConfig | None = None,
    congestion_config: CongestionConfig | None = None,
) -> ReliableTransport:
    """Install the full closed loop on ``engine``.

    Attaches a :class:`CongestionMarker` (before the transport, so marks
    exist by the time the transport sees a delivery) and a
    :class:`ReliableTransport` wired to a :class:`CongestionControl`.
    Returns the transport, whose summary carries the loop statistics.
    """
    config = congestion_config or CongestionConfig()
    marker = CongestionMarker(config)
    if engine.probe is None:
        engine.attach_probe(marker)
    else:
        engine.probe = MultiProbe([engine.probe, marker])
        marker.bind(engine)
    control = CongestionControl(config, marker)
    return ReliableTransport(transport_config, congestion=control).install(engine)


def simulate_congested(
    config,
    transport_config: TransportConfig | None = None,
    congestion_config: CongestionConfig | None = None,
    probe=None,
    checkpoint=None,
):
    """``simulate(config)`` with the closed congestion loop installed.

    The transport + control-loop accounting lands on the result's
    telemetry (``reliability["congestion"]``), so scorecards and the
    ledger can tell closed-loop runs from open-loop ones.
    ``checkpoint`` makes the run resumable — marker windows, AIMD state
    and hold queues ride inside the snapshot.
    """
    from ..sim.run import build_engine

    if checkpoint is not None:
        from ..sim.checkpoint import attach_checkpoints, resume_point

        resumed = resume_point(checkpoint, config)
        if resumed is not None:
            return resumed
        engine = build_engine(config, probe=probe)
        transport = install_congestion(engine, transport_config, congestion_config)
        attach_checkpoints(
            engine, checkpoint, finisher="repro.traffic.transport:_resume_finish"
        )
        result = engine.run()
        return attach_reliability(result, transport)

    engine = build_engine(config, probe=probe)
    transport = install_congestion(engine, transport_config, congestion_config)
    result = engine.run()
    return attach_reliability(result, transport)
