"""Traffic patterns and message generation (paper §7).

Public surface:

* :mod:`repro.traffic.address` — base-k digit and bit-string labeling of
  processing nodes, shared by patterns and topologies.
* :mod:`repro.traffic.patterns` — destination maps: the paper's uniform,
  complement, bit-reversal and transpose patterns plus common extensions
  (shuffle, butterfly, tornado, neighbor, hotspot).
* :mod:`repro.traffic.generator` — Bernoulli packet injection processes at
  a given fraction of network capacity.
* :mod:`repro.traffic.transport` — source-side reliable transport
  (sequence numbers, modeled ACKs, timeout retransmission, duplicate
  suppression) for exactly-once delivery under fail-stop faults.
"""

from .address import (
    bit_complement,
    bit_length,
    bit_reverse,
    bit_transpose,
    digits_to_node,
    node_to_digits,
)
from .generator import BernoulliInjector, PacketSource
from .transport import (
    ReliableSource,
    ReliableTransport,
    TransportConfig,
    attach_reliability,
    simulate_reliable,
)
from .patterns import (
    PATTERNS,
    BitComplementPattern,
    BitReversalPattern,
    ButterflyPattern,
    HotspotPattern,
    NeighborPattern,
    PermutationPattern,
    ShufflePattern,
    TornadoPattern,
    TrafficPattern,
    TransposePattern,
    UniformPattern,
    make_pattern,
)

__all__ = [
    "bit_complement",
    "bit_length",
    "bit_reverse",
    "bit_transpose",
    "digits_to_node",
    "node_to_digits",
    "BernoulliInjector",
    "PacketSource",
    "ReliableSource",
    "ReliableTransport",
    "TransportConfig",
    "attach_reliability",
    "simulate_reliable",
    "PATTERNS",
    "BitComplementPattern",
    "BitReversalPattern",
    "ButterflyPattern",
    "HotspotPattern",
    "NeighborPattern",
    "PermutationPattern",
    "ShufflePattern",
    "TornadoPattern",
    "TrafficPattern",
    "TransposePattern",
    "UniformPattern",
    "make_pattern",
]
