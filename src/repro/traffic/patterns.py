"""Synthetic traffic patterns (paper §7, plus standard extensions).

A :class:`TrafficPattern` maps a source node to a destination node each time
a packet is created.  The paper's benchmark set is

* **uniform** — destinations chosen uniformly at random,
* **complement** — every bit of the label inverted (all packets cross the
  network bisection),
* **bit reversal** — the label bit string reversed,
* **transpose** — the two halves of the bit string swapped,

and this module adds the other permutations commonly used in interconnection
network studies (shuffle, butterfly, tornado, neighbor) plus a hotspot
pattern, used by the ablation benchmarks.

Nodes whose destination equals the source (e.g. palindromes under bit
reversal — the paper notes 16 such nodes in the 256-node networks) do not
inject packets; :meth:`TrafficPattern.destination` returns the source itself
and the generator skips injection for them.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..errors import ConfigurationError, TopologyError
from .address import bit_complement, bit_reverse, bit_transpose


class TrafficPattern(ABC):
    """Destination chooser for a network of ``num_nodes`` nodes.

    Subclasses implement :meth:`destination`.  Patterns must be cheap: they
    are evaluated once per generated packet inside the simulation loop.
    """

    #: short identifier used by the CLI and experiment reports
    name: str = "abstract"

    def __init__(self, num_nodes: int):
        if num_nodes < 2:
            raise ConfigurationError(f"need at least 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes

    @abstractmethod
    def destination(self, source: int, rng: random.Random) -> int:
        """Return the destination for a packet injected at ``source``.

        A return value equal to ``source`` means "this node does not
        inject" for deterministic permutations, or is re-drawn by random
        patterns that exclude self-traffic.
        """

    def is_permutation(self) -> bool:
        """True when the pattern is a fixed permutation (one dest per source)."""
        return False

    def active_sources(self) -> int:
        """Number of nodes that actually inject packets.

        Deterministic permutations with fixed points (e.g. bit reversal
        palindromes) have fewer active sources than nodes.
        """
        rng = random.Random(0)
        return sum(
            1 for s in range(self.num_nodes) if self.destination(s, rng) != s
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_nodes={self.num_nodes})"


class UniformPattern(TrafficPattern):
    """Destinations drawn uniformly at random among the *other* nodes.

    The paper describes uniform traffic as representative of well-balanced
    shared-memory computations.
    """

    name = "uniform"

    def destination(self, source: int, rng: random.Random) -> int:
        dst = rng.randrange(self.num_nodes - 1)
        if dst >= source:
            dst += 1
        return dst


class PermutationPattern(TrafficPattern):
    """Base class for fixed permutations defined on the label bit string."""

    def __init__(self, num_nodes: int):
        super().__init__(num_nodes)
        if num_nodes & (num_nodes - 1):
            raise TopologyError(
                f"bit-permutation patterns need a power-of-two node count, got {num_nodes}"
            )
        self.nbits = num_nodes.bit_length() - 1

    def is_permutation(self) -> bool:
        return True

    @abstractmethod
    def permute(self, source: int) -> int:
        """The underlying permutation (or fixed map) on node labels."""

    def destination(self, source: int, rng: random.Random) -> int:
        return self.permute(source)


class BitComplementPattern(PermutationPattern):
    """Complement traffic: every packet crosses the network bisection."""

    name = "complement"

    def permute(self, source: int) -> int:
        return bit_complement(source, self.nbits)


class BitReversalPattern(PermutationPattern):
    """Bit reversal: destination label is the reversed bit string."""

    name = "bitrev"

    def permute(self, source: int) -> int:
        return bit_reverse(source, self.nbits)


class TransposePattern(PermutationPattern):
    """Transpose: the two halves of the bit string are swapped."""

    name = "transpose"

    def permute(self, source: int) -> int:
        return bit_transpose(source, self.nbits)


class ShufflePattern(PermutationPattern):
    """Perfect shuffle: rotate the bit string left by one position."""

    name = "shuffle"

    def permute(self, source: int) -> int:
        hi = (source >> (self.nbits - 1)) & 1
        return ((source << 1) | hi) & ((1 << self.nbits) - 1)


class ButterflyPattern(PermutationPattern):
    """Butterfly: swap the most and least significant bits."""

    name = "butterfly"

    def permute(self, source: int) -> int:
        lo = source & 1
        hi = (source >> (self.nbits - 1)) & 1
        if lo == hi:
            return source
        mask = 1 | (1 << (self.nbits - 1))
        return source ^ mask


class TornadoPattern(PermutationPattern):
    """Tornado: destination is ``(source + ceil(N/2) - 1) mod N``.

    A classic adversarial pattern for tori: all packets travel nearly half
    way around each ring in the same direction.
    """

    name = "tornado"

    def permute(self, source: int) -> int:
        shift = (self.num_nodes + 1) // 2 - 1
        if shift == 0:
            return source
        return (source + shift) % self.num_nodes

    def is_permutation(self) -> bool:
        return True


class NeighborPattern(PermutationPattern):
    """Nearest neighbor: destination is ``(source + 1) mod N``."""

    name = "neighbor"

    def permute(self, source: int) -> int:
        return (source + 1) % self.num_nodes


class HotspotPattern(TrafficPattern):
    """Uniform traffic with a fraction of packets redirected to hot nodes.

    Args:
        num_nodes: network size.
        hotspots: node ids receiving extra traffic (default: node 0).
        fraction: probability that a packet targets a hotspot instead of a
            uniformly random node.
    """

    name = "hotspot"

    def __init__(
        self,
        num_nodes: int,
        hotspots: tuple[int, ...] = (0,),
        fraction: float = 0.1,
    ):
        super().__init__(num_nodes)
        if not hotspots:
            raise ConfigurationError("hotspot pattern needs at least one hotspot")
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"hotspot fraction {fraction} not in [0, 1]")
        for h in hotspots:
            if not 0 <= h < num_nodes:
                raise ConfigurationError(f"hotspot {h} out of range")
        self.hotspots = tuple(hotspots)
        self.fraction = fraction
        self._uniform = UniformPattern(num_nodes)

    def destination(self, source: int, rng: random.Random) -> int:
        if rng.random() < self.fraction:
            dst = self.hotspots[rng.randrange(len(self.hotspots))]
            if dst != source:
                return dst
        return self._uniform.destination(source, rng)


#: Registry of pattern constructors taking only the node count.  The four
#: paper patterns come first; the rest are extensions.
PATTERNS: dict[str, type[TrafficPattern]] = {
    UniformPattern.name: UniformPattern,
    BitComplementPattern.name: BitComplementPattern,
    BitReversalPattern.name: BitReversalPattern,
    TransposePattern.name: TransposePattern,
    ShufflePattern.name: ShufflePattern,
    ButterflyPattern.name: ButterflyPattern,
    TornadoPattern.name: TornadoPattern,
    NeighborPattern.name: NeighborPattern,
    HotspotPattern.name: HotspotPattern,
}

#: The four patterns evaluated in the paper, in figure order.
PAPER_PATTERNS = ("uniform", "complement", "transpose", "bitrev")


def make_pattern(name: str, num_nodes: int, **kwargs) -> TrafficPattern:
    """Instantiate a registered pattern by name.

    Raises:
        ConfigurationError: for unknown pattern names.
    """
    try:
        cls = PATTERNS[name]
    except KeyError:
        known = ", ".join(sorted(PATTERNS))
        raise ConfigurationError(
            f"unknown traffic pattern {name!r}; known: {known}"
        ) from None
    return cls(num_nodes, **kwargs)
