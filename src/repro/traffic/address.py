"""Node address arithmetic (paper §7).

The paper labels each node of a k-ary n-cube or k-ary n-tree with the base-k
number ``p0 p1 ... p_{n-1}`` (``p0`` most significant) and, when ``k`` is a
power of two, with the binary string ``a0 a1 ... a_{L-1}`` where
``L = n·log2(k)`` and ``a0`` is the most significant bit.  The synthetic
permutation patterns (complement, bit reversal, transpose) are defined as
operations on that bit string; this module implements them as integer bit
twiddling so pattern evaluation is O(1) per packet.
"""

from __future__ import annotations

from ..errors import TopologyError


def node_to_digits(node: int, k: int, n: int) -> tuple[int, ...]:
    """Decompose a node id into its base-k digits ``(p0, ..., p_{n-1})``.

    ``p0`` is the most significant digit, matching the paper's labeling.

    Args:
        node: node id in ``[0, k**n)``.
        k: radix (``>= 2``).
        n: number of digits (``>= 1``).

    Raises:
        TopologyError: if the node id is out of range or k/n are invalid.
    """
    if k < 2 or n < 1:
        raise TopologyError(f"invalid radix/dimension: k={k}, n={n}")
    if not 0 <= node < k**n:
        raise TopologyError(f"node {node} out of range [0, {k**n})")
    digits = []
    for _ in range(n):
        digits.append(node % k)
        node //= k
    return tuple(reversed(digits))


def digits_to_node(digits: tuple[int, ...] | list[int], k: int) -> int:
    """Inverse of :func:`node_to_digits`: compose base-k digits into a node id.

    Raises:
        TopologyError: if any digit is outside ``[0, k)``.
    """
    node = 0
    for d in digits:
        if not 0 <= d < k:
            raise TopologyError(f"digit {d} out of range [0, {k})")
        node = node * k + d
    return node


def bit_length(k: int, n: int) -> int:
    """Return ``L = n·log2(k)``, the node-label bit-string length.

    Raises:
        TopologyError: if ``k`` is not a power of two (the paper's
        permutation patterns are only defined in that case).
    """
    if k < 2 or k & (k - 1):
        raise TopologyError(f"k={k} is not a power of two")
    return n * (k.bit_length() - 1)


def bit_complement(node: int, nbits: int) -> int:
    """Complement every bit: ``a_i -> NOT a_i`` (paper's complement pattern)."""
    _check_range(node, nbits)
    return ~node & ((1 << nbits) - 1)


def bit_reverse(node: int, nbits: int) -> int:
    """Reverse the bit string: destination ``a_{L-1} ... a_0``."""
    _check_range(node, nbits)
    out = 0
    for _ in range(nbits):
        out = (out << 1) | (node & 1)
        node >>= 1
    return out


def bit_transpose(node: int, nbits: int) -> int:
    """Swap the two halves of the bit string (paper's transpose pattern).

    Destination is ``a_{L/2} ... a_{L-1} a_0 ... a_{L/2-1}``; on a matrix of
    nodes this reflects each node across the main diagonal.

    Raises:
        TopologyError: if ``nbits`` is odd (the paper assumes n even).
    """
    _check_range(node, nbits)
    if nbits % 2:
        raise TopologyError(f"transpose requires an even bit length, got {nbits}")
    half = nbits // 2
    low_mask = (1 << half) - 1
    return ((node & low_mask) << half) | (node >> half)


def _check_range(node: int, nbits: int) -> None:
    if nbits < 1:
        raise TopologyError(f"invalid bit length {nbits}")
    if not 0 <= node < (1 << nbits):
        raise TopologyError(f"node {node} out of range for {nbits}-bit labels")
