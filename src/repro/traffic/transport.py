"""Source-side reliable transport: exactly-once delivery over a lossy
network.

The engine's fail-stop fault mode (:class:`~repro.faults.FaultPolicy`)
destroys in-flight worms, which breaks the lossless assumption every
metric in the paper rests on.  This module restores end-to-end delivery
above the network, with the textbook ARQ machinery scaled down to the
flit-level model:

* **sequence numbers** — each source stamps a per-destination sequence
  number on every message, so the sink can identify retransmitted
  copies of the same message regardless of packet ids;
* **ACK return path** — a delivered first copy triggers an acknowledgment
  that arrives back at the source after a configurable modeled delay
  (the reverse path is not simulated flit-by-flit: ACKs are tiny and
  the paper's networks are symmetric, so a fixed delay is the honest
  abstraction);
* **timeout + retransmission** — every transmitted copy arms a timer;
  on expiry without an ACK the source re-enqueues the message, backing
  off exponentially with deterministic jitter to avoid retry storms;
* **retry budget** — after ``1 + max_retries`` transmissions the source
  gives the message up and records it (the bounded-loss escape hatch
  that keeps a dead destination from pinning the source forever);
* **duplicate suppression** — the sink counts every delivery after the
  first as a duplicate, so *goodput* (first-copy payload) is reported
  separately from raw accepted bandwidth.

:class:`ReliableTransport` is an ordinary
:class:`~repro.obs.probe.Probe`: it observes injections, deliveries and
drops, and drives its timer wheel from ``on_cycle``.  It wraps every
node's :class:`~repro.traffic.generator.PacketSource` in a
:class:`ReliableSource` so retransmissions travel the normal
single-injection-channel path and ``run_until_drained`` waits for the
protocol (not just the network) to quiesce.

Everything is deterministic given the transport seed: the only random
element is the retry jitter, drawn from a dedicated
:class:`random.Random` stream.

Optionally the transport closes the loop on congestion: wired to a
:class:`~repro.traffic.congestion.CongestionControl`, new messages wait
in a per-source hold queue until their destination's AIMD window has
room, marked ACKs and timeouts shrink the window, and give-ups release
their slot (see :mod:`repro.traffic.congestion`).
"""

from __future__ import annotations

import dataclasses
import heapq
from collections import deque
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..obs.probe import MultiProbe, Probe


@dataclass(frozen=True)
class TransportConfig:
    """Tuning knobs of the reliable transport.

    Attributes:
        ack_delay: modeled cycles for an acknowledgment to travel back
            from the sink to the source.
        base_timeout: retransmission timer for the first copy, in
            cycles; should comfortably exceed the uncontended round
            trip (delivery latency + ``ack_delay``).
        backoff: multiplicative timer growth per retry (>= 1.0).
        jitter: maximum extra cycles added to each timer, drawn
            uniformly from ``[0, jitter]`` (decorrelates retry storms).
        max_retries: retransmissions allowed per message before the
            source gives it up; the total transmission budget is
            ``1 + max_retries``.
        seed: seed of the transport's dedicated jitter stream.
    """

    ack_delay: int = 8
    base_timeout: int = 64
    backoff: float = 2.0
    jitter: int = 4
    max_retries: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.ack_delay < 1:
            raise ConfigurationError(f"ack_delay must be >= 1, got {self.ack_delay}")
        if self.base_timeout < 1:
            raise ConfigurationError(
                f"base_timeout must be >= 1, got {self.base_timeout}"
            )
        if self.backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1.0, got {self.backoff}")
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )


class _Message:
    """Transport state of one application message."""

    __slots__ = (
        "src",
        "dst",
        "seq",
        "size",
        "created",
        "attempts",
        "acked",
        "gave_up",
        "delivered_first",
        "deadline",
        "claimed",
        "last_sent",
    )

    def __init__(self, src: int, dst: int, seq: int, size: int, created: int):
        self.src = src
        self.dst = dst
        self.seq = seq
        self.size = size
        self.created = created
        #: transmissions so far (0 while the first copy waits to inject)
        self.attempts = 0
        self.acked = False
        self.gave_up = False
        #: cycle the first copy's tail reached the sink (-1 = never)
        self.delivered_first = -1
        #: armed retransmission deadline (lazy heap invalidation tag)
        self.deadline = -1
        #: holds a congestion-window slot right now (closed loop only)
        self.claimed = False
        #: cycle the latest copy injected (drives the ACK RTT estimate)
        self.last_sent = created


class ReliableSource:
    """A :class:`~repro.traffic.generator.PacketSource` wrapped for
    reliable delivery.

    Presents the same protocol the engine's injection phase consumes
    (``advance``/``queue``/``done``/``pending``/``active``), draining
    the inner source's queue into its own while registering one
    :class:`_Message` per entry with the transport, in queue order.
    Retransmissions are appended by the transport and travel the same
    path.  ``done()`` additionally waits for every registered message to
    resolve (ACK or give-up), so ``run_until_drained`` covers protocol
    quiescence.
    """

    __slots__ = ("inner", "node", "queue", "active", "transport")

    def __init__(self, inner, transport: "ReliableTransport"):
        self.inner = inner
        self.node = inner.node
        #: entries the engine pops: (created, dst) or (created, dst, size)
        self.queue: deque[tuple] = deque()
        self.active = inner.active
        self.transport = transport

    def advance(self, cycle: int) -> int:
        created = self.inner.advance(cycle)
        inner_queue = self.inner.queue
        transport = self.transport
        if transport.congestion is None:
            while inner_queue:
                entry = inner_queue.popleft()
                transport.register(self.node, entry)
                self.queue.append(entry)
        else:
            # closed loop: new messages wait in the transport's hold
            # queue until their destination window has room.  Windows
            # only change on ACK/give-up events (which pump directly),
            # so a pump here is needed only when something new arrived.
            if inner_queue:
                while inner_queue:
                    transport.hold(self.node, inner_queue.popleft())
                transport.pump(self.node, self.queue)
        return created

    def done(self) -> bool:
        # held messages count as unresolved, so the drain contract
        # covers the congestion hold queue too
        return (
            self.inner.done()
            and not self.queue
            and self.transport.unresolved(self.node) == 0
        )

    def pending(self) -> int:
        return len(self.queue) + self.transport.held_messages(self.node)


class ReliableTransport(Probe):
    """The protocol engine: per-node sources, timer wheel, accounting.

    Attach with :meth:`install`; afterwards every measurement-window
    counter (retransmissions, duplicates, give-ups, goodput) lands on
    the run's :class:`~repro.sim.results.RunResult` and the full
    accounting document on ``telemetry.reliability`` via
    :func:`attach_reliability`.
    """

    #: timer-wheel event kinds
    _ACK = 0
    _TIMEOUT = 1

    def __init__(self, config: TransportConfig | None = None, congestion=None):
        self.config = config or TransportConfig()
        #: optional :class:`~repro.traffic.congestion.CongestionControl`;
        #: when set, new messages are window-gated through a hold queue
        self.congestion = congestion
        #: per-node hold queue of registered messages awaiting a window slot
        self._waiting: dict[int, deque[_Message]] = {}
        self.engine = None
        self._warmup = 0
        self._default_size = 1
        #: per-node FIFO of registered messages awaiting injection,
        #: aligned with the wrapper queue order
        self._fifo: dict[int, deque[_Message]] = {}
        #: pid of the copy currently in the network -> its message
        self._by_pid: dict[int, _Message] = {}
        #: per-(src, dst) next sequence number
        self._next_seq: dict[tuple[int, int], int] = {}
        #: per-node messages registered but not yet ACKed or given up
        self._unresolved: dict[int, int] = {}
        #: (due_cycle, tiebreak, kind, message, deadline_tag)
        self._events: list[tuple] = []
        self._counter = 0
        self._rng = None  # seeded in install (import cycle-free)
        # whole-run totals (the summary document; RunResult carries the
        # measurement-window view)
        self.messages = 0
        self.acked = 0
        self.gave_up = 0
        self.retransmissions = 0
        self.duplicates = 0
        self.late_acks = 0
        self.drops_seen = 0
        self.max_attempts = 0
        #: EWMA of injection-to-ACK round trips (None until the first
        #: fresh ACK); includes the modeled ack_delay by construction
        self.rtt_estimate: float | None = None

    # -- wiring ---------------------------------------------------------------

    def install(self, engine) -> "ReliableTransport":
        """Wrap every node source of ``engine`` and attach as a probe.

        Composes with an already-attached probe through
        :class:`~repro.obs.probe.MultiProbe` without re-binding it.
        Returns ``self`` so construction chains.
        """
        import random

        if self.engine is not None:
            raise ConfigurationError("this transport is already installed")
        self._rng = random.Random(self.config.seed)
        for node in engine.nodes:
            if isinstance(node.source, ReliableSource):
                raise ConfigurationError(
                    f"node {node.nid} already has a reliable source"
                )
            node.source = ReliableSource(node.source, self)
        if engine.probe is None:
            engine.attach_probe(self)
        else:
            # the existing probe is already bound; bind only ourselves
            engine.probe = MultiProbe([engine.probe, self])
            self.bind(engine)
        return self

    def bind(self, engine) -> None:
        self.engine = engine
        self._warmup = engine.config.warmup_cycles
        self._default_size = engine.config.packet_flits
        self._fifo = {node.nid: deque() for node in engine.nodes}
        self._unresolved = {node.nid: 0 for node in engine.nodes}
        self._waiting = {node.nid: deque() for node in engine.nodes}

    # -- source-side registry -------------------------------------------------

    def register(self, node: int, entry: tuple) -> _Message:
        """Register one source-queue entry as a tracked message."""
        msg = self._track(node, entry)
        self._fifo[node].append(msg)
        return msg

    def _track(self, node: int, entry: tuple) -> _Message:
        created, dst = entry[0], entry[1]
        size = entry[2] if len(entry) > 2 else self._default_size
        key = (node, dst)
        seq = self._next_seq.get(key, 0)
        self._next_seq[key] = seq + 1
        msg = _Message(node, dst, seq, size, created)
        self._unresolved[node] += 1
        self.messages += 1
        return msg

    def hold(self, node: int, entry: tuple) -> _Message:
        """Register one entry into the congestion hold queue."""
        msg = self._track(node, entry)
        self._waiting[node].append(msg)
        return msg

    def pump(self, node: int, queue=None) -> None:
        """Release held messages whose destination window has room.

        Scans at most ``pump_scan`` messages from the head of the hold
        queue, releasing every one whose (source, destination) window
        accepts it — so a saturated destination cannot head-of-line
        block traffic to open ones, and per-cycle work stays bounded
        under deep overload backlogs.  Released messages join the
        registry FIFO and the wrapper queue together, preserving the
        injection-order alignment ``on_packet_injected`` relies on.
        """
        waiting = self._waiting[node]
        if not waiting:
            return
        control = self.congestion
        if queue is None:
            queue = self.engine.nodes[node].source.queue
        fifo = self._fifo[node]
        kept = []
        for _ in range(min(len(waiting), control.config.pump_scan)):
            msg = waiting.popleft()
            if msg.acked or msg.gave_up:
                continue  # resolved while re-held (late ACK of a slow copy)
            if control.try_release(msg.src, msg.dst):
                msg.claimed = True
                fifo.append(msg)
                queue.append((msg.created, msg.dst, msg.size))
            else:
                kept.append(msg)
        for msg in reversed(kept):
            waiting.appendleft(msg)

    def held_messages(self, node: int) -> int:
        """Messages of ``node`` waiting for a congestion window slot."""
        waiting = self._waiting.get(node)
        return len(waiting) if waiting else 0

    def held_total(self) -> int:
        """Messages waiting for a window slot across all nodes."""
        return sum(len(waiting) for waiting in self._waiting.values())

    def unresolved(self, node: int) -> int:
        """Messages of ``node`` not yet ACKed or given up."""
        return self._unresolved[node]

    def total_unresolved(self) -> int:
        return sum(self._unresolved.values())

    # -- probe events ---------------------------------------------------------

    def on_packet_injected(self, cycle: int, packet) -> None:
        fifo = self._fifo[packet.src]
        if not fifo:
            return  # untracked (e.g. preloaded directly onto the queue)
        head = fifo[0]
        if head.dst != packet.dst or head.size != packet.size:
            return  # foreign entry interleaved; leave the registry alone
        msg = fifo.popleft()
        self._by_pid[packet.pid] = msg
        msg.last_sent = cycle
        if msg.attempts > 0:
            self.retransmissions += 1
            if cycle >= self._warmup:
                self.engine.result.retransmitted_packets += 1
        msg.attempts += 1
        if msg.attempts > self.max_attempts:
            self.max_attempts = msg.attempts
        self._arm_timeout(cycle, msg)

    def on_tail_delivered(self, cycle: int, packet) -> None:
        control = self.congestion
        msg = self._by_pid.pop(packet.pid, None)
        if msg is None:
            if control is not None:
                control.marker.discard(packet.pid)
            return
        if msg.delivered_first < 0:
            msg.delivered_first = cycle
            if cycle >= self._warmup:
                self.engine.result.goodput_flits += msg.size
            # the ACK event's tag carries the congestion mark back to
            # the source (the ECN echo on the modeled return path)
            marked = 1 if control is not None and control.marker.consume(packet.pid) else 0
            self._push(cycle + self.config.ack_delay, self._ACK, msg, marked)
        else:
            self.duplicates += 1
            if cycle >= self._warmup:
                self.engine.result.duplicate_packets += 1
            if control is not None:
                control.marker.discard(packet.pid)

    def on_packet_dropped(self, cycle: int, packet, reason: str) -> None:
        # the copy died in the network; recovery is timer-driven (the
        # source cannot observe a mid-network kill), so just unmap it
        if self._by_pid.pop(packet.pid, None) is not None:
            self.drops_seen += 1

    def on_cycle(self, cycle: int) -> None:
        events = self._events
        while events and events[0][0] <= cycle:
            _, _, kind, msg, tag = heapq.heappop(events)
            if kind == self._ACK:
                self._handle_ack(cycle, msg, tag)
            else:
                self._handle_timeout(cycle, msg, tag)

    # -- timer wheel ----------------------------------------------------------

    def _push(self, due: int, kind: int, msg: _Message, tag: int) -> None:
        self._counter += 1
        heapq.heappush(self._events, (due, self._counter, kind, msg, tag))

    def _arm_timeout(self, cycle: int, msg: _Message) -> None:
        timeout = self.config.base_timeout * self.config.backoff ** (
            msg.attempts - 1
        )
        due = cycle + int(timeout) + (
            self._rng.randint(0, self.config.jitter) if self.config.jitter else 0
        )
        msg.deadline = due
        self._push(due, self._TIMEOUT, msg, due)

    def _handle_ack(self, cycle: int, msg: _Message, marked: int = 0) -> None:
        if msg.acked:
            return
        if msg.gave_up:
            # the source had already written the message off; the sink
            # did get it, so the loss is accounting-only — record it.
            # The window slot was freed at give-up time, so the loop
            # must not decrement in-flight again here.
            self.late_acks += 1
            return
        msg.acked = True
        msg.deadline = -1  # disarms any outstanding timer (lazy)
        self._unresolved[msg.src] -= 1
        self.acked += 1
        rtt = cycle - msg.last_sent
        if rtt >= 0:
            self.rtt_estimate = (
                float(rtt)
                if self.rtt_estimate is None
                else 0.875 * self.rtt_estimate + 0.125 * rtt
            )
        control = self.congestion
        if control is not None:
            control.on_ack(cycle, msg.src, msg.dst, bool(marked), msg.claimed)
            msg.claimed = False
            self.pump(msg.src)

    def _handle_timeout(self, cycle: int, msg: _Message, tag: int) -> None:
        if msg.acked or msg.gave_up or msg.deadline != tag:
            return  # stale timer: ACKed, resolved, or superseded
        control = self.congestion
        if msg.attempts > self.config.max_retries:
            msg.gave_up = True
            msg.deadline = -1
            self._unresolved[msg.src] -= 1
            self.gave_up += 1
            if cycle >= self._warmup:
                self.engine.result.given_up_packets += 1
            if control is not None:
                # the abandoned message frees its window slot, so the
                # retry budget cannot leak window capacity
                if msg.claimed:
                    control.on_give_up(msg.src, msg.dst)
                    msg.claimed = False
                self.pump(msg.src)
            return
        msg.deadline = -1
        if control is not None:
            # closed loop: the timeout is a congestion signal (shrink
            # the window) and the retransmission is *re-held* at the
            # front of the hold queue — it releases its slot and must
            # re-claim one, so retransmissions and new traffic share a
            # single window-throttled injection path instead of the
            # retry storm bypassing the gate it caused.
            control.on_timeout(cycle, msg.src, msg.dst)
            if msg.claimed:
                control.on_requeue(msg.src, msg.dst)
                msg.claimed = False
            self._waiting[msg.src].appendleft(msg)
            self.pump(msg.src)
            return
        # open loop: re-enqueue through the normal injection path; the
        # timer for the new copy is armed when it actually injects
        entry = (cycle, msg.dst, msg.size)
        self._fifo[msg.src].append(msg)
        node = self.engine.nodes[msg.src]
        node.source.queue.append(entry)

    # -- reporting ------------------------------------------------------------

    def pending_messages(self) -> int:
        """Messages still unresolved (queued, in flight, or timed)."""
        return self.total_unresolved()

    def summary(self) -> dict:
        """The reliability accounting document (``telemetry.reliability``).

        The source-side invariant ``messages == acked + gave_up +
        pending`` holds at any instant; ``exactly_once`` restates it for
        a quiesced run (no pending) together with sink-side uniqueness,
        which duplicate suppression guarantees by construction.
        """
        cfg = dataclasses.asdict(self.config)
        messages = self.messages
        doc = {
            "transport": cfg,
            "messages": messages,
            "acked": self.acked,
            "gave_up": self.gave_up,
            "pending": self.total_unresolved(),
            "retransmissions": self.retransmissions,
            "duplicates": self.duplicates,
            "late_acks": self.late_acks,
            "drops_seen": self.drops_seen,
            "max_attempts": self.max_attempts,
            # ratios guarded for zero-traffic / zero-delivery runs
            "acked_ratio": self.acked / messages if messages else 0.0,
            "give_up_ratio": self.gave_up / messages if messages else 0.0,
        }
        if self.congestion is not None:
            doc["congestion"] = self.congestion.summary()
        return doc


def attach_reliability(result, transport: ReliableTransport, extra: dict | None = None):
    """Fold ``transport``'s accounting document into ``result.telemetry``.

    ``extra`` entries (e.g. a chaos campaign's storm recipe) are merged
    into the document.  Returns the result; a result with no telemetry
    is returned unchanged (telemetry is frozen, so it is replaced).
    """
    if result.telemetry is not None:
        doc = transport.summary()
        if extra:
            doc.update(extra)
        result.telemetry = dataclasses.replace(result.telemetry, reliability=doc)
    return result


def _resume_finish(engine, result, extra=None):
    """Checkpoint finisher: fold the restored transport's accounting in."""
    from ..obs.flight import _find_transport

    return attach_reliability(result, _find_transport(engine.probe), extra=extra)


def simulate_reliable(
    config,
    transport_config: TransportConfig | None = None,
    probe=None,
    checkpoint=None,
):
    """``simulate(config)`` with the reliable transport installed.

    The transport accounting lands on the result's telemetry, so it
    survives pickling (parallel sweep workers), the run JSON document
    and the ledger.  ``probe`` composes with the transport through
    :class:`~repro.obs.probe.MultiProbe`.  ``checkpoint`` makes the run
    resumable — the transport (timer wheel, windows, RNG) rides inside
    the snapshot like everything else.
    """
    from ..sim.run import build_engine

    if checkpoint is not None:
        from ..sim.checkpoint import attach_checkpoints, resume_point

        resumed = resume_point(checkpoint, config)
        if resumed is not None:
            return resumed
        engine = build_engine(config, probe=probe)
        transport = ReliableTransport(transport_config).install(engine)
        attach_checkpoints(
            engine, checkpoint, finisher="repro.traffic.transport:_resume_finish"
        )
        result = engine.run()
        return attach_reliability(result, transport)

    engine = build_engine(config, probe=probe)
    transport = ReliableTransport(transport_config).install(engine)
    result = engine.run()
    return attach_reliability(result, transport)
