"""Cube dimensionality study — "hypercubes again?" (extension).

The paper closes predicting that "low-dimensional cubes will increase the
gap with the fat-trees, because they can be easily mapped on the
three-dimensional space", citing Duato & Malumbres' *Optimal Topology for
Distributed Shared-Memory Multiprocessors: Hypercubes Again?* as the
contemporary counterpoint.  This experiment applies the paper's own §5
methodology to the question: compare equal-node-count k-ary n-cubes —
the 16-ary 2-cube, the 4-ary 4-cube and the binary 8-cube at 256 nodes —
normalized for pin count, router complexity and wire length.

Normalization rules (direct extensions of §5):

* **pin budget** — the 2-D cube's 4 link ports × 4-byte paths define the
  budget (16 byte-pins); an n-dimensional router divides the same budget
  over its ``2n`` ports (``n`` for the hypercube), so flits are
  ``16 / ports`` bytes wide;
* **wire length** — cubes with n ≤ 3 embed in 3-space with constant
  wires (eq. 3, short); higher dimensions cannot, and pay the medium-wire
  base of eq. 4 like the fat-tree;
* **capacity** — bisection-derived (§5 footnote) but capped by the single
  injection/ejection channel at 1 flit/cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..metrics.cnf import saturation_bits_per_ns
from ..metrics.series import LoadSweepSeries
from ..profiles import Profile, get_profile
from ..sim.config import SimulationConfig
from ..timing.chien import WireLength, router_delays
from ..timing.normalization import NetworkScaling, PACKET_BYTES
from ..topology.properties import cube_effective_capacity
from .sweep import default_loads, run_sweep

#: byte-pins of the reference router (16-ary 2-cube: 4 ports x 4 bytes)
PIN_BUDGET_BYTES = 16

#: the equal-node-count shapes studied at N = 256
SHAPES_256 = ((16, 2), (4, 4), (2, 8))


@dataclass(frozen=True)
class CubeVariant:
    """One normalized cube configuration."""

    k: int
    n: int
    flit_bytes: int
    wire: WireLength
    clock_ns: float
    capacity_flits_per_cycle: float

    @property
    def label(self) -> str:
        return f"{self.k}-ary {self.n}-cube"

    @property
    def packet_flits(self) -> int:
        return PACKET_BYTES // self.flit_bytes

    def scaling(self) -> NetworkScaling:
        return NetworkScaling(
            flit_bytes=self.flit_bytes,
            packet_flits=self.packet_flits,
            capacity_flits_per_cycle=self.capacity_flits_per_cycle,
            clock_ns=self.clock_ns,
            num_nodes=self.k**self.n,
        )


def normalize_cube(k: int, n: int, algorithm: str = "duato", vcs: int = 4) -> CubeVariant:
    """Apply the §5-style normalization to one cube shape."""
    ports = n if k == 2 else 2 * n
    flit_bytes = PIN_BUDGET_BYTES // ports
    if flit_bytes < 1 or PIN_BUDGET_BYTES % ports or PACKET_BYTES % flit_bytes:
        raise ConfigurationError(
            f"pin budget {PIN_BUDGET_BYTES} B cannot feed {ports} ports evenly"
        )
    wire = WireLength.SHORT if n <= 3 else WireLength.MEDIUM
    if algorithm == "duato":
        freedom = n * (vcs // 2) + 2
    else:
        freedom = vcs // 2
    delays = router_delays(freedom, ports * vcs + 1, vcs, wire)
    return CubeVariant(
        k=k,
        n=n,
        flit_bytes=flit_bytes,
        wire=wire,
        clock_ns=delays.clock_ns,
        capacity_flits_per_cycle=cube_effective_capacity(k, n),
    )


@dataclass
class DimensionStudyRow:
    """One shape's sweep plus its absolute-unit summary."""

    variant: CubeVariant
    sweep: LoadSweepSeries
    saturation_bits_per_ns: float
    low_load_latency_ns: float


def dimension_study(
    shapes: tuple[tuple[int, int], ...] = SHAPES_256,
    algorithm: str = "duato",
    pattern: str = "uniform",
    profile: Profile | None = None,
    seed: int = 37,
) -> list[DimensionStudyRow]:
    """Sweep every shape and summarize in absolute units."""
    profile = profile or get_profile()
    loads = default_loads(profile.sweep_points)
    rows = []
    for k, n in shapes:
        variant = normalize_cube(k, n, algorithm)

        def factory(load: float, variant: CubeVariant = variant) -> SimulationConfig:
            return SimulationConfig(
                network="cube",
                k=variant.k,
                n=variant.n,
                algorithm=algorithm,
                vcs=4,
                packet_flits=variant.packet_flits,
                capacity_flits_per_cycle=variant.capacity_flits_per_cycle,
                pattern=pattern,
                load=load,
                seed=seed,
                warmup_cycles=profile.warmup_cycles,
                total_cycles=profile.total_cycles,
            )

        sweep = run_sweep(factory, loads, label=variant.label)
        scaling = variant.scaling()
        first = sweep.points[0]
        rows.append(
            DimensionStudyRow(
                variant=variant,
                sweep=sweep,
                saturation_bits_per_ns=saturation_bits_per_ns(sweep, scaling),
                low_load_latency_ns=scaling.cycles_to_ns(first.latency_cycles or 0),
            )
        )
    return rows
