"""Offered-load sweeps.

A sweep runs one simulation per offered-load point and assembles a
:class:`~repro.metrics.series.LoadSweepSeries`.  Two execution modes:

* **serial** (default) — one process; right for the single-CPU benchmark
  environment and for reproducibility layering.
* **process pool** — ``parallel=True`` fans points out over
  ``ProcessPoolExecutor`` workers (simulation points are embarrassingly
  parallel, the classic HPC sweep shape); results are identical because
  every point carries its own seeded RNG streams.

Completed points are memoized in an in-process cache keyed by the full
run recipe, so the Figure 7 comparison reuses the raw runs of Figures 5
and 6 instead of simulating everything twice.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor

from ..errors import ConfigurationError
from ..metrics.series import LoadSweepSeries
from ..sim.config import SimulationConfig
from ..sim.results import RunResult
from ..sim.run import simulate

#: in-process memo: cache key -> RunResult
_CACHE: dict[tuple, RunResult] = {}


def _cache_key(config: SimulationConfig) -> tuple:
    return (
        config.network,
        config.k,
        config.n,
        config.algorithm,
        config.vcs,
        config.buffer_flits,
        config.packet_flits,
        config.pattern,
        tuple(sorted(config.pattern_kwargs.items())),
        round(config.load, 9),
        config.warmup_cycles,
        config.total_cycles,
        config.seed,
    )


def clear_cache() -> int:
    """Drop all memoized runs; returns how many were dropped."""
    n = len(_CACHE)
    _CACHE.clear()
    return n


def run_point(config: SimulationConfig, use_cache: bool = True) -> RunResult:
    """Simulate one point, memoizing the result."""
    key = _cache_key(config)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    result = simulate(config)
    if use_cache:
        _CACHE[key] = result
    return result


def default_loads(points: int, lo: float = 0.1, hi: float = 1.0) -> list[float]:
    """Evenly spaced offered-load grid, as in the paper's CNF x-axis."""
    if points < 2:
        raise ConfigurationError(f"a sweep needs >= 2 points, got {points}")
    step = (hi - lo) / (points - 1)
    return [round(lo + i * step, 6) for i in range(points)]


def run_sweep(
    config_factory: Callable[[float], SimulationConfig],
    loads: Sequence[float],
    label: str,
    parallel: bool = False,
    max_workers: int | None = None,
    use_cache: bool = True,
) -> LoadSweepSeries:
    """Run one configuration over a load grid.

    Args:
        config_factory: maps an offered load (fraction of capacity) to a
            full run recipe.
        loads: the offered-load grid.
        label: legend label for the resulting series.
        parallel: fan points out over a process pool.
        max_workers: pool size; defaults to ``os.cpu_count()``.
        use_cache: memoize/reuse identical points within this process.
    """
    if not loads:
        raise ConfigurationError("empty load grid")
    configs = [config_factory(load) for load in loads]
    sample = configs[0]
    series = LoadSweepSeries(
        label=label,
        network=sample.network,
        algorithm=sample.algorithm,
        vcs=sample.vcs,
        pattern=sample.pattern,
    )
    if parallel and len(configs) > 1:
        pending = [c for c in configs if _cache_key(c) not in _CACHE or not use_cache]
        done = [c for c in configs if c not in pending]
        workers = max_workers or os.cpu_count() or 1
        with ProcessPoolExecutor(max_workers=min(workers, len(pending) or 1)) as pool:
            for config, result in zip(pending, pool.map(simulate, pending)):
                if use_cache:
                    _CACHE[_cache_key(config)] = result
                series.add(result)
        for config in done:
            series.add(_CACHE[_cache_key(config)])
    else:
        for config in configs:
            series.add(run_point(config, use_cache=use_cache))
    return series
