"""Offered-load sweeps, with a resilient campaign harness.

A sweep runs one simulation per offered-load point and assembles a
:class:`~repro.metrics.series.LoadSweepSeries`.  Two execution modes:

* **serial** (default) — one process; right for the single-CPU benchmark
  environment and for reproducibility layering.
* **process pool** — ``parallel=True`` fans points out over
  ``ProcessPoolExecutor`` workers (simulation points are embarrassingly
  parallel, the classic HPC sweep shape); results are identical because
  every point carries its own seeded RNG streams.

Completed points are memoized in an in-process cache keyed by the full
run recipe, so the Figure 7 comparison reuses the raw runs of Figures 5
and 6 instead of simulating everything twice.  Passing a
:class:`~repro.experiments.runcache.RunCache` additionally persists every
completed point to disk (atomic write-then-rename), so a crashed or
killed campaign resumes from its last finished point.

Resilience knobs — a single bad point must not abort a campaign:

* ``timeout`` — per-point wall-clock budget in seconds.  The point runs
  in a watchdog subprocess that is terminated on expiry, turning a hung
  simulation into a catchable
  :class:`~repro.errors.PointTimeoutError`.
* ``retries`` — failed points (deadlock, engine invariant violation,
  timeout) are re-attempted up to this many extra times, each attempt
  with a fresh derived seed, since transient pathologies are often
  seed-specific.
* ``record_failures`` — when set, a point that exhausts its attempts is
  filed as a structured :class:`~repro.metrics.series.FailedPoint` on
  ``series.failures`` and the sweep carries on; when unset (default) the
  last error propagates, preserving the historical fail-fast behavior.

Configuration errors always propagate immediately: they would fail every
attempt of every point, so retrying or recording them only hides a bug.

Campaigns are observable: pass ``progress`` a callable and it receives a
:class:`PointProgress` after every point — completion counts, the
point's outcome and the worker engine's cycles/sec (from the run's
:class:`~repro.obs.telemetry.RunTelemetry`, which survives the process
boundary of parallel workers) — so a long sweep can render a live
progress line instead of going dark for minutes.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import multiprocessing
import os
import pathlib
import signal
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial

from ..errors import (
    ConfigurationError,
    PointTimeoutError,
    RoutingError,
    SimulationError,
    WorkerDiedError,
)
from ..metrics.series import FailedPoint, LoadSweepSeries
from ..sim.checkpoint import CheckpointPolicy, clear_checkpoints, has_resumable
from ..sim.config import SimulationConfig
from ..sim.results import RunResult
from ..sim.run import simulate
from .runcache import RunCache

#: in-process memo: cache key -> RunResult
_CACHE: dict[tuple, RunResult] = {}

#: per-point failures the resilient harness retries/records; anything
#: else (ConfigurationError above all) is a campaign-level bug and raises
_RETRYABLE = (SimulationError, RoutingError, PointTimeoutError)

#: seed stride between retry attempts (a prime, to dodge accidental
#: correlation with user seed conventions like 0/1/2/...)
_RESEED_STRIDE = 7919

#: set when a KeyboardInterrupt reached the campaign layer, so worker
#: threads stop retrying points whose watchdogs were just terminated
_INTERRUPTED = threading.Event()

#: live watchdog subprocesses, so an interrupt can terminate them all
#: instead of leaving orphans behind blocked pipe reads
_ACTIVE_WATCHDOGS: set = set()

#: supervisor poll granularity (seconds) for the watchdog pipe loop
_POLL_SLICE = 0.25

#: fraction of the hard timeout at which the supervisor sends the
#: worker SIGUSR1 — the soft-timeout escalation: checkpoint + snapshot
_SOFT_TIMEOUT_FRACTION = 0.5

#: worker heartbeat cadence (seconds) through the watchdog pipe
_HEARTBEAT_SECONDS = 1.0

#: beats may be delayed by GIL pressure; only this much silence from a
#: worker (alive or not) is treated as death
_HEARTBEAT_GRACE = 15.0

#: exponential backoff (seconds) before relaunching after a dead worker
_BACKOFF_BASE = 0.25
_BACKOFF_CAP = 2.0


@dataclasses.dataclass(frozen=True)
class CampaignCheckpoints:
    """Campaign-level checkpoint supervision for :func:`run_sweep`.

    Every point gets its own subdirectory of ``directory`` (named by a
    digest of the campaign label + the point's cache key, so chaos and
    congestion grid cells that share a plain config recipe never
    collide).  Each point directory holds the point's periodic
    checkpoints, its manifest, and — once the point finishes — its
    result document as a one-entry :class:`RunCache`, which is what a
    later ``--resume`` reloads completed points from even for decorated
    (``simulate_fn``) campaigns where the global cache is bypassed.
    """

    directory: str
    interval_cycles: int = 1000
    keep: int = 2

    def point_dir(self, label: str, key: tuple) -> str:
        digest = hashlib.sha256(
            json.dumps([label, list(key)], sort_keys=False).encode()
        ).hexdigest()[:32]
        return str(pathlib.Path(self.directory) / digest)

    def policy(self, point_dir: str) -> CheckpointPolicy:
        return CheckpointPolicy(
            directory=point_dir,
            interval_cycles=self.interval_cycles,
            keep=self.keep,
        )


@dataclasses.dataclass(frozen=True)
class PointProgress:
    """One progress report from a running sweep campaign.

    Attributes:
        done: points finished so far (including this one).
        total: points in the campaign.
        offered: the point's offered load.
        label: the point's config label.
        status: ``"ok"`` (simulated), ``"cached"`` (memo or disk hit) or
            ``"failed"`` (recorded as a :class:`FailedPoint`).
        cycles_per_sec: the worker engine's throughput for this point,
            when the result carries telemetry (cached and failed points
            report ``None``).
        flight: compact digest of the point's flight-recorder timeline
            (``rows``, ``annotations``, ``collapse_onset``) when the run
            was flight-instrumented; ``None`` otherwise.  The full
            document stays on the result's telemetry — this is just
            enough for a live ``--watch`` status line.
    """

    done: int
    total: int
    offered: float
    label: str
    status: str
    cycles_per_sec: float | None
    flight: dict | None = None


def _cache_key(config: SimulationConfig) -> tuple:
    return (
        config.network,
        config.k,
        config.n,
        config.algorithm,
        config.vcs,
        config.buffer_flits,
        config.packet_flits,
        config.pattern,
        tuple(sorted(config.pattern_kwargs.items())),
        round(config.load, 9),
        config.warmup_cycles,
        config.total_cycles,
        config.seed,
        config.arbiter,
    )


def clear_cache() -> int:
    """Drop all memoized runs; returns how many were dropped."""
    n = len(_CACHE)
    _CACHE.clear()
    return n


def run_point(
    config: SimulationConfig, use_cache: bool = True, cache: RunCache | None = None
) -> RunResult:
    """Simulate one point, memoizing the result (and persisting it when a
    disk ``cache`` is supplied)."""
    key = _cache_key(config)
    if use_cache:
        if key in _CACHE:
            return _CACHE[key]
        if cache is not None:
            result = cache.get(key)
            if result is not None:
                _CACHE[key] = result
                return result
    result = simulate(config)
    if use_cache:
        _CACHE[key] = result
        if cache is not None:
            cache.put(key, result)
    return result


def default_loads(points: int, lo: float = 0.1, hi: float = 1.0) -> list[float]:
    """Evenly spaced offered-load grid, as in the paper's CNF x-axis."""
    if points < 2:
        raise ConfigurationError(f"a sweep needs >= 2 points, got {points}")
    step = (hi - lo) / (points - 1)
    return [round(lo + i * step, 6) for i in range(points)]


# -- resilient point execution --------------------------------------------------


def _reseeded(config: SimulationConfig, attempt: int) -> SimulationConfig:
    """Attempt 0 is the recipe as given; retries derive fresh seeds."""
    if attempt == 0:
        return config
    return dataclasses.replace(config, seed=config.seed + _RESEED_STRIDE * attempt)


def _simulate_fn(forensics: bool, simulate_fn=None):
    """The point-simulation callable.

    ``simulate_fn`` (a picklable callable taking a config — a module
    function or a :func:`functools.partial` of one) overrides
    everything; otherwise plain :func:`~repro.sim.run.simulate` or its
    forensics-instrumented twin, resolved by name at call time
    (module-level functions, so process pools can pickle the task)."""
    if simulate_fn is not None:
        return simulate_fn
    if not forensics:
        return simulate
    from ..obs.forensics import simulate_with_forensics

    return simulate_with_forensics


def _call_sim(fn, config: SimulationConfig, ckpt) -> RunResult:
    """Invoke a point-simulation callable, threading the checkpoint
    policy through only when supervision asked for one (an arbitrary
    ``simulate_fn`` need not accept the kwarg otherwise)."""
    if ckpt is None:
        return fn(config)
    return fn(config, checkpoint=ckpt)


def _watchdog_child(
    config: SimulationConfig,
    conn,
    forensics: bool = False,
    simulate_fn=None,
    ckpt=None,
    heartbeat: float | None = None,
) -> None:
    """Subprocess body: simulate and ship the result (or error) back.

    With ``heartbeat`` set, a daemon thread pulses ``("hb", None)``
    through the pipe so the supervisor can tell a busy worker from a
    dead one; the lock keeps beats and the final payload from
    interleaving (``Connection.send`` is not thread-safe).  With
    ``ckpt`` set, SIGUSR1 is routed to the checkpoint probe so the
    supervisor's soft-timeout escalation lands as a checkpoint plus a
    diagnostic snapshot.
    """
    lock = threading.Lock()
    stop = threading.Event()
    if heartbeat:
        def _beat() -> None:
            while not stop.wait(heartbeat):
                try:
                    with lock:
                        conn.send(("hb", None))
                except Exception:  # noqa: BLE001 - parent gone; just stop
                    return

        threading.Thread(target=_beat, daemon=True, name="sweep-heartbeat").start()
    if ckpt is not None:
        from ..sim.checkpoint import install_escalation_handler

        install_escalation_handler()
    try:
        payload = ("ok", _call_sim(_simulate_fn(forensics, simulate_fn), config, ckpt))
    except Exception as exc:  # noqa: BLE001 - shipped to the parent verbatim
        payload = ("err", exc)
    stop.set()
    try:
        with lock:
            conn.send(payload)
    except Exception:
        # an unpicklable exotic error: degrade to its text form
        with lock:
            conn.send(("err", SimulationError(f"{type(payload[1]).__name__}: {payload[1]}")))
    finally:
        conn.close()


def _simulate_with_timeout(
    config: SimulationConfig,
    timeout: float,
    forensics: bool = False,
    simulate_fn=None,
    ckpt=None,
) -> RunResult:
    """Run one point under a wall-clock watchdog in a subprocess.

    The supervisor polls the worker pipe in short slices, filtering
    heartbeats.  At ``_SOFT_TIMEOUT_FRACTION`` of the budget (with
    checkpointing active) the worker gets SIGUSR1 — the soft timeout:
    it checkpoints and writes a diagnostic snapshot but keeps running.
    At the hard deadline the worker is terminated.

    Raises:
        PointTimeoutError: budget exceeded; the subprocess is terminated,
            so even an engine stuck in an infinite loop is contained.
        WorkerDiedError: the worker vanished (or went silent past the
            heartbeat grace) without reporting a result.
    """
    recv, send = multiprocessing.Pipe(duplex=False)
    proc = multiprocessing.Process(
        target=_watchdog_child,
        args=(config, send, forensics, simulate_fn, ckpt, _HEARTBEAT_SECONDS),
    )
    proc.start()
    _ACTIVE_WATCHDOGS.add(proc)
    send.close()
    deadline = time.monotonic() + timeout
    soft_at = None
    if ckpt is not None and hasattr(signal, "SIGUSR1"):
        soft_at = time.monotonic() + timeout * _SOFT_TIMEOUT_FRACTION
    last_beat = time.monotonic()
    try:
        while True:
            now = time.monotonic()
            if now >= deadline:
                proc.terminate()
                proc.join()
                raise PointTimeoutError(
                    f"point {config.label()} exceeded its {timeout:g}s wall-clock budget"
                )
            wait = min(_POLL_SLICE, max(0.0, deadline - now))
            if soft_at is not None:
                wait = min(wait, max(0.0, soft_at - now))
            if recv.poll(wait):
                try:
                    tag, payload = recv.recv()
                except EOFError:
                    raise WorkerDiedError(
                        f"worker for {config.label()} died without reporting a result"
                    ) from None
                if tag == "hb":
                    last_beat = time.monotonic()
                    continue
                break
            now = time.monotonic()
            if soft_at is not None and now >= soft_at:
                soft_at = None
                with contextlib.suppress(OSError):
                    os.kill(proc.pid, signal.SIGUSR1)
            if now - last_beat > _HEARTBEAT_GRACE:
                proc.terminate()
                proc.join()
                raise WorkerDiedError(
                    f"worker for {config.label()} stopped heartbeating "
                    f"({_HEARTBEAT_GRACE:g}s of silence)"
                )
    finally:
        _ACTIVE_WATCHDOGS.discard(proc)
        recv.close()
        proc.join()
    if tag == "ok":
        return payload
    raise payload


def _point_task(
    config: SimulationConfig,
    retries: int = 0,
    timeout: float | None = None,
    forensics: bool = False,
    simulate_fn=None,
    checkpoints: CampaignCheckpoints | None = None,
    point_dir: str | None = None,
):
    """Run one point with bounded retry-with-reseed.

    Returns ``("ok", result)`` or ``("fail", FailedPoint, last_error)``;
    non-retryable errors propagate.  Top-level so process pools can pickle
    it.

    With ``checkpoints`` supervision, two deviations from plain
    retry-with-reseed: a retry after a timeout or a dead worker keeps
    the *original* seed when the point directory holds a resumable
    checkpoint (resuming a reseeded recipe would reject the checkpoint
    as stale — the whole point is to not lose the completed cycles),
    and a dead worker earns exponential backoff before the relaunch,
    since worker death usually means host pressure, not a bad seed.
    Deadlocks and engine errors still reseed: resuming a deadlocked
    run's own state would deadlock again.
    """
    seeds: list[int] = []
    last: Exception | None = None
    for attempt in range(retries + 1):
        if _INTERRUPTED.is_set():
            # the campaign is tearing down: a retry here would race the
            # interrupt handler's worker cleanup
            raise KeyboardInterrupt
        if isinstance(last, WorkerDiedError):
            delay = min(_BACKOFF_CAP, _BACKOFF_BASE * (2 ** (attempt - 1)))
            if _INTERRUPTED.wait(delay):
                raise KeyboardInterrupt
        resume = (
            checkpoints is not None
            and point_dir is not None
            and isinstance(last, (PointTimeoutError, WorkerDiedError))
            and has_resumable(point_dir, config)
        )
        cfg = config if resume else _reseeded(config, attempt)
        seeds.append(cfg.seed)
        ckpt = None
        if checkpoints is not None and point_dir is not None:
            ckpt = checkpoints.policy(point_dir)
        try:
            if timeout is None:
                return ("ok", _call_sim(_simulate_fn(forensics, simulate_fn), cfg, ckpt))
            return (
                "ok",
                _simulate_with_timeout(cfg, timeout, forensics, simulate_fn, ckpt=ckpt),
            )
        except _RETRYABLE as exc:
            last = exc
    failure = FailedPoint(
        offered=config.load,
        error=type(last).__name__,
        message=str(last),
        attempts=len(seeds),
        seeds=tuple(seeds),
    )
    return ("fail", failure, last)


def _terminate_workers(pool) -> None:
    """Best-effort kill of everything a campaign has in flight."""
    for proc in list(_ACTIVE_WATCHDOGS):
        try:
            proc.terminate()
        except Exception:  # noqa: BLE001 - already-dead processes etc.
            pass
    procs = getattr(pool, "_processes", None)  # ProcessPoolExecutor only
    if procs:
        for proc in list(procs.values()):
            try:
                proc.terminate()
            except Exception:  # noqa: BLE001
                pass


def _run_parallel(
    pending,
    retries,
    timeout,
    max_workers,
    forensics=False,
    simulate_fn=None,
    consume=None,
    checkpoints=None,
    point_dirs=None,
):
    """Fan points out over a pool, consuming outcomes in submission order.

    On ``KeyboardInterrupt`` the pool's workers and all live watchdog
    subprocesses are terminated, but every point that had *already
    finished* is still flushed through ``consume`` — into the series,
    the disk cache and the ledger — before the interrupt propagates, so
    an interrupted campaign keeps its completed work.
    """
    workers = min(max_workers or os.cpu_count() or 1, len(pending))
    task = partial(
        _point_task,
        retries=retries,
        timeout=timeout,
        forensics=forensics,
        simulate_fn=simulate_fn,
        checkpoints=checkpoints,
    )
    # with a timeout every task already manages its own watchdog
    # subprocess, so the fan-out layer only needs threads to block on pipes
    pool_cls = ProcessPoolExecutor if timeout is None else ThreadPoolExecutor
    pool = pool_cls(max_workers=workers)
    futures = [
        pool.submit(task, config, point_dir=point_dirs[i] if point_dirs else None)
        for i, config in enumerate(pending)
    ]
    consumed = 0
    try:
        for config, fut in zip(pending, futures):
            consume(config, fut.result())
            consumed += 1
    except KeyboardInterrupt:
        # snapshot completion *before* killing workers: termination flips
        # still-running futures into error states we must not flush
        finished = [f.done() and not f.cancelled() for f in futures]
        _INTERRUPTED.set()
        _terminate_workers(pool)
        for idx in range(consumed, len(futures)):
            if finished[idx] and futures[idx].exception() is None:
                try:
                    consume(pending[idx], futures[idx].result())
                except Exception:  # noqa: BLE001 - teardown must not mask the interrupt
                    pass
        raise
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


# -- campaigns ------------------------------------------------------------------


def run_sweep(
    config_factory: Callable[[float], SimulationConfig],
    loads: Sequence[float],
    label: str,
    parallel: bool = False,
    max_workers: int | None = None,
    use_cache: bool = True,
    retries: int = 0,
    timeout: float | None = None,
    record_failures: bool = False,
    cache: RunCache | None = None,
    progress: Callable[[PointProgress], None] | None = None,
    ledger=None,
    forensics: bool = False,
    simulate_fn=None,
    ledger_kind: str | None = None,
    ledger_dedup: bool = True,
    on_result: Callable[[RunResult], None] | None = None,
    checkpoints: CampaignCheckpoints | None = None,
) -> LoadSweepSeries:
    """Run one configuration over a load grid.

    Args:
        config_factory: maps an offered load (fraction of capacity) to a
            full run recipe.
        loads: the offered-load grid.
        label: legend label for the resulting series.
        parallel: fan points out over a process pool.
        max_workers: pool size; defaults to ``os.cpu_count()``.
        use_cache: memoize/reuse identical points within this process.
        retries: extra attempts (with fresh derived seeds) per failed point.
        timeout: per-point wall-clock budget in seconds; enforced by a
            terminating watchdog subprocess.
        record_failures: file exhausted points as ``series.failures``
            entries instead of raising (the resilient-campaign mode).
        cache: optional on-disk :class:`RunCache`; completed points are
            persisted atomically and reloaded on the next campaign.
        progress: optional live-telemetry sink; called once per finished
            point with a :class:`PointProgress` (cached hits included).
        ledger: optional :class:`~repro.obs.ledger.Ledger`; every point
            that produced a result (cached hits included) is appended as
            a ``"sweep"`` record, deduplicated by config digest + seed,
            so repeated campaigns accrete one durable results file.
        forensics: instrument every point with the congestion-forensics
            tier (:mod:`repro.obs.forensics`); the forensics document
            rides on each result's telemetry (parallel workers
            included) and ledger records are filed as ``"forensics"``.
            Caches are bypassed: a plain cached run has no forensics
            document, and an instrumented run must not satisfy later
            uninstrumented campaigns either.
        simulate_fn: optional picklable callable replacing the
            point-simulation function entirely (a module-level function
            or :func:`functools.partial` of one, taking a
            :class:`SimulationConfig`).  Campaigns that decorate runs
            with extra machinery (reliable transport, fault storms)
            plug in here; caches are bypassed for the same reason as
            with ``forensics``.
        ledger_kind: override the kind ledger records are filed under
            (default ``"sweep"``, or ``"forensics"`` when instrumented).
        ledger_dedup: pass ``dedup=False`` for campaigns whose points
            intentionally share a config digest + seed (e.g. a chaos
            grid varying only the storm parameters).
        on_result: optional callable invoked with every
            :class:`RunResult` added to the series (cached hits
            included), for campaigns that need the raw results beyond
            the series' load points.
        checkpoints: optional :class:`CampaignCheckpoints` supervision.
            Every pending point runs with a per-point checkpoint
            directory (periodic snapshots + manifest); finished points
            persist their result there as a one-entry :class:`RunCache`
            and drop their snapshots.  A later campaign passing the same
            directory reloads completed points from those per-point
            caches (even when ``simulate_fn`` bypasses the global cache)
            and restarts interrupted points from their newest valid
            checkpoint.  With a ``timeout``, supervision also enables
            worker heartbeats, the SIGUSR1 soft-timeout escalation and
            resume-from-checkpoint retries.  When ``simulate_fn`` is
            set it must accept a ``checkpoint=`` keyword (all the
            repo's point functions do).
    """
    if forensics or simulate_fn is not None:
        # the memo/disk cache is keyed by recipe alone; instrumented,
        # decorated and plain runs would collide there (see the docstring)
        use_cache = False
        cache = None
    _INTERRUPTED.clear()
    kind = ledger_kind or ("forensics" if forensics else "sweep")
    if not loads:
        raise ConfigurationError("empty load grid")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be positive, got {timeout}")
    configs = [config_factory(load) for load in loads]
    sample = configs[0]
    series = LoadSweepSeries(
        label=label,
        network=sample.network,
        algorithm=sample.algorithm,
        vcs=sample.vcs,
        pattern=sample.pattern,
    )

    total = len(configs)
    done = 0

    def report(config: SimulationConfig, status: str, result=None) -> None:
        nonlocal done
        done += 1
        if progress is None:
            return
        telemetry = result.telemetry if result is not None else None
        flight = None
        if telemetry is not None and telemetry.flight is not None:
            doc = telemetry.flight
            flight = {
                "rows": doc["rows"],
                "annotations": [a["kind"] for a in doc["annotations"]],
                "collapse_onset": doc["collapse_onset"],
            }
        progress(
            PointProgress(
                done=done,
                total=total,
                offered=config.load,
                label=config.label(),
                status=status,
                cycles_per_sec=telemetry.cycles_per_sec if telemetry else None,
                flight=flight,
            )
        )

    # Classify by cache key — never by config equality: two configs that
    # compare equal are the same *recipe* regardless of which factory call
    # produced them, and key sets keep this O(n).
    pending: list[SimulationConfig] = []
    for config in configs:
        key = _cache_key(config)
        result = _CACHE.get(key) if use_cache else None
        if result is None and use_cache and cache is not None:
            result = cache.get(key)
            if result is not None:
                _CACHE[key] = result
        if result is None and checkpoints is not None:
            # the point's own one-entry cache — how --resume reloads
            # completed points even for decorated (simulate_fn) campaigns
            result = RunCache(checkpoints.point_dir(label, key)).get(key)
        if result is not None:
            series.add(result)
            if ledger is not None:
                ledger.append_run(result, kind=kind, dedup=ledger_dedup)
            if on_result is not None:
                on_result(result)
            report(config, "cached")
        else:
            pending.append(config)
    if not pending:  # fully cached: no pool, no subprocesses, no work
        return series

    def consume(config: SimulationConfig, outcome) -> None:
        if outcome[0] == "ok":
            result = outcome[1]
            if use_cache:
                _CACHE[_cache_key(result.config)] = result
                if cache is not None:
                    cache.put(_cache_key(result.config), result)
            if checkpoints is not None:
                # file under the ORIGINAL recipe's key (a reseeded retry
                # must still satisfy the same grid point on resume), then
                # drop the now-redundant snapshots
                pdir = checkpoints.point_dir(label, _cache_key(config))
                RunCache(pdir).put(_cache_key(config), result)
                clear_checkpoints(pdir)
            series.add(result)
            if ledger is not None:
                ledger.append_run(result, kind=kind, dedup=ledger_dedup)
            if on_result is not None:
                on_result(result)
            report(config, "ok", result)
        else:
            if not record_failures:
                raise outcome[2]
            series.add_failure(outcome[1])
            report(config, "failed")

    point_dirs = None
    if checkpoints is not None:
        point_dirs = [
            checkpoints.point_dir(label, _cache_key(config)) for config in pending
        ]
    if parallel and len(pending) > 1:
        _run_parallel(
            pending,
            retries,
            timeout,
            max_workers,
            forensics=forensics,
            simulate_fn=simulate_fn,
            consume=consume,
            checkpoints=checkpoints,
            point_dirs=point_dirs,
        )
    else:
        for i, config in enumerate(pending):
            key = _cache_key(config)
            if use_cache and key in _CACHE:  # duplicate earlier in this grid
                series.add(_CACHE[key])
                if ledger is not None:
                    ledger.append_run(_CACHE[key], kind=kind, dedup=ledger_dedup)
                if on_result is not None:
                    on_result(_CACHE[key])
                report(config, "cached")
                continue
            consume(
                config,
                _point_task(
                    config,
                    retries=retries,
                    timeout=timeout,
                    forensics=forensics,
                    simulate_fn=simulate_fn,
                    checkpoints=checkpoints,
                    point_dir=point_dirs[i] if point_dirs else None,
                ),
            )
    return series
