"""Tables 1 and 2 — router delays from Chien's model (paper §5).

These are analytic (no simulation): the rows are produced directly from
:mod:`repro.timing.chien` in the paper's layout, with the model parameters
(F, P, V) echoed for transparency.
"""

from __future__ import annotations

from ..timing.chien import (
    cube_crossbar_ports,
    cube_freedom_deterministic,
    cube_freedom_duato,
    table1_cube_delays,
    table2_tree_delays,
    tree_crossbar_ports,
    tree_freedom_adaptive,
)

#: the paper's printed values, for side-by-side reporting
PAPER_TABLE1 = {
    "deterministic": (5.9, 5.85, 6.34, 6.34),
    "duato": (7.8, 5.85, 6.34, 7.8),
}
PAPER_TABLE2 = {
    1: (8.06, 5.2, 9.64, 9.64),
    2: (9.26, 5.8, 10.24, 10.24),
    4: (10.46, 6.4, 10.84, 10.84),
}


def table1_rows(n: int = 2, vcs: int = 4) -> list[dict]:
    """Table 1 rows: cube algorithms — T_routing, T_crossbar, T_link^s, T_clock."""
    delays = table1_cube_delays(n, vcs)
    freedoms = {
        "deterministic": cube_freedom_deterministic(vcs),
        "duato": cube_freedom_duato(n, vcs),
    }
    rows = []
    for name, d in delays.items():
        r, c, l, clk = d.rounded()
        rows.append(
            {
                "algorithm": name,
                "F": freedoms[name],
                "P": cube_crossbar_ports(n, vcs),
                "V": vcs,
                "T_routing": r,
                "T_crossbar": c,
                "T_link": l,
                "T_clock": clk,
                "limiting": d.limiting_factor(),
                "paper": PAPER_TABLE1.get(name),
            }
        )
    return rows


def table2_rows(k: int = 4, vc_variants: tuple[int, ...] = (1, 2, 4)) -> list[dict]:
    """Table 2 rows: tree VC variants — T_routing, T_crossbar, T_link^m, T_clock."""
    delays = table2_tree_delays(k, vc_variants)
    rows = []
    for vcs, d in delays.items():
        r, c, l, clk = d.rounded()
        rows.append(
            {
                "algorithm": f"adaptive, {vcs} vc",
                "F": tree_freedom_adaptive(k, vcs),
                "P": tree_crossbar_ports(k, vcs),
                "V": vcs,
                "T_routing": r,
                "T_crossbar": c,
                "T_link": l,
                "T_clock": clk,
                "limiting": d.limiting_factor(),
                "paper": PAPER_TABLE2.get(vcs),
            }
        )
    return rows
