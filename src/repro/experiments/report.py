"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers format them as aligned ASCII tables (also valid
markdown) so `pytest benchmarks/ --benchmark-only -s` doubles as a
readable reproduction report.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..metrics.cnf import CNFResult
from ..metrics.saturation import saturation_point
from .fig7 import Fig7Result


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Align a list of rows under headers; floats get 3 decimals."""

    def fmt(v) -> str:
        if v is None:
            return "-"
        if isinstance(v, float):
            return f"{v:.3f}"
        # a literal | in a cell would split the markdown column
        return str(v).replace("|", "\\|")

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-|-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_cnf(result: CNFResult, tol: float = 0.05) -> str:
    """Both CNF graphs of one experiment as tables, plus saturation points.

    Layout mirrors the paper's panels: one column of accepted bandwidth
    and one of latency per series, over the shared offered-load x-axis.
    """
    series = result.series
    loads = series[0].offered()
    headers = ["offered"]
    for s in series:
        headers += [f"acc[{s.label}]", f"lat[{s.label}]"]
    rows = []
    for i, load in enumerate(loads):
        row: list = [load]
        for s in series:
            p = s.points[i]
            row += [p.accepted, p.latency_cycles]
        rows.append(row)
    out = [render_table(headers, rows, title=result.title)]
    out.append("saturation points (fraction of capacity):")
    for s in series:
        out.append(f"  {s.label}: {saturation_point(s, tol):.3f}")
    return "\n".join(out)


def render_comparison(result: Fig7Result, tol: float = 0.05) -> str:
    """The Figure-7 panels: absolute accepted traffic and latency.

    x-axis is the offered traffic in bits/ns of each configuration (they
    differ per series, exactly as in the paper's absolute plots), so the
    table keys rows by the underlying offered fraction and reports each
    series' own bits/ns values.
    """
    headers = ["offered_frac"]
    for s in result.series:
        headers += [f"acc_bits/ns[{s.label}]", f"lat_ns[{s.label}]"]
    npoints = len(result.series[0].points)
    rows = []
    fractions = result.series[0].sweep.offered()
    for i in range(npoints):
        row: list = [fractions[i]]
        for s in result.series:
            p = s.points[i]
            row += [round(p.accepted_bits_per_ns, 1), p.latency_ns]
        rows.append(row)
    out = [render_table(headers, rows, title=result.title)]
    out.append("saturation throughput (bits/ns):")
    for label, bits in result.saturation_summary(tol).items():
        out.append(f"  {label}: {bits:.0f}")
    return "\n".join(out)


def render_ascii_plot(
    result: CNFResult,
    metric: str = "accepted",
    width: int = 60,
    height: int = 16,
) -> str:
    """Terminal scatter plot of one CNF graph (marker per series).

    Args:
        result: the experiment to plot.
        metric: ``"accepted"`` (bandwidth graph) or ``"latency"``.
    """
    if metric not in ("accepted", "latency"):
        raise ValueError(f"metric must be 'accepted' or 'latency', got {metric!r}")
    markers = "ox+*#@"
    points: list[tuple[float, float, str]] = []
    for i, series in enumerate(result.series):
        mark = markers[i % len(markers)]
        for p in series.points:
            y = p.accepted if metric == "accepted" else p.latency_cycles
            if y is not None:
                points.append((p.offered, y, mark))
    if not points:
        return f"{result.title}: no data"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = 0.0, max(ys) * 1.05 or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, mark in points:
        col = int((x - x0) / (x1 - x0 or 1) * (width - 1))
        row = height - 1 - int((y - y0) / (y1 - y0 or 1) * (height - 1))
        grid[row][col] = mark
    unit = "fraction of capacity" if metric == "accepted" else "cycles"
    lines = [f"{result.title} — {metric} ({unit})"]
    for r, row in enumerate(grid):
        label = f"{y1 - r * (y1 - y0) / (height - 1):8.2f} |"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x0:.2f}" + " " * (width - 10) + f"{x1:.2f}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={s.label}" for i, s in enumerate(result.series)
    )
    lines.append(" " * 10 + "offered (fraction of capacity)   " + legend)
    return "\n".join(lines)


def render_delay_table(rows: list[dict], title: str) -> str:
    """Tables 1/2 rendering with the paper's printed values alongside."""
    headers = [
        "algorithm",
        "F",
        "P",
        "V",
        "T_routing",
        "T_crossbar",
        "T_link",
        "T_clock",
        "limiting",
        "paper (Tr, Tc, Tl, Tclk)",
    ]
    body = []
    for r in rows:
        body.append(
            [
                r["algorithm"],
                r["F"],
                r["P"],
                r["V"],
                r["T_routing"],
                r["T_crossbar"],
                r["T_link"],
                r["T_clock"],
                r["limiting"],
                str(r["paper"]),
            ]
        )
    return render_table(headers, body, title=title)
