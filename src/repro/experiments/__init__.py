"""Experiment drivers: one module per paper artifact.

* :mod:`repro.experiments.sweep` — offered-load sweeps (serial or
  process-pool) with an in-process result cache so Figure 7 reuses the
  runs of Figures 5 and 6.
* :mod:`repro.experiments.fig5` — fat-tree CNF curves (Figure 5 a–h).
* :mod:`repro.experiments.fig6` — cube CNF curves (Figure 6 a–h).
* :mod:`repro.experiments.fig7` — the normalized absolute comparison
  (Figure 7 a–h).
* :mod:`repro.experiments.tables` — Tables 1 and 2 (Chien model).
* :mod:`repro.experiments.report` — ASCII/markdown rendering of series,
  saturation summaries and paper-vs-measured records.
* :mod:`repro.experiments.chaos` — randomized fail-stop fault storms
  under the reliable transport (goodput-degradation campaigns).
"""

from .chaos import ChaosSeries, StormSpec, chaos_campaign, run_chaos_point
from .dimension import dimension_study, normalize_cube
from .drain import DrainResult, drain_permutation
from .fig5 import fig5_experiment, fig5_loads
from .fig6 import fig6_experiment
from .fig7 import fig7_experiment
from .report import render_ascii_plot, render_cnf, render_comparison, render_table
from .search import SaturationEstimate, find_saturation
from .stats import Estimate, replicate_point, t_confidence
from .sweep import clear_cache, run_point, run_sweep
from .tables import table1_rows, table2_rows

__all__ = [
    "ChaosSeries",
    "StormSpec",
    "chaos_campaign",
    "run_chaos_point",
    "dimension_study",
    "normalize_cube",
    "DrainResult",
    "drain_permutation",
    "fig5_experiment",
    "fig5_loads",
    "fig6_experiment",
    "fig7_experiment",
    "render_ascii_plot",
    "render_cnf",
    "render_comparison",
    "render_table",
    "SaturationEstimate",
    "find_saturation",
    "Estimate",
    "replicate_point",
    "t_confidence",
    "clear_cache",
    "run_point",
    "run_sweep",
    "table1_rows",
    "table2_rows",
]
