"""Figure 6 — communication performance of the 16-ary 2-cube (paper §9).

Eight panels: accepted bandwidth and network latency vs offered bandwidth
for each traffic pattern, comparing deterministic dimension-order routing
against Duato's minimal adaptive algorithm (both with 4 virtual channels).

Paper shape to reproduce:

* uniform — Duato saturates at ≈80%, deterministic at ≈60%; latency ≈70
  cycles before saturation for both;
* complement — the inversion: deterministic near-optimal at ≈47% (the
  theoretical bound is 50% since every packet crosses the bisection),
  Duato saturating early at ≈35%;
* transpose — adaptive ≈50%, more than twice the deterministic;
* bit reversal — adaptive ≈60% vs deterministic ≈20%.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..metrics.cnf import CNFResult
from ..profiles import Profile, get_profile
from ..sim.run import cube_config
from ..traffic.patterns import PAPER_PATTERNS
from .sweep import default_loads, run_sweep

#: the two algorithms with their figure legend labels
CUBE_ALGORITHMS = (("dor", "deterministic"), ("duato", "Duato"))


def fig6_experiment(
    pattern: str,
    profile: Profile | None = None,
    k: int = 16,
    n: int = 2,
    vcs: int = 4,
    seed: int = 13,
    parallel: bool = False,
) -> CNFResult:
    """Run one Figure-6 panel pair (one traffic pattern, both algorithms)."""
    if pattern not in PAPER_PATTERNS:
        raise ConfigurationError(
            f"figure 6 covers {PAPER_PATTERNS}, got {pattern!r} "
            f"(use run_sweep directly for extension patterns)"
        )
    profile = profile or get_profile()
    loads = default_loads(profile.sweep_points)
    series = []
    for algorithm, label in CUBE_ALGORITHMS:
        series.append(
            run_sweep(
                lambda load, a=algorithm: cube_config(
                    k=k,
                    n=n,
                    algorithm=a,
                    vcs=vcs,
                    pattern=pattern,
                    load=load,
                    seed=seed,
                    warmup_cycles=profile.warmup_cycles,
                    total_cycles=profile.total_cycles,
                ),
                loads,
                label=label,
                parallel=parallel,
            )
        )
    return CNFResult(title=f"16-ary 2-cube, {pattern} traffic", series=series)
