"""Fault-degradation experiments for both networks.

The operational claim under test (paper §1–2, CM-5 lineage): an adaptive
algorithm masks channel faults with graceful, roughly proportional
bandwidth loss — no deadlock, no collapse.  This experiment injects a
growing fraction of random channel faults and measures sustained
throughput at a fixed offered load:

* **tree** — random ascending-channel faults
  (:func:`~repro.faults.tree.random_uplink_faults`), masked by the
  adaptive up-phase;
* **cube** — random lane-level link faults
  (:func:`~repro.faults.cube.random_cube_link_faults`) under Duato's
  algorithm, masked by adaptive channels while the validated escape
  subnetwork keeps the run deadlock-free.

A transient variant (:func:`transient_experiment`) drives the same fault
population through a :class:`~repro.faults.FaultSchedule` — fail at
cycle T, repair at T' — to show the network riding a fault window out.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError, ConfigurationError
from ..faults import (
    CubeLinkFault,
    FaultSchedule,
    TreeUplinkFault,
    inject_cube_link_faults,
    inject_tree_uplink_faults,
    random_cube_link_faults,
    random_uplink_faults,
)
from ..profiles import Profile, get_profile
from ..routing.duato import DuatoAdaptiveRouting
from ..sim.results import RunResult
from ..sim.run import build_engine, cube_config, tree_config
from ..topology.cube import KAryNCube
from ..topology.tree import KAryNTree


@dataclass(frozen=True)
class DegradationRow:
    """One fault level of a degradation experiment.

    Attributes:
        fraction: requested fault fraction of the channel population.
        faults: concrete number of channel directions failed.
        accepted: sustained accepted bandwidth (fraction of capacity).
        latency_cycles: average network latency, or ``None`` when no
            packet completed in the window.
        escape_fraction: share of routing decisions that fell back to
            escape channels (Duato only; ``None`` otherwise) — a direct
            read on how hard the faults squeeze the adaptive lanes.
    """

    fraction: float
    faults: int
    accepted: float
    latency_cycles: float | None
    escape_fraction: float | None


def fault_population(topo) -> int:
    """Size of the failable channel population of a topology.

    Tree: every ascending channel direction of the non-root levels.
    Cube: every inter-router channel direction.
    """
    if isinstance(topo, KAryNTree):
        return (topo.n - 1) * topo.switches_per_level * topo.k
    if isinstance(topo, KAryNCube):
        per_node = topo.n if topo.k == 2 else 2 * topo.n
        return topo.num_nodes * per_node
    raise ConfigurationError(f"no fault population defined for {type(topo).__name__}")


def _make_config(network, load, vcs, profile, seed, k, n, algorithm, **overrides):
    common = dict(
        vcs=vcs,
        load=load,
        seed=seed,
        warmup_cycles=profile.warmup_cycles,
        total_cycles=profile.total_cycles,
        **overrides,
    )
    if network == "tree":
        return tree_config(k=k or 4, n=n or 4, algorithm=algorithm or "tree_adaptive", **common)
    if network == "cube":
        return cube_config(k=k or 16, n=n or 2, algorithm=algorithm or "duato", **common)
    raise ConfigurationError(f"unknown network family {network!r}")


def _draw_and_inject(engine, network: str, count: int, fault_seed: int) -> int:
    if network == "tree":
        return inject_tree_uplink_faults(
            engine, random_uplink_faults(engine.topology, count, seed=fault_seed)
        )
    return inject_cube_link_faults(
        engine, random_cube_link_faults(engine.topology, count, seed=fault_seed)
    )


def _row(engine, result: RunResult, fraction: float, count: int) -> DegradationRow:
    try:
        latency = result.avg_latency_cycles
    except AnalysisError:
        latency = None
    routing = engine.routing
    escape = (
        routing.escape_fraction() if isinstance(routing, DuatoAdaptiveRouting) else None
    )
    return DegradationRow(
        fraction=fraction,
        faults=count,
        accepted=result.accepted_fraction,
        latency_cycles=latency,
        escape_fraction=escape,
    )


def degradation_experiment(
    network: str = "tree",
    fractions: tuple[float, ...] = (0.0, 0.05, 0.10, 0.20),
    profile: Profile | None = None,
    load: float = 1.0,
    vcs: int = 4,
    seed: int = 47,
    fault_seed: int = 5,
    k: int | None = None,
    n: int | None = None,
    algorithm: str | None = None,
    ledger=None,
) -> list[DegradationRow]:
    """Measure throughput under growing permanent fault fractions.

    Each fraction gets a fresh engine (identical traffic seed) with
    ``round(fraction · population)`` random channel faults injected
    before the run; the engine is audited afterwards, so a fault-induced
    invariant violation fails loudly rather than skewing a row.  An
    optional :class:`~repro.obs.ledger.Ledger` receives every completed
    run as a ``"faults"`` record.
    """
    profile = profile or get_profile()
    rows = []
    for fraction in fractions:
        if not 0.0 <= fraction < 1.0:
            raise ConfigurationError(f"fault fraction {fraction} outside [0, 1)")
        engine = build_engine(
            _make_config(network, load, vcs, profile, seed, k, n, algorithm)
        )
        count = round(fraction * fault_population(engine.topology))
        _draw_and_inject(engine, network, count, fault_seed)
        result = engine.run()
        engine.audit()
        if ledger is not None:
            # every fraction runs the *same* recipe (faults are injected
            # outside the config), so digest+seed dedup must be off
            ledger.append_run(result, kind="faults", dedup=False)
        rows.append(_row(engine, result, fraction, count))
    return rows


def transient_experiment(
    network: str = "cube",
    fraction: float = 0.10,
    fail_at: int | None = None,
    repair_at: int | None = None,
    profile: Profile | None = None,
    load: float = 0.8,
    vcs: int = 4,
    seed: int = 47,
    fault_seed: int = 5,
    k: int | None = None,
    n: int | None = None,
    algorithm: str | None = None,
    interval_cycles: int | None = None,
    ledger=None,
) -> tuple[RunResult, DegradationRow]:
    """One run with a mid-run fault window: fail at T, repair at T'.

    Defaults place the window over the middle of the measurement window
    and record a throughput timeline, so the dip and recovery are visible
    in ``result.throughput_timeline``.
    """
    profile = profile or get_profile()
    if fail_at is None:
        fail_at = profile.warmup_cycles + profile.measure_cycles // 4
    if repair_at is None:
        repair_at = profile.warmup_cycles + (3 * profile.measure_cycles) // 4
    if interval_cycles is None:
        interval_cycles = max(1, profile.measure_cycles // 10)
    engine = build_engine(
        _make_config(
            network, load, vcs, profile, seed, k, n, algorithm,
            interval_cycles=interval_cycles,
        )
    )
    count = round(fraction * fault_population(engine.topology))
    if network == "tree":
        specs = [
            TreeUplinkFault(s, p)
            for s, p in random_uplink_faults(engine.topology, count, seed=fault_seed)
        ]
    else:
        specs = [
            CubeLinkFault(node, dim, direction)
            for node, dim, direction in random_cube_link_faults(
                engine.topology, count, seed=fault_seed
            )
        ]
    if specs:  # fraction 0 is a legal no-fault baseline
        schedule = FaultSchedule()
        for spec in specs:
            schedule.add(spec, fail_at=fail_at, repair_at=repair_at)
        schedule.install(engine)
    result = engine.run()
    engine.audit()
    if ledger is not None:
        ledger.append_run(result, kind="faults", dedup=False)
    return result, _row(engine, result, fraction, count)
