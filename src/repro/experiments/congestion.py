"""Overload campaigns: open-loop vs closed-loop behaviour past saturation.

The paper's sweeps stop at each network's saturation point; an overload
campaign drives the same configurations *past* it (up to 2× the paper's
saturation load) and contrasts two operating modes:

* **open loop** — the plain reliable transport
  (:mod:`repro.traffic.transport`): sources inject at the offered rate
  and retransmit blindly into the congested fabric.  Past saturation,
  duplicates and queueing collapse goodput while tail latency grows
  without bound — the classic congestion-collapse curve;
* **closed loop** — the ECN-style control loop of
  :mod:`repro.traffic.congestion` (hot-link marking + per-destination
  AIMD windows), optionally paired with age-based lane arbitration
  (``config.arbiter = "age"``) so the oldest packets drain first.
  Age arbitration trades the tail for the median under deep overload
  (it improves p50 but lets young packets pile up behind old ones,
  inflating p99), so both campaign modes default to round-robin and
  ``arbiter_closed="age"`` is an explicit opt-in.

One overload point = one simulation with ``collect_latencies`` on (the
collapse panel plots p99, which needs the full sample), audited after
the run.  The campaign grids both modes over an offered-load axis
expressed as multiples of the paper's saturation reference, through the
resilient sweep harness; every point lands in the ledger as a
``"congestion"`` record (dedup off: modes share config digest + seed)
with the mode document on ``telemetry.reliability["overload"]`` — which
is what the scorecard's congestion-collapse panel reads.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import partial

from ..metrics.series import LoadSweepSeries
from ..obs.flight import FlightConfig, FlightRecorder
from ..obs.report import paper_reference
from ..profiles import Profile, get_profile
from ..sim.config import SimulationConfig
from ..sim.results import RunResult
from ..sim.run import build_engine
from ..traffic.congestion import CongestionConfig, install_congestion
from ..traffic.transport import (
    ReliableTransport,
    TransportConfig,
    attach_reliability,
)
from .chaos import default_transport
from .degradation import _make_config
from .sweep import run_sweep

#: overload axis when the paper gives no saturation reference for a shape
FALLBACK_SATURATION = 0.6

#: campaign-default control loop, tuned on the paper's 4-ary 4-tree at
#: 1.5-2x saturation: windows sized near the per-flow bandwidth-delay
#: product (min 3, cap 10) so binding trims the queueing tail without
#: pushing the fabric below its knee, one additive step per clean ACK,
#: and marking from windowed blocked-time only (the instantaneous
#: occupancy trigger stays off; full lanes are the steady state past
#: saturation and marking on them pins every window at the floor)
DEFAULT_CONTROL = CongestionConfig(
    window_cycles=128,
    hot_fraction=0.7,
    initial_window=6.0,
    min_window=3.0,
    max_window=10.0,
    additive_increase=1.0,
    multiplicative_decrease=0.7,
    cooldown=256,
)


def saturation_reference(
    network: str, k: int, n: int, algorithm: str, vcs: int, pattern: str
) -> float:
    """The paper's saturation load for a configuration (fraction of
    capacity), falling back to :data:`FALLBACK_SATURATION` for shapes
    the paper does not report."""
    ref = paper_reference(network, k, n, algorithm, vcs, pattern)
    return ref.saturation if ref is not None else FALLBACK_SATURATION


def overload_loads(
    saturation: float,
    points: int,
    lo_factor: float = 0.5,
    max_factor: float = 2.0,
) -> list[float]:
    """Offered-load grid as saturation multiples, ``lo``..``max`` inclusive."""
    if points < 2:
        return [round(saturation * max_factor, 9)]
    step = (max_factor - lo_factor) / (points - 1)
    return [round(saturation * (lo_factor + i * step), 9) for i in range(points)]


@dataclass(frozen=True)
class OverloadSpec:
    """One overload mode's recipe (picklable: workers rebuild it).

    Attributes:
        closed_loop: install the congestion control loop (True) or the
            plain reliable transport (False).
        saturation: the paper's saturation load for the swept shape;
            recorded so the collapse panel can plot saturation multiples.
        arbiter: lane arbitration policy for the run.
        transport: reliable-transport tuning.
        control: congestion-loop tuning (ignored when open loop).
        flight: attach a flight recorder with this tuning; the timeline
            document (window dynamics, mark/decrease/collapse-onset
            annotations) rides on ``telemetry.flight`` into the ledger,
            where the scorecard's dynamics panel reads it.
    """

    closed_loop: bool
    saturation: float = FALLBACK_SATURATION
    arbiter: str = "round_robin"
    transport: TransportConfig = field(default_factory=TransportConfig)
    control: CongestionConfig = field(default_factory=CongestionConfig)
    flight: "FlightConfig | None" = None

    @property
    def mode(self) -> str:
        return "closed" if self.closed_loop else "open"


def _resume_finish(engine, result, overload):
    """Checkpoint finisher: the post-run work of :func:`run_overload_point`."""
    from ..obs.flight import _find_transport

    engine.audit()
    return attach_reliability(
        result, _find_transport(engine.probe), extra={"overload": overload}
    )


def run_overload_point(
    config: SimulationConfig, spec: OverloadSpec, checkpoint=None
) -> RunResult:
    """Simulate one overload point in one mode.

    Module-level and driven by picklable arguments so the resilient
    sweep can fan it out over process pools.  Latency collection is
    forced on (the collapse panel needs p99) and the arbiter comes from
    the spec, so both knobs are part of the recorded config document.

    ``checkpoint`` (a :class:`~repro.sim.checkpoint.CheckpointPolicy`)
    makes the point resumable; transport/AIMD state rides the snapshot
    and the audit + overload document are reapplied via the finisher.
    """
    config = dataclasses.replace(
        config, arbiter=spec.arbiter, collect_latencies=True
    )
    doc = {
        "mode": spec.mode,
        "arbiter": spec.arbiter,
        "saturation": spec.saturation,
        "factor": round(config.load / spec.saturation, 6),
    }
    if checkpoint is not None:
        from ..sim.checkpoint import resume_point

        resumed = resume_point(checkpoint, config)
        if resumed is not None:
            return resumed
    recorder = FlightRecorder(spec.flight) if spec.flight is not None else None
    engine = build_engine(config, probe=recorder)
    if spec.closed_loop:
        transport = install_congestion(engine, spec.transport, spec.control)
    else:
        transport = ReliableTransport(spec.transport).install(engine)
    if checkpoint is not None:
        from ..sim.checkpoint import attach_checkpoints

        attach_checkpoints(
            engine,
            checkpoint,
            finisher="repro.experiments.congestion:_resume_finish",
            finisher_args={"overload": doc},
        )
    result = engine.run()
    engine.audit()
    return attach_reliability(result, transport, extra={"overload": doc})


@dataclass(frozen=True)
class OverloadSeries:
    """One mode of an overload campaign: a full offered-load sweep."""

    spec: OverloadSpec
    series: LoadSweepSeries
    results: tuple[RunResult, ...]

    def _past_saturation(self) -> list[RunResult]:
        return [
            r for r in self.results if r.config.load > self.spec.saturation
        ]

    @property
    def overload_goodput_fraction(self) -> float:
        """Mean goodput fraction over the points past saturation."""
        past = self._past_saturation()
        if not past:
            return 0.0
        return sum(r.goodput_fraction for r in past) / len(past)

    @property
    def overload_p99_latency(self) -> float | None:
        """Worst p99 latency over the points past saturation."""
        worst = None
        for r in self._past_saturation():
            pct = r.latency_percentiles()
            if pct is not None and (worst is None or pct["p99"] > worst):
                worst = pct["p99"]
        return worst

    @property
    def total_given_up(self) -> int:
        return sum(r.given_up_packets for r in self.results)


def congestion_campaign(
    network: str = "tree",
    modes: tuple[bool, ...] = (False, True),
    loads=None,
    max_factor: float = 2.0,
    profile: Profile | None = None,
    vcs: int = 4,
    pattern: str = "uniform",
    seed: int = 29,
    k: int | None = None,
    n: int | None = None,
    algorithm: str | None = None,
    transport: TransportConfig | None = None,
    control: CongestionConfig | None = None,
    flight: FlightConfig | None = None,
    arbiter_open: str = "round_robin",
    arbiter_closed: str = "round_robin",
    parallel: bool = False,
    max_workers: int | None = None,
    retries: int = 0,
    timeout: float | None = None,
    record_failures: bool = True,
    progress=None,
    ledger=None,
    checkpoints=None,
) -> list[OverloadSeries]:
    """Grid open-loop vs closed-loop runs over an overload axis.

    One :class:`OverloadSeries` per entry of ``modes`` (False = open
    loop, True = closed loop), each a full offered-load sweep of
    :func:`run_overload_point` from 0.5× to ``max_factor``× the paper's
    saturation reference for the swept shape.  Every completed point is
    appended to ``ledger`` as a ``"congestion"`` record with dedup off
    (modes intentionally share config digest + seed; the mode document
    on ``telemetry.reliability`` is what distinguishes them).
    ``checkpoints`` (a
    :class:`~repro.experiments.sweep.CampaignCheckpoints`) makes every
    point checkpointed and resumable; a rerun with the same directory
    reloads finished points and resumes interrupted ones.
    """
    profile = profile or get_profile()
    saturation = saturation_reference(
        network,
        k or (4 if network == "tree" else 16),
        n or (4 if network == "tree" else 2),
        algorithm or ("tree_adaptive" if network == "tree" else "duato"),
        vcs,
        pattern,
    )
    if loads is None:
        loads = overload_loads(
            saturation, profile.sweep_points, max_factor=max_factor
        )
    if transport is None:
        transport = default_transport(profile)
    if control is None:
        control = DEFAULT_CONTROL
    out: list[OverloadSeries] = []
    for closed_loop in modes:
        spec = OverloadSpec(
            closed_loop=closed_loop,
            saturation=saturation,
            arbiter=arbiter_closed if closed_loop else arbiter_open,
            transport=transport,
            control=control,
            flight=flight,
        )
        label = f"{network} congestion {spec.mode}-loop"
        collected: list[RunResult] = []
        series = run_sweep(
            partial(
                _make_config, network, vcs=vcs, profile=profile, seed=seed,
                k=k, n=n, algorithm=algorithm, pattern=pattern,
            ),
            loads,
            label,
            parallel=parallel,
            max_workers=max_workers,
            retries=retries,
            timeout=timeout,
            record_failures=record_failures,
            progress=progress,
            ledger=ledger,
            simulate_fn=partial(run_overload_point, spec=spec),
            ledger_kind="congestion",
            ledger_dedup=False,
            on_result=collected.append,
            checkpoints=checkpoints,
        )
        out.append(
            OverloadSeries(spec=spec, series=series, results=tuple(collected))
        )
    return out


def collapse_rows(campaign: list[OverloadSeries]) -> list[dict]:
    """Flatten a campaign into collapse-curve rows (one per point).

    The rows feed the CLI table and mirror what the scorecard's
    congestion panel plots from the ledger: goodput and p99 latency vs
    offered load (in saturation multiples), per mode.
    """
    rows = []
    for series in campaign:
        for result in series.results:
            pct = result.latency_percentiles()
            rows.append(
                {
                    "mode": series.spec.mode,
                    "arbiter": series.spec.arbiter,
                    "load": result.config.load,
                    "factor": round(
                        result.config.load / series.spec.saturation, 6
                    ),
                    "goodput_fraction": result.goodput_fraction,
                    "p99_latency": pct["p99"] if pct is not None else None,
                    "retransmit_overhead": result.retransmit_overhead,
                    "given_up": result.given_up_packets,
                }
            )
    return rows
