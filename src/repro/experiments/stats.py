"""Replicated runs and confidence intervals.

A single simulation point is one realization of a stochastic process
(Bernoulli sources, random tie-breaking).  For publication-grade numbers
the point should be replicated over independent seeds; this module runs
the replications and summarizes accepted bandwidth and latency with
Student-t confidence intervals.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from ..errors import AnalysisError, ConfigurationError
from ..sim.config import SimulationConfig
from .sweep import run_point

#: two-sided 95% Student-t critical values for 1..30 degrees of freedom
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


@dataclass(frozen=True)
class Estimate:
    """Mean with a symmetric 95% confidence half-width."""

    mean: float
    half_width: float
    samples: int

    @property
    def lo(self) -> float:
        return self.mean - self.half_width

    @property
    def hi(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - formatting sugar
        return f"{self.mean:.4f} ± {self.half_width:.4f} (n={self.samples})"


def t_confidence(values: Sequence[float]) -> Estimate:
    """95% Student-t interval for the mean of i.i.d. replications.

    Raises:
        AnalysisError: with fewer than two samples (no variance estimate).
    """
    n = len(values)
    if n < 2:
        raise AnalysisError(f"confidence interval needs >= 2 samples, got {n}")
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    dof = n - 1
    t = _T95[dof - 1] if dof <= len(_T95) else 1.96
    return Estimate(mean=mean, half_width=t * math.sqrt(var / n), samples=n)


@dataclass(frozen=True)
class ReplicatedPoint:
    """Summary of one offered-load point over independent seeds."""

    load: float
    accepted: Estimate
    latency_cycles: Estimate | None  # None if any replication starved


def replicate_point(
    config_factory: Callable[[int], SimulationConfig],
    seeds: Sequence[int],
) -> ReplicatedPoint:
    """Run one point once per seed and summarize.

    Args:
        config_factory: seed -> run recipe (the caller fixes the load and
            windows; only the seed varies).
        seeds: independent replication seeds (>= 2).
    """
    if len(seeds) < 2:
        raise ConfigurationError("replication needs at least 2 seeds")
    accepted = []
    latencies = []
    load = None
    for seed in seeds:
        result = run_point(config_factory(seed))
        if load is None:
            load = result.config.load
        elif result.config.load != load:
            raise ConfigurationError("config_factory must keep the load fixed")
        accepted.append(result.accepted_fraction)
        if result.delivered_packets:
            latencies.append(result.avg_latency_cycles)
    return ReplicatedPoint(
        load=load,
        accepted=t_confidence(accepted),
        latency_cycles=(
            t_confidence(latencies) if len(latencies) == len(seeds) else None
        ),
    )
