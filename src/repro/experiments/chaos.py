"""Chaos campaigns: randomized fail-stop fault storms under reliable
transport.

The degradation experiments (:mod:`repro.experiments.degradation`) ask
how much *bandwidth* survives a fault fraction when no packet is ever
lost (drain-then-seize).  A chaos campaign asks the harder operational
question: when links die **abruptly** — in-flight worms destroyed, the
engine's fail-stop mode (:class:`~repro.faults.FaultPolicy.FAIL_STOP`)
— how much *end-to-end goodput* does the reliable transport
(:mod:`repro.traffic.transport`) recover, and what does the recovery
cost in retransmissions?

One chaos point = one simulation of a paper configuration with

* the reliable transport installed on every source,
* ``round(fault_rate · population)`` random channel faults scheduled to
  strike at cycles drawn uniformly over the run, each repairing
  ``repair_cycles`` later (0 = permanent), all with fail-stop policy.

The campaign grids that point over offered load × fault rate (×
optionally several repair times) through the resilient sweep harness —
so chaos storms inherit retries, per-point watchdog timeouts, parallel
fan-out and failure recording.  Every point's reliability accounting
plus the storm recipe lands on ``telemetry.reliability`` and is filed
in the ledger as a ``"chaos"`` record (dedup off: grid points
intentionally share config digest + seed), which is what the scorecard
reliability panel reads.

Storms are deterministic given ``storm_seed``: the fault draw and the
strike times come from one dedicated stream, identical across the load
grid so fault-rate curves differ only in the knob under study.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import partial

from ..errors import ConfigurationError
from ..faults import (
    CubeLinkFault,
    FaultPolicy,
    FaultSchedule,
    TreeUplinkFault,
    random_cube_link_faults,
    random_uplink_faults,
)
from ..metrics.series import LoadSweepSeries
from ..profiles import Profile, get_profile
from ..sim.config import SimulationConfig
from ..sim.results import RunResult
from ..sim.run import build_engine
from ..topology.tree import KAryNTree
from ..traffic.transport import (
    ReliableTransport,
    TransportConfig,
    attach_reliability,
)
from .degradation import _make_config, fault_population
from .sweep import default_loads, run_sweep


@dataclass(frozen=True)
class StormSpec:
    """One fault storm's recipe (picklable: parallel workers rebuild it).

    Attributes:
        fault_rate: fraction of the failable channel population struck
            over the course of the run.
        repair_cycles: down time per fault in cycles; 0 means the fault
            is permanent.
        storm_seed: seed of the storm's dedicated stream (fault draw +
            strike times); independent of the traffic seed.
        transport: reliable-transport tuning for the run.
    """

    fault_rate: float
    repair_cycles: int = 0
    storm_seed: int = 5
    transport: TransportConfig = field(default_factory=TransportConfig)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_rate < 1.0:
            raise ConfigurationError(
                f"fault_rate {self.fault_rate} outside [0, 1)"
            )
        if self.repair_cycles < 0:
            raise ConfigurationError(
                f"repair_cycles must be >= 0, got {self.repair_cycles}"
            )


@dataclass(frozen=True)
class ChaosSeries:
    """One fault-rate level of a chaos campaign: a full load sweep.

    ``results`` holds the raw per-point results (reliability accounting
    on each ``telemetry.reliability``); the aggregate properties below
    average over the load grid, which is what the fault-rate curves
    plot.
    """

    storm: StormSpec
    series: LoadSweepSeries
    results: tuple[RunResult, ...]

    @property
    def mean_goodput_fraction(self) -> float:
        """Goodput (first-copy flits) as a capacity fraction, load-averaged."""
        if not self.results:
            return 0.0
        return sum(r.goodput_fraction for r in self.results) / len(self.results)

    @property
    def mean_retransmit_overhead(self) -> float:
        """Retransmitted share of injected packets, load-averaged."""
        if not self.results:
            return 0.0
        return sum(r.retransmit_overhead for r in self.results) / len(self.results)

    @property
    def total_given_up(self) -> int:
        return sum(r.given_up_packets for r in self.results)

    @property
    def total_dropped(self) -> int:
        return sum(r.dropped_packets for r in self.results)


def _draw_storm_schedule(engine, storm: StormSpec) -> FaultSchedule | None:
    """Build the fail-stop schedule for ``storm`` on a built engine.

    Returns ``None`` for a zero-fault storm (the chaos baseline row).
    The draw is clamped to the safely failable population (trees cap at
    ``k - 1`` up-channels per switch); the clamp is visible in the storm
    document's ``faults`` count.
    """
    topo = engine.topology
    population = fault_population(topo)
    requested = round(storm.fault_rate * population)
    if isinstance(topo, KAryNTree):
        max_safe = (topo.n - 1) * topo.switches_per_level * (topo.k - 1)
        count = min(requested, max_safe)
        specs = [
            TreeUplinkFault(s, p)
            for s, p in random_uplink_faults(topo, count, seed=storm.storm_seed)
        ]
    else:
        count = min(requested, population)
        specs = [
            CubeLinkFault(node, dim, direction)
            for node, dim, direction in random_cube_link_faults(
                topo, count, seed=storm.storm_seed
            )
        ]
    if not specs:
        return None
    total = engine.config.total_cycles
    rng = random.Random(storm.storm_seed)
    schedule = FaultSchedule()
    for spec in specs:
        fail_at = rng.randrange(1, max(2, total))
        repair_at = fail_at + storm.repair_cycles if storm.repair_cycles else None
        schedule.add(
            spec, fail_at=fail_at, repair_at=repair_at, policy=FaultPolicy.FAIL_STOP
        )
    return schedule


def _resume_finish(engine, result, storm):
    """Checkpoint finisher: the post-run work of :func:`run_chaos_point`."""
    from ..obs.flight import _find_transport

    engine.audit()
    return attach_reliability(
        result, _find_transport(engine.probe), extra={"storm": storm}
    )


def run_chaos_point(
    config: SimulationConfig, storm: StormSpec, flight=None, checkpoint=None
) -> RunResult:
    """Simulate one chaos point: reliable transport + fail-stop storm.

    Module-level and driven by picklable arguments, so the resilient
    sweep can fan it out over process pools via ``functools.partial``.
    The engine is audited after the run — a storm that corrupts a
    network invariant fails loudly instead of skewing a curve.

    ``flight`` (a :class:`~repro.obs.flight.FlightConfig`) attaches a
    flight recorder; every scheduled strike/repair is stamped on the
    timeline as a ``fault_strike``/``fault_repair`` annotation (the
    schedule is known up front, so the stamps carry the exact cycles).

    ``checkpoint`` (a :class:`~repro.sim.checkpoint.CheckpointPolicy`)
    makes the point resumable: the storm schedule's pending strikes ride
    the engine's cycle hooks inside the snapshot, and the audit +
    reliability document are reapplied through the checkpoint finisher.
    """
    if checkpoint is not None:
        from ..sim.checkpoint import resume_point

        resumed = resume_point(checkpoint, config)
        if resumed is not None:
            return resumed
    recorder = None
    if flight is not None:
        from ..obs.flight import FlightRecorder

        recorder = FlightRecorder(flight)
    engine = build_engine(config, probe=recorder)
    transport = ReliableTransport(storm.transport).install(engine)
    schedule = _draw_storm_schedule(engine, storm)
    if schedule is not None:
        schedule.install(engine)
        if recorder is not None:
            for entry in schedule.entries:
                recorder.annotate(
                    entry.fail_at, "fault_strike", str(entry.spec)
                )
                if entry.repair_at is not None:
                    recorder.annotate(
                        entry.repair_at, "fault_repair", str(entry.spec)
                    )
    doc = {
        "fault_rate": storm.fault_rate,
        "repair_cycles": storm.repair_cycles,
        "storm_seed": storm.storm_seed,
        "faults": len(schedule) if schedule is not None else 0,
        "population": fault_population(engine.topology),
    }
    if checkpoint is not None:
        from ..sim.checkpoint import attach_checkpoints

        attach_checkpoints(
            engine,
            checkpoint,
            finisher="repro.experiments.chaos:_resume_finish",
            finisher_args={"storm": doc},
        )
    result = engine.run()
    engine.audit()
    return attach_reliability(result, transport, extra={"storm": doc})


def default_transport(profile: Profile) -> TransportConfig:
    """Transport tuning scaled to a profile's time axis.

    The retransmission timer must exceed the uncontended round trip by a
    healthy margin or congestion alone triggers spurious retries; scale
    it with the measurement window so fast smoke profiles stay snappy.
    """
    return TransportConfig(base_timeout=max(128, profile.measure_cycles // 8))


def chaos_campaign(
    network: str = "tree",
    fault_rates: tuple[float, ...] = (0.0, 0.05, 0.10, 0.20),
    repair_grid: tuple[int, ...] = (0,),
    loads=None,
    profile: Profile | None = None,
    vcs: int = 4,
    seed: int = 47,
    storm_seed: int = 5,
    k: int | None = None,
    n: int | None = None,
    algorithm: str | None = None,
    transport: TransportConfig | None = None,
    flight=None,
    parallel: bool = False,
    max_workers: int | None = None,
    retries: int = 0,
    timeout: float | None = None,
    record_failures: bool = True,
    progress=None,
    ledger=None,
    checkpoints=None,
) -> list[ChaosSeries]:
    """Grid fail-stop storms over fault rate × repair time × offered load.

    One :class:`ChaosSeries` per (fault_rate, repair_cycles) pair, each a
    full load sweep of :func:`run_chaos_point` through the resilient
    harness.  Adaptive algorithms only — the storms are lane-level, so
    deterministic baselines reject them at validation (by design: the
    unprotected contrast belongs to the fault tests, not the campaign).

    Every completed point is appended to ``ledger`` as a ``"chaos"``
    record with dedup off (grid points share config digest + seed; the
    storm recipe on ``telemetry.reliability`` is what distinguishes
    them).  ``flight`` (a :class:`~repro.obs.flight.FlightConfig`)
    attaches a flight recorder to every point, with strike/repair
    annotations stamped on each timeline.  ``checkpoints`` (a
    :class:`~repro.experiments.sweep.CampaignCheckpoints`) makes every
    point checkpointed and resumable; a rerun with the same directory
    reloads finished points and resumes interrupted ones.
    """
    profile = profile or get_profile()
    if loads is None:
        loads = default_loads(profile.sweep_points)
    if transport is None:
        transport = default_transport(profile)
    out: list[ChaosSeries] = []
    for repair_cycles in repair_grid:
        for rate in fault_rates:
            storm = StormSpec(
                fault_rate=rate,
                repair_cycles=repair_cycles,
                storm_seed=storm_seed,
                transport=transport,
            )
            label = f"{network} chaos fr={rate:.2f}"
            if len(repair_grid) > 1:
                label += f" repair={repair_cycles}"
            collected: list[RunResult] = []
            series = run_sweep(
                partial(
                    _make_config, network, vcs=vcs, profile=profile, seed=seed,
                    k=k, n=n, algorithm=algorithm,
                ),
                loads,
                label,
                parallel=parallel,
                max_workers=max_workers,
                retries=retries,
                timeout=timeout,
                record_failures=record_failures,
                progress=progress,
                ledger=ledger,
                simulate_fn=partial(run_chaos_point, storm=storm, flight=flight),
                ledger_kind="chaos",
                ledger_dedup=False,
                on_result=collected.append,
                checkpoints=checkpoints,
            )
            out.append(
                ChaosSeries(storm=storm, series=series, results=tuple(collected))
            )
    return out


def degradation_rows(campaign: list[ChaosSeries]) -> list[dict]:
    """Flatten a campaign into fault-rate curve rows (one per series).

    The rows feed the CLI table and mirror what the scorecard
    reliability panel plots from the ledger.
    """
    return [
        {
            "fault_rate": cs.storm.fault_rate,
            "repair_cycles": cs.storm.repair_cycles,
            "goodput_fraction": cs.mean_goodput_fraction,
            "retransmit_overhead": cs.mean_retransmit_overhead,
            "dropped": cs.total_dropped,
            "given_up": cs.total_given_up,
            "points": len(cs.results),
            "failures": len(cs.series.failures),
        }
        for cs in campaign
    ]
