"""Batch permutation drains (paper §6: "executing a global permutation
pattern" is one of the post-saturation scenarios that motivates stable
throughput).

A drain experiment injects exactly one packet per communicating node at
cycle 0 — the whole permutation at once, i.e. operation far above
saturation — and measures the **makespan**: the cycle by which the last
tail is delivered.  This complements the steady-state CNF view: a pattern
with the same saturation bandwidth can still drain faster if its latency
tail is shorter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim.config import SimulationConfig
from ..sim.run import build_engine
from ..traffic.patterns import make_pattern


@dataclass(frozen=True)
class DrainResult:
    """Outcome of one batch drain."""

    config: SimulationConfig
    packets: int
    makespan_cycles: int
    avg_latency_cycles: float
    max_latency_cycles: int

    @property
    def throughput_flits_per_cycle(self) -> float:
        """Aggregate delivery rate over the drain."""
        return self.packets * self.config.packet_flits / self.makespan_cycles


def drain_permutation(config: SimulationConfig, max_cycles: int = 1_000_000) -> DrainResult:
    """Inject one packet per node under ``config.pattern`` and drain.

    The config's ``load`` is ignored (set to 0 — all traffic is the
    preloaded batch); its pattern must be a fixed permutation.  Warm-up
    is forced to 0 so every packet is measured.

    Raises:
        ConfigurationError: for non-permutation patterns.
    """
    pattern = make_pattern(config.pattern, config.num_nodes, **config.pattern_kwargs)
    if not pattern.is_permutation():
        raise ConfigurationError(
            f"drain_permutation needs a fixed permutation, got {config.pattern!r}"
        )
    cfg = SimulationConfig(
        network=config.network,
        k=config.k,
        n=config.n,
        algorithm=config.algorithm,
        vcs=config.vcs,
        packet_flits=config.packet_flits,
        capacity_flits_per_cycle=config.capacity_flits_per_cycle,
        pattern=config.pattern,
        pattern_kwargs=dict(config.pattern_kwargs),
        load=0.0,
        buffer_flits=config.buffer_flits,
        warmup_cycles=0,
        total_cycles=max_cycles,
        seed=config.seed,
        collect_latencies=True,
        watchdog_cycles=config.watchdog_cycles,
    )
    engine = build_engine(cfg)
    rng = random.Random(cfg.seed)
    packets = 0
    for src in range(cfg.num_nodes):
        dst = pattern.destination(src, rng)
        if dst != src:
            engine.preload_packet(src, dst)
            packets += 1
    if packets == 0:
        raise ConfigurationError(f"pattern {config.pattern!r} moves no packets")
    makespan = engine.run_until_drained(max_cycles)
    result = engine.result
    return DrainResult(
        config=cfg,
        packets=packets,
        makespan_cycles=makespan,
        avg_latency_cycles=result.latency_sum / result.delivered_packets,
        max_latency_cycles=result.latency_max,
    )
