"""Figure 5 — communication performance of the 4-ary 4-tree (paper §8).

Eight panels: accepted bandwidth and network latency vs offered bandwidth
for each of the four traffic patterns, with the adaptive routing algorithm
at one, two and four virtual channels.

Paper shape to reproduce:

* uniform — saturation at ≈36% (1 vc), ≈55% (2 vc), ≈72% (4 vc); stable
  post-saturation throughput in all cases;
* complement — congestion-free: ≈95% saturation for every variant, and
  *more* virtual channels give *worse* latency (link multiplexing
  stretches the tail);
* transpose — ≈33% / 60% / 78%;
* bit reversal — analogous to transpose.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..metrics.cnf import CNFResult
from ..profiles import Profile, get_profile
from ..sim.run import tree_config
from ..traffic.patterns import PAPER_PATTERNS
from .sweep import default_loads, run_sweep

#: virtual-channel variants evaluated by the paper
TREE_VC_VARIANTS = (1, 2, 4)


def fig5_loads(profile: Profile) -> list[float]:
    """The offered-load grid for this figure."""
    return default_loads(profile.sweep_points)


def fig5_experiment(
    pattern: str,
    profile: Profile | None = None,
    k: int = 4,
    n: int = 4,
    vc_variants: tuple[int, ...] = TREE_VC_VARIANTS,
    seed: int = 11,
    parallel: bool = False,
) -> CNFResult:
    """Run one Figure-5 panel pair (one traffic pattern, all VC variants).

    Returns a CNF result with one series per VC count.
    """
    if pattern not in PAPER_PATTERNS:
        raise ConfigurationError(
            f"figure 5 covers {PAPER_PATTERNS}, got {pattern!r} "
            f"(use run_sweep directly for extension patterns)"
        )
    profile = profile or get_profile()
    loads = fig5_loads(profile)
    series = []
    for vcs in vc_variants:
        series.append(
            run_sweep(
                lambda load, v=vcs: tree_config(
                    k=k,
                    n=n,
                    vcs=v,
                    pattern=pattern,
                    load=load,
                    seed=seed,
                    warmup_cycles=profile.warmup_cycles,
                    total_cycles=profile.total_cycles,
                ),
                loads,
                label=f"{vcs} vc",
                parallel=parallel,
            )
        )
    return CNFResult(title=f"4-ary 4-tree, {pattern} traffic", series=series)
