"""Crash-safe on-disk cache of completed simulation points.

Long sweep campaigns die for boring reasons — a power cut, an OOM kill,
a Ctrl-C — and the in-process memo in :mod:`repro.experiments.sweep`
dies with them.  A :class:`RunCache` persists every completed point as
one small JSON file so a restarted campaign resumes from the last
finished point instead of resimulating hours of work.

Crash safety comes from the classic atomic write-then-rename protocol:
each entry is fully written to a temporary file in the cache directory
and then :func:`os.replace`-d into its final name, so a reader (or a
restart) only ever sees complete entries — a crash mid-write leaves at
worst an orphaned ``*.tmp`` file, never a truncated entry.  Rename
atomicity also makes concurrent writers (parallel sweep workers sharing
one directory) safe: last writer wins with an identical payload.

Entries are keyed by the full run recipe (the same tuple as the
in-process memo) and verified on read, so a hash collision or a stale
file from an incompatible format version misses instead of misleading.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

from ..errors import AnalysisError
from ..metrics.io import run_result_from_dict, run_result_to_dict
from ..sim.results import RunResult

#: bump on breaking entry-format changes; mismatched entries are ignored.
#: v2 wraps the shared versioned run document of :mod:`repro.metrics.io`
#: (adding telemetry); v1 entries read as misses and are resimulated.
ENTRY_FORMAT = 2


def _key_json(key: tuple) -> str:
    """Canonical JSON text of a cache key (tuples become lists)."""
    return json.dumps(key, sort_keys=False)


class RunCache:
    """Directory-backed cache of :class:`RunResult` entries.

    Args:
        directory: cache location, created on first write.
    """

    def __init__(self, directory: str | pathlib.Path):
        self.directory = pathlib.Path(directory)

    def path_for(self, key: tuple) -> pathlib.Path:
        digest = hashlib.sha256(_key_json(key).encode()).hexdigest()[:32]
        return self.directory / f"{digest}.json"

    def get(self, key: tuple) -> RunResult | None:
        """Load the entry for ``key``, or None on miss/corruption/mismatch.

        Unreadable or stale entries behave as misses: the point is simply
        resimulated and the entry rewritten — a cache must never be able
        to abort a campaign.
        """
        path = self.path_for(key)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if doc.get("format") != ENTRY_FORMAT or doc.get("key") != json.loads(_key_json(key)):
            return None
        try:
            return run_result_from_dict(doc["run"])
        except (AnalysisError, KeyError, TypeError):
            return None

    def put(self, key: tuple, result: RunResult) -> pathlib.Path:
        """Persist one entry atomically (write to temp, then rename).

        The write runs under an ``fcntl.flock`` on the directory's lock
        file: rename atomicity already prevents torn entries, but the
        lock keeps concurrent workers from interleaving whole
        write+replace windows on a shared (e.g. network) filesystem
        where rename semantics are weaker.
        """
        from ..sim.checkpoint import file_lock

        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        doc = {
            "format": ENTRY_FORMAT,
            "key": json.loads(_key_json(key)),
            "run": run_result_to_dict(result),
        }
        # per-process temp name: concurrent workers never share a temp file
        tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp")
        with file_lock(self.directory / ".lock"):
            with open(tmp, "w") as fh:
                json.dump(doc, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.directory.glob("*.json"))
        except OSError:
            return 0

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed
