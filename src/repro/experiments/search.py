"""Adaptive saturation-point search.

The figure sweeps estimate saturation by interpolating a fixed load grid;
when a precise estimate of a single configuration's saturation point is
wanted, bisection over the offered load is far cheaper than refining the
whole grid.  The §6 criterion drives the search: a load is *saturated*
when accepted bandwidth falls more than ``tol`` below the measured
offered bandwidth.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..errors import AnalysisError
from ..sim.config import SimulationConfig
from .sweep import run_point


@dataclass(frozen=True)
class SaturationEstimate:
    """Bisection outcome."""

    load: float  # estimated saturation load (fraction of capacity)
    lo: float  # highest load observed unsaturated
    hi: float  # lowest load observed saturated (may equal upper bound)
    evaluations: int  # simulations spent

    @property
    def uncertainty(self) -> float:
        return self.hi - self.lo


def is_saturated(result, tol: float = 0.05) -> bool:
    """§6 criterion with relative tolerance against sampling noise."""
    offered = result.offered_flits_per_cycle
    if offered <= 0:
        return False
    return result.accepted_flits_per_cycle < (1.0 - tol) * offered


def find_saturation(
    config_factory: Callable[[float], SimulationConfig],
    lo: float = 0.05,
    hi: float = 1.0,
    tol: float = 0.05,
    resolution: float = 0.02,
    max_evaluations: int = 12,
) -> SaturationEstimate:
    """Bisect the offered load for the saturation point.

    Args:
        config_factory: load -> run recipe (as for sweeps).
        lo, hi: initial bracket in fractions of capacity.
        tol: §6 saturation tolerance.
        resolution: stop when the bracket is narrower than this.
        max_evaluations: hard cap on simulations.

    Returns the bracket midpoint; when even ``hi`` is unsaturated the
    estimate is ``hi`` itself with a degenerate bracket (the network
    saturates at or beyond the swept range), and when ``lo`` is already
    saturated the estimate is ``lo``.

    Raises:
        AnalysisError: for an invalid bracket.
    """
    if not 0 < lo < hi:
        raise AnalysisError(f"invalid bracket [{lo}, {hi}]")
    evaluations = 0

    def saturated(load: float) -> bool:
        nonlocal evaluations
        evaluations += 1
        return is_saturated(run_point(config_factory(load)), tol)

    if saturated(lo):
        return SaturationEstimate(load=lo, lo=lo, hi=lo, evaluations=evaluations)
    if not saturated(hi):
        return SaturationEstimate(load=hi, lo=hi, hi=hi, evaluations=evaluations)
    while hi - lo > resolution and evaluations < max_evaluations:
        mid = (lo + hi) / 2
        if saturated(mid):
            hi = mid
        else:
            lo = mid
    return SaturationEstimate(
        load=(lo + hi) / 2, lo=lo, hi=hi, evaluations=evaluations
    )
