"""Figure 7 — the two networks compared in absolute units (paper §10).

The raw CNF data of Figures 5 and 6 is "filtered to take into account the
router complexity and the wire delay": every configuration's cycles are
scaled by its own clock period (Tables 1–2) and bandwidth fractions become
aggregate bits/ns using each network's flit width and capacity.

Paper shape to reproduce (saturation throughput, bits/ns):

* uniform — cube wins: Duato ≈440, deterministic ≈350, tree 4vc ≈280
  (best tree), tree 1vc ≈150; cube latency ≈0.5 µs pre-saturation, about
  half the tree's;
* complement — tree wins: all tree variants ≈400, best cube
  (deterministic) ≈280 (§10 text; the conclusion quotes ≈250);
* transpose / bit reversal — two classes: {cube Duato, tree 2vc, tree 4vc}
  at ≈250–300 and {cube deterministic, tree 1vc} at ≈100–150.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.cnf import AbsolutePoint, absolute_series, saturation_bits_per_ns
from ..metrics.series import LoadSweepSeries
from ..profiles import Profile, get_profile
from ..timing.chien import table1_cube_delays, table2_tree_delays
from ..timing.normalization import NetworkScaling, cube_scaling, tree_scaling
from .fig5 import fig5_experiment
from .fig6 import fig6_experiment


@dataclass
class Fig7Series:
    """One Figure-7 curve: raw CNF sweep plus its absolute-unit rendering."""

    label: str
    sweep: LoadSweepSeries
    scaling: NetworkScaling
    points: list[AbsolutePoint]

    def saturation_bits_per_ns(self, tol: float = 0.05) -> float:
        return saturation_bits_per_ns(self.sweep, self.scaling, tol)


@dataclass
class Fig7Result:
    """One Figure-7 panel pair: all five configurations on one pattern."""

    title: str
    series: list[Fig7Series]

    def saturation_summary(self, tol: float = 0.05) -> dict[str, float]:
        """Label -> saturation throughput in bits/ns (the §10 headlines)."""
        return {s.label: s.saturation_bits_per_ns(tol) for s in self.series}


def fig7_experiment(
    pattern: str,
    profile: Profile | None = None,
    seed_tree: int = 11,
    seed_cube: int = 13,
    parallel: bool = False,
) -> Fig7Result:
    """Run (or reuse from cache) both networks and rescale to bits/ns.

    The tree and cube sweeps use the same seeds as the Figure 5/6 drivers,
    so when those experiments already ran in this process the raw
    simulations are reused from the sweep cache.
    """
    profile = profile or get_profile()
    tree_cnf = fig5_experiment(pattern, profile, seed=seed_tree, parallel=parallel)
    cube_cnf = fig6_experiment(pattern, profile, seed=seed_cube, parallel=parallel)
    tree_clocks = table2_tree_delays()
    cube_clocks = table1_cube_delays()
    out: list[Fig7Series] = []
    for sweep in cube_cnf.series:
        key = "deterministic" if sweep.algorithm == "dor" else "duato"
        scaling = cube_scaling(16, 2, clock_ns=cube_clocks[key].clock_ns)
        out.append(
            Fig7Series(
                label=f"cube, {sweep.label}",
                sweep=sweep,
                scaling=scaling,
                points=absolute_series(sweep, scaling),
            )
        )
    for sweep in tree_cnf.series:
        scaling = tree_scaling(4, 4, clock_ns=tree_clocks[sweep.vcs].clock_ns)
        out.append(
            Fig7Series(
                label=f"fat tree, {sweep.label}",
                sweep=sweep,
                scaling=scaling,
                points=absolute_series(sweep, scaling),
            )
        )
    return Fig7Result(title=f"normalized comparison, {pattern} traffic", series=out)
