"""Closed-form topological metrics used in the paper's analysis.

These formulas back the normalization arguments of §5 (bisection bandwidth,
theoretical capacity) and the distance analysis of §8 (eq. 5).  Each has an
exact brute-force counterpart in the test-suite.
"""

from __future__ import annotations

from ..errors import TopologyError
from .base import Topology
from .cube import KAryNCube
from .tree import KAryNTree

# -- k-ary n-tree -----------------------------------------------------------


def tree_average_distance_uniform(k: int, n: int, include_self: bool = False) -> float:
    """Average node-to-node distance on a k-ary n-tree under uniform traffic.

    Distance is in channel hops including the two node links
    (:meth:`KAryNTree.min_distance`).  From any source, the number of
    destinations whose NCA is at level ``l`` is ``(k-1)·k**l``, at distance
    ``2l + 2``.

    Args:
        include_self: average over all ``k**n`` destinations (distance 0
            for the source itself) instead of the ``k**n - 1`` others.
    """
    _check(k, n)
    total = sum((2 * level + 2) * (k - 1) * k**level for level in range(n))
    denom = k**n if include_self else k**n - 1
    return total / denom


def tree_average_distance_reversal(k: int, n: int) -> float:
    """Paper eq. 5: average distance under bit-reversal/transpose traffic.

    Both permutations leave ``k**(n/2)`` nodes in place (distance 0) and
    put ``(k-1)·k**(n/2+i-1)`` nodes at distance ``n + 2i`` for
    ``i = 1..n/2``, giving

        d_m = (k-1) / k**(n/2) · Σ_{i=1}^{n/2} (n + 2i) · k**(i-1)

    which evaluates to 7.125 for the paper's 4-ary 4-tree — "very close to
    the network diameter" (2n = 8).

    Raises:
        TopologyError: when n is odd (the paper assumes n even).
    """
    _check(k, n)
    if n % 2:
        raise TopologyError(f"eq. 5 requires even n, got n={n}")
    half = n // 2
    return (k - 1) / k**half * sum((n + 2 * i) * k ** (i - 1) for i in range(1, half + 1))


def tree_diameter(k: int, n: int) -> int:
    """Maximal node-to-node distance: up to a root and back down, 2n hops."""
    _check(k, n)
    return 2 * n


def tree_num_channels(k: int, n: int) -> int:
    """Bidirectional channels including node links: ``n · k**n``.

    Each of the n levels contributes ``k**n`` channels below it (the node
    links being level 0's); the paper uses this to note both networks have
    ``n·k**n`` links and the quaternary fat-tree twice as many as the
    bidimensional cube of equal size.
    """
    _check(k, n)
    return n * k**n


# -- k-ary n-cube -----------------------------------------------------------


def cube_average_distance_uniform(k: int, n: int, include_self: bool = False) -> float:
    """Average router-hop distance on a k-ary n-cube under uniform traffic.

    Per dimension the average ring distance over all k offsets is ``k/4``
    for even k and ``(k²-1)/(4k)`` for odd k; dimensions are independent.
    """
    _check(k, n)
    per_dim = k / 4 if k % 2 == 0 else (k * k - 1) / (4 * k)
    mean = n * per_dim  # over all ordered pairs, self pairs included
    if include_self:
        return mean
    big_n = k**n
    return mean * big_n / (big_n - 1)  # self pairs contribute 0 distance


def cube_diameter(k: int, n: int) -> int:
    """Maximal distance: ``n · floor(k/2)`` router hops."""
    _check(k, n)
    return n * (k // 2)


def cube_num_channels(k: int, n: int) -> int:
    """Bidirectional router-to-router channels: ``n·k**n`` (``n·k**n / 2``
    for the hypercube, where the ± ports coincide)."""
    _check(k, n)
    if k == 2:
        return n * k**n // 2
    return n * k**n


def cube_bisection_channels(k: int, n: int) -> int:
    """Unidirectional channels crossing the bisection in ONE direction.

    For even k, cutting one dimension in half severs each of the
    ``k**(n-1)`` rings at two points (the middle and the wrap-around), so
    ``2·k**(n-1)`` channels cross left-to-right (and as many right-to-left).

    Raises:
        TopologyError: for odd k (no balanced bisection).
    """
    _check(k, n)
    if k % 2:
        raise TopologyError(f"bisection defined for even k, got k={k}")
    if k == 2:
        # hypercube: the two "cut points" of a 2-ring are one collapsed
        # channel (see KAryNCube.switch_links)
        return k ** (n - 1)
    return 2 * k ** (n - 1)


def cube_capacity_flits_per_cycle(k: int, n: int) -> float:
    """Theoretical per-node injection limit under uniform traffic (§5).

    Half of uniform traffic crosses the bisection, and by symmetry half of
    that flows each way, so per-node load λ satisfies
    ``N·λ/4 <= cube_bisection_channels`` — i.e. λ_max = ``8/k`` flits per
    cycle per node (0.5 for the 16-ary 2-cube).  This is the paper's
    "twice the bisection bandwidth" upper bound.
    """
    return 4 * cube_bisection_channels(k, n) / k**n


def cube_effective_capacity(k: int, n: int) -> float:
    """Bisection capacity capped by the node interface (1 flit/cycle).

    High-dimensional, low-radix cubes have bisection capacity above what a
    single injection/ejection channel can source or sink; the effective
    per-node limit is the smaller of the two.  For the paper's 16-ary
    2-cube the bisection (0.5) is the binding constraint, so this equals
    :func:`cube_capacity_flits_per_cycle` there.
    """
    return min(cube_capacity_flits_per_cycle(k, n), 1.0)


def tree_capacity_flits_per_cycle(k: int, n: int) -> float:
    """Theoretical per-node injection limit for the tree (§5).

    k-ary n-trees are not bisection-limited; the bound is simply the
    unidirectional bandwidth of the node-to-switch link: 1 flit/cycle.
    """
    _check(k, n)
    return 1.0


# -- exact enumerators (shared by tests and reports) -------------------------


def exact_average_distance(
    topo: Topology, mapping=None, include_self: bool = False
) -> float:
    """Brute-force average distance, optionally under a permutation.

    Args:
        topo: any :class:`Topology`.
        mapping: callable ``src -> dst``; ``None`` means uniform (all
            ordered pairs).
        include_self: count zero-distance pairs in the average.
    """
    total = 0
    count = 0
    if mapping is None:
        for s in range(topo.num_nodes):
            for d in range(topo.num_nodes):
                if s == d and not include_self:
                    continue
                total += topo.min_distance(s, d)
                count += 1
    else:
        for s in range(topo.num_nodes):
            d = mapping(s)
            if s == d and not include_self:
                continue
            total += topo.min_distance(s, d)
            count += 1
    if count == 0:
        raise TopologyError("no pairs to average over")
    return total / count


def capacity_flits_per_cycle(topo: Topology) -> float:
    """Per-node theoretical capacity for any supported topology (§5)."""
    if isinstance(topo, KAryNTree):
        return tree_capacity_flits_per_cycle(topo.k, topo.n)
    if isinstance(topo, KAryNCube):
        return cube_capacity_flits_per_cycle(topo.k, topo.n)
    raise TopologyError(f"no capacity model for {type(topo).__name__}")


def _check(k: int, n: int) -> None:
    if k < 2 or n < 1:
        raise TopologyError(f"invalid parameters k={k}, n={n}")
