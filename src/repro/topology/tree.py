"""k-ary n-trees (paper §2).

A k-ary n-tree has ``k**n`` processing nodes at the leaves and ``n`` levels
of ``k**(n-1)`` switches, each with ``2k`` ports (k "down" towards the
leaves, k "up" towards the roots).  Internally the switches are wired like a
k-ary butterfly, so every leaf can reach every root and minimal routing is
the classic *ascend to a nearest common ancestor, then descend*:

* the ascending phase is adaptive — any of the k up ports is on a minimal
  path until an ancestor of the destination is reached;
* the descending phase is deterministic — exactly one down port leads
  towards the destination.

Switch identity
---------------
Level 0 is adjacent to the processors; level ``n-1`` holds the roots (their
up ports are the paper's "external connections" and carry no traffic here).
A switch at level ``l`` is identified by ``n-1`` base-k digits split as
``(a, b)``:

* ``a`` — the top ``n-1-l`` digits: which subtree the switch belongs to
  (level-l switches serve the ``k**(l+1)`` nodes whose node label starts
  with ``a``);
* ``b`` — ``l`` digits distinguishing the ``k**l`` switches of that subtree
  at this level (the butterfly wiring).

Because ``a`` is a digit *prefix* of the node label, the set of nodes below
a switch is the contiguous range ``[a·k^(l+1), (a+1)·k^(l+1))``, which makes
the ancestor test used by routing a pair of integer comparisons.

Wiring (derived once and verified structurally in the test-suite):

* down port ``d`` of switch ``(l, a, b)`` with ``l > 0`` connects to the up
  port ``b[0]`` of switch ``(l-1, a+(d,), b[1:])``;
* down port ``d`` of a level-0 switch connects to node ``a·k + d``;
* up port ``u`` of switch ``(l, a, b)`` with ``l < n-1`` connects to the
  down port ``a[-1]`` of switch ``(l+1, a[:-1], (u,)+b)``.
"""

from __future__ import annotations

from ..errors import TopologyError
from ..traffic.address import node_to_digits
from .base import NodeLink, SwitchLink, Topology


class KAryNTree(Topology):
    """A k-ary n-tree with ``k**n`` nodes and ``n·k**(n-1)`` switches.

    Args:
        k: switch arity per side (the tree is "k-ary"): each switch has k
            down and k up ports.
        n: number of switch levels.
    """

    def __init__(self, k: int, n: int):
        if k < 2:
            raise TopologyError(f"k-ary n-tree needs k >= 2, got k={k}")
        if n < 1:
            raise TopologyError(f"k-ary n-tree needs n >= 1, got n={n}")
        self.k = k
        self.n = n
        self.num_nodes = k**n
        self.switches_per_level = k ** (n - 1)
        self.num_switches = n * self.switches_per_level
        # Precomputed per-switch routing data, indexed by switch id:
        #   level, subtree range [lo, hi), k**level (descend digit weight)
        self._level = [0] * self.num_switches
        self._range_lo = [0] * self.num_switches
        self._range_hi = [0] * self.num_switches
        for s in range(self.num_switches):
            level = s // self.switches_per_level
            w = s % self.switches_per_level
            # a = top (n-1-level) digits of w; w = a * k**level + b
            a = w // (k**level)
            span = k ** (level + 1)
            self._level[s] = level
            self._range_lo[s] = a * span
            self._range_hi[s] = a * span + span

    # -- identity helpers ---------------------------------------------------

    def switch_id(self, level: int, a: tuple[int, ...], b: tuple[int, ...]) -> int:
        """Switch id from its (level, subtree digits, intra digits) identity."""
        if not 0 <= level < self.n:
            raise TopologyError(f"level {level} out of range [0, {self.n})")
        if len(a) != self.n - 1 - level or len(b) != level:
            raise TopologyError(
                f"level-{level} switch needs |a|={self.n - 1 - level}, |b|={level}; "
                f"got |a|={len(a)}, |b|={len(b)}"
            )
        w = 0
        for d in a + b:
            if not 0 <= d < self.k:
                raise TopologyError(f"digit {d} out of range [0, {self.k})")
            w = w * self.k + d
        return level * self.switches_per_level + w

    def switch_identity(self, s: int) -> tuple[int, tuple[int, ...], tuple[int, ...]]:
        """Inverse of :meth:`switch_id`: ``(level, a, b)`` for a switch id."""
        if not 0 <= s < self.num_switches:
            raise TopologyError(f"switch {s} out of range [0, {self.num_switches})")
        level = s // self.switches_per_level
        w = s % self.switches_per_level
        if self.n == 1:
            return level, (), ()
        digits = node_to_digits(w, self.k, self.n - 1)
        split = self.n - 1 - level
        return level, digits[:split], digits[split:]

    def level_of(self, s: int) -> int:
        """Switch level: 0 adjacent to nodes, ``n-1`` at the roots."""
        return self._level[s]

    def covered_range(self, s: int) -> tuple[int, int]:
        """Half-open range ``[lo, hi)`` of node ids below switch ``s``."""
        return self._range_lo[s], self._range_hi[s]

    def is_ancestor(self, s: int, node: int) -> bool:
        """True when ``node`` lies in the subtree below switch ``s``."""
        self._check_node(node)
        return self._range_lo[s] <= node < self._range_hi[s]

    def leaf_switch(self, node: int) -> int:
        """The level-0 switch that node attaches to."""
        self._check_node(node)
        return node // self.k

    # -- ports --------------------------------------------------------------
    # Ports 0..k-1 are down ports, k..2k-1 are up ports.

    def ports_per_switch(self) -> int:
        return 2 * self.k

    def down_ports(self) -> range:
        return range(self.k)

    def up_ports(self) -> range:
        return range(self.k, 2 * self.k)

    def down_port_towards(self, s: int, node: int) -> int:
        """Down port of switch ``s`` on the (unique) descending path to ``node``.

        Raises:
            TopologyError: if ``s`` is not an ancestor of ``node``.
        """
        if not self.is_ancestor(s, node):
            raise TopologyError(f"switch {s} is not an ancestor of node {node}")
        return (node // self.k ** self._level[s]) % self.k

    # -- wiring -------------------------------------------------------------

    def switch_links(self) -> list[SwitchLink]:
        """Inter-level channels: down port d of every switch above level 0."""
        links = []
        k = self.k
        for s in range(self.num_switches):
            level, a, b = self.switch_identity(s)
            if level == 0:
                continue
            for d in range(k):
                child = self.switch_id(level - 1, a + (d,), b[1:])
                child_up_port = k + b[0]
                links.append(SwitchLink(s, d, child, child_up_port))
        return links

    def node_links(self) -> list[NodeLink]:
        """Node-to-leaf-switch channels: node m on down port ``m % k``."""
        return [
            NodeLink(node, self.leaf_switch(node), node % self.k)
            for node in range(self.num_nodes)
        ]

    # -- distances ----------------------------------------------------------

    def nca_level(self, src: int, dst: int) -> int:
        """Level of the nearest common ancestors of two distinct nodes.

        All NCAs of a source/destination pair sit at the same level: the
        smallest ``l`` with ``src // k**(l+1) == dst // k**(l+1)``.
        """
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            raise TopologyError("nca_level undefined for src == dst")
        span = self.k
        for level in range(self.n):
            if src // span == dst // span:
                return level
            span *= self.k
        raise TopologyError("unreachable: roots cover all nodes")  # pragma: no cover

    def min_distance(self, src: int, dst: int) -> int:
        """Channel hops src→dst: 1 (node→leaf) + l ascending + l descending
        + 1 (leaf→node) = ``2·nca_level + 2``, and 0 when src == dst.

        This is the distance measure of the paper's eq. 5 (d_m = 7.125 for
        the 4-ary 4-tree under transpose/bit-reversal traffic).
        """
        if src == dst:
            self._check_node(src)
            return 0
        return 2 * self.nca_level(src, dst) + 2

    # -- congestion-free permutations (paper §8.1, Heller) -------------------

    def is_congestion_free(self, perm: dict[int, int] | list[int]) -> bool:
        """Membership in the paper's class of *congestion-free* permutations.

        §8.1 (after Heller): "The complement traffic belongs to a wide
        class of permutations that map a k-ary n-tree into itself.  These
        permutations do not generate any congestion on the descending
        phase."  The characterizing structure is **subtree preservation**:
        at every level, each subtree's image under the permutation lies
        within a *single* subtree of the same size.  Such permutations are
        self-coordinating — the packets descending into any subtree all
        ascend through the one source subtree, whose switches can spread
        them over distinct channels with purely local (greedy) choices, so
        no down channel is ever shared regardless of the flow-control
        strategy.  This is why the paper sees the complement pattern reach
        ~95% of capacity even with one virtual channel.

        Note this is an *online* property of the pattern, not offline
        routability: k-ary n-trees are rearrangeable (an unfolded tree is
        a Beneš network), so any permutation admits a conflict-free
        routing with global coordination; bit reversal and transpose fail
        this check and indeed congest under the paper's (local, adaptive)
        algorithm.  Fixed points (``d == s``) inject nothing and are
        ignored; partial permutations (dicts) are supported.
        """
        if isinstance(perm, dict):
            items = list(perm.items())
        else:
            items = list(enumerate(perm))
        for s, d in items:
            self._check_node(s)
            self._check_node(d)
        pairs = [(s, d) for s, d in items if s != d]
        for level in range(self.n - 1):
            span = self.k ** (level + 1)
            image: dict[int, int] = {}
            load: dict[int, int] = {}
            for s, d in pairs:
                src_tree = s // span
                dst_tree = d // span
                # (a) subtree preservation
                if image.setdefault(src_tree, dst_tree) != dst_tree:
                    return False
                # (b) capacity: a subtree is entered through `span` down
                # channels; more descending packets than that must share
                # one (only reachable by non-bijective mappings)
                if src_tree != dst_tree:
                    load[dst_tree] = load.get(dst_tree, 0) + 1
                    if load[dst_tree] > span:
                        return False
        return True
