"""k-ary n-cubes (paper §3).

A k-ary n-cube arranges ``k**n`` nodes on an n-dimensional grid with k nodes
per dimension and wrap-around connections (a torus).  The binary hypercube
is the ``k = 2`` special case and the 2-D torus the ``n = 2`` special case;
the paper's evaluation network is the 16-ary 2-cube.

It is a *direct* topology: every node owns one router (switch), so there
are ``k**n`` routing chips and the node interface is a dedicated
injection/ejection port on the local router.

Coordinates follow the paper's labeling: node id = base-k number
``p0 p1 ... p_{n-1}`` with ``p0`` most significant; dimension ``i`` moves
digit ``p_i``.  Router ports: port ``2i`` is the "+" direction of dimension
i (digit + 1 mod k) and port ``2i + 1`` the "−" direction.
"""

from __future__ import annotations

from ..errors import TopologyError
from ..traffic.address import digits_to_node, node_to_digits
from .base import NodeLink, SwitchLink, Topology


class KAryNCube(Topology):
    """A k-ary n-cube (torus) with ``k**n`` nodes and one router per node.

    Args:
        k: radix — nodes per dimension (``>= 2``).
        n: dimension (``>= 1``).  ``k == 2`` gives the binary hypercube
            (note that both the +/− ports then reach the same neighbor over
            two distinct physical channels; we collapse them to one channel
            per dimension, as real hypercubes do).
    """

    def __init__(self, k: int, n: int):
        if k < 2:
            raise TopologyError(f"k-ary n-cube needs k >= 2, got k={k}")
        if n < 1:
            raise TopologyError(f"k-ary n-cube needs n >= 1, got n={n}")
        self.k = k
        self.n = n
        self.num_nodes = k**n
        self.num_switches = self.num_nodes
        # Digit weight of dimension i: node id = sum(p_i * weight[i]).
        self._weight = [k ** (n - 1 - i) for i in range(n)]

    # -- coordinates ---------------------------------------------------------

    def coordinates(self, node: int) -> tuple[int, ...]:
        """Digits ``(p0, ..., p_{n-1})`` of a node id, p0 most significant."""
        return node_to_digits(node, self.k, self.n)

    def node_at(self, coords: tuple[int, ...] | list[int]) -> int:
        """Inverse of :meth:`coordinates`."""
        if len(coords) != self.n:
            raise TopologyError(f"expected {self.n} coordinates, got {len(coords)}")
        return digits_to_node(tuple(coords), self.k)

    def digit(self, node: int, dim: int) -> int:
        """Coordinate of ``node`` in dimension ``dim`` without full decode."""
        self._check_node(node)
        self._check_dim(dim)
        return (node // self._weight[dim]) % self.k

    def neighbor(self, node: int, dim: int, direction: int) -> int:
        """Neighbor of ``node`` one hop along ``dim``.

        Args:
            direction: ``+1`` (digit + 1 mod k) or ``-1``.
        """
        self._check_node(node)
        self._check_dim(dim)
        if direction not in (1, -1):
            raise TopologyError(f"direction must be +1 or -1, got {direction}")
        w = self._weight[dim]
        p = (node // w) % self.k
        q = (p + direction) % self.k
        return node + (q - p) * w

    # -- ports ---------------------------------------------------------------

    def ports_per_switch(self) -> int:
        """Link ports only; the engine adds the node-interface port itself."""
        if self.k == 2:
            return self.n  # one channel per dimension in a hypercube
        return 2 * self.n

    def port_for(self, dim: int, direction: int) -> int:
        """Router port for moving along ``dim`` in ``direction`` (+1/−1)."""
        self._check_dim(dim)
        if self.k == 2:
            return dim
        return 2 * dim + (0 if direction == 1 else 1)

    # -- wiring ----------------------------------------------------------------

    def switch_links(self) -> list[SwitchLink]:
        """One channel per node per dimension in the + direction.

        The + port of node r in dimension i meets the − port of its +
        neighbor (for k=2 the single per-dimension ports meet each other),
        enumerating every physical channel exactly once; for k=2 that is
        N·n/2 channels, otherwise N·n.
        """
        links = []
        seen = set()
        for r in range(self.num_nodes):
            for dim in range(self.n):
                peer = self.neighbor(r, dim, +1)
                if self.k == 2:
                    key = (min(r, peer), max(r, peer), dim)
                    if key in seen:
                        continue
                    seen.add(key)
                    links.append(SwitchLink(r, self.port_for(dim, +1), peer, self.port_for(dim, +1)))
                else:
                    links.append(
                        SwitchLink(r, self.port_for(dim, +1), peer, self.port_for(dim, -1))
                    )
        return links

    def node_links(self) -> list[NodeLink]:
        """Each node attaches to its own router on the node-interface port.

        The port index is ``ports_per_switch()`` — one past the link ports;
        the engine reserves it for injection/ejection.
        """
        port = self.ports_per_switch()
        return [NodeLink(r, r, port) for r in range(self.num_nodes)]

    # -- distances and routing geometry ---------------------------------------

    def dimension_offset(self, src: int, dst: int, dim: int) -> int:
        """Signed minimal offset in ``dim``: positive means the + direction.

        For an exact half-ring tie (``k`` even, offset ``k/2``) the positive
        direction is returned; adaptive algorithms treat the tie specially
        via :meth:`minimal_directions`.
        """
        delta = (self.digit(dst, dim) - self.digit(src, dim)) % self.k
        if delta == 0:
            return 0
        if delta * 2 < self.k or delta * 2 == self.k:
            return delta
        return delta - self.k

    def minimal_directions(self, src: int, dst: int, dim: int) -> tuple[int, ...]:
        """All minimal directions (+1/−1) in ``dim``; empty when aligned.

        Both directions are minimal exactly when the offset is k/2.
        """
        delta = (self.digit(dst, dim) - self.digit(src, dim)) % self.k
        if delta == 0:
            return ()
        if delta * 2 == self.k:
            return (1, -1)
        return (1,) if delta * 2 < self.k else (-1,)

    def crosses_wraparound(self, src: int, dst: int, dim: int, direction: int) -> bool:
        """Whether the minimal path src→dst along ``dim`` in ``direction``
        crosses that dimension's wrap-around channel (between digit k-1 and 0).
        """
        a = self.digit(src, dim)
        b = self.digit(dst, dim)
        if a == b:
            return False
        if direction == 1:
            return b < a  # walked past k-1 -> 0
        return b > a  # walked past 0 -> k-1

    def min_distance(self, src: int, dst: int) -> int:
        """Minimal hop count between nodes (router-to-router channels only).

        The node-interface channels are not counted: on a direct topology
        they are part of every path and the paper's distance figures for
        cubes are router hops.
        """
        self._check_node(src)
        self._check_node(dst)
        total = 0
        for dim in range(self.n):
            delta = (self.digit(dst, dim) - self.digit(src, dim)) % self.k
            total += min(delta, self.k - delta)
        return total

    def _check_dim(self, dim: int) -> None:
        if not 0 <= dim < self.n:
            raise TopologyError(f"dimension {dim} out of range [0, {self.n})")
