"""Interconnection network topologies (paper §2–§3).

* :class:`~repro.topology.tree.KAryNTree` — the quaternary-fat-tree family
  (k-ary n-trees) with butterfly-structured internal switches.
* :class:`~repro.topology.cube.KAryNCube` — k-ary n-cubes (tori), including
  the binary hypercube (k=2) and the 2-D torus (n=2) special cases.
* :mod:`~repro.topology.properties` — closed-form topological metrics used
  in the paper's analysis (bisection, average distances, eq. 5).
"""

from .base import NodeLink, SwitchLink, Topology
from .cube import KAryNCube
from .properties import (
    cube_average_distance_uniform,
    cube_bisection_channels,
    tree_average_distance_reversal,
    tree_average_distance_uniform,
)
from .tree import KAryNTree

__all__ = [
    "NodeLink",
    "SwitchLink",
    "Topology",
    "KAryNCube",
    "KAryNTree",
    "cube_average_distance_uniform",
    "cube_bisection_channels",
    "tree_average_distance_reversal",
    "tree_average_distance_uniform",
]
