"""Topology abstraction shared by the simulation engine and analyses.

A topology is a bipartite structure of *processing nodes* and *switches*
(the paper's routing chips) connected by bidirectional channels:

* :class:`SwitchLink` — a channel between two switch ports;
* :class:`NodeLink` — a channel between a node and a switch port (the
  injection/ejection interface).

Switches expose numbered ports; the meaning of a port number (up/down for
trees, ±dimension for cubes) is defined by the concrete topology and
consumed by the matching routing algorithm.  The engine itself is
topology-agnostic: it only needs the port-level wiring lists.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import TopologyError


@dataclass(frozen=True)
class SwitchLink:
    """Bidirectional channel between port ``port_a`` of switch ``switch_a``
    and port ``port_b`` of switch ``switch_b``."""

    switch_a: int
    port_a: int
    switch_b: int
    port_b: int


@dataclass(frozen=True)
class NodeLink:
    """Bidirectional channel between processing node ``node`` and port
    ``port`` of switch ``switch``."""

    node: int
    switch: int
    port: int


class Topology(ABC):
    """Common interface of the network families under study."""

    #: number of processing nodes N
    num_nodes: int
    #: number of switches (routing chips)
    num_switches: int

    @abstractmethod
    def ports_per_switch(self) -> int:
        """Number of ports on every switch, *excluding* the node interface
        on direct topologies (added separately by the engine)."""

    @abstractmethod
    def switch_links(self) -> list[SwitchLink]:
        """All switch-to-switch channels, each listed once."""

    @abstractmethod
    def node_links(self) -> list[NodeLink]:
        """All node-to-switch channels, each listed once."""

    @abstractmethod
    def min_distance(self, src: int, dst: int) -> int:
        """Minimal path length between nodes in channel hops.

        Counts every channel traversed, including the two node-to-switch
        channels on indirect topologies; distance 0 means ``src == dst``.
        """

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{type(self).__name__}: {self.num_nodes} nodes, "
            f"{self.num_switches} switches, "
            f"{len(self.switch_links())} internal channels"
        )

    def to_networkx(self):
        """Export the wiring as an undirected ``networkx`` graph.

        Nodes are labeled ``("node", i)`` and ``("switch", s)``.  Used by
        the test-suite to cross-check distances and connectivity against an
        independent shortest-path implementation; requires networkx, which
        is an optional (dev) dependency.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(("node", i) for i in range(self.num_nodes))
        g.add_nodes_from(("switch", s) for s in range(self.num_switches))
        for link in self.switch_links():
            g.add_edge(("switch", link.switch_a), ("switch", link.switch_b))
        for nl in self.node_links():
            g.add_edge(("node", nl.node), ("switch", nl.switch))
        return g

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(f"node {node} out of range [0, {self.num_nodes})")
