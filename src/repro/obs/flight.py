"""Cross-layer flight recorder: bounded per-interval time series.

Every existing probe reports end-of-run aggregates; the flight recorder
answers *trajectory* questions ("when did goodput collapse, and what was
the control plane doing at that moment?") by sampling one aligned
timeline across all four layers at a fixed cycle interval:

* **engine** — injected/delivered/dropped flit rates, packets generated,
  in-flight packets, source-queue backlog and the offered-to-network
  rate derived from it;
* **links** — aggregate output-lane occupancy and the blocked fraction
  of the direction population, plus the top-N hottest physical links by
  flits moved in the interval;
* **transport** (when a :class:`~repro.traffic.transport.ReliableTransport`
  is installed) — outstanding messages, retransmission and give-up
  rates, and a smoothed ACK round-trip estimate;
* **control plane** (when the congestion loop is closed) — AIMD window
  mean/p50/min, hold-queue depth and the ECN mark rate.

Storage is strictly bounded: when the sample buffer reaches
``max_intervals`` rows, adjacent pairs are coalesced (rates summed,
gauges keeping the later value, hot-link tallies merged and re-ranked)
and the effective stride doubles — so a 2M-cycle run costs the same
memory as a 100k-cycle one, O(max_intervals) always.

The recorder stamps **annotations** on the same timeline: fault
strike/repair (from chaos schedules), the first ECN mark and first
window decrease, a deadlock precursor (sustained zero-progress with
packets in flight) and **collapse onset** — detected online as the
delivered rate diverging from the offered rate for
``collapse_intervals`` consecutive warm intervals.  Offered load is
reconstructed as injected flits plus source-queue backlog growth, which
is exactly what distinguishes open-loop collapse (retransmissions pile
into the source queues) from closed-loop degradation (held messages
wait in the transport's window gate and are *not* offered).

The serialized document is columnar and byte-deterministic; it rides on
``telemetry.flight`` into run documents and ledger records.  A live
``on_sample`` callback and an optional JSONL event stream (``events=``)
feed the CLI's ``--watch`` mode and external consumers.
"""

from __future__ import annotations

import dataclasses
import io
import json
import pathlib
from dataclasses import dataclass

from ..errors import ConfigurationError
from .probe import Probe

#: version stamp of the flight document schema
FLIGHT_FORMAT_VERSION = 1

#: per-row counters that accumulate over the interval (summed when rows
#: are coalesced)
_RATE_KEYS = ("span", "generated", "injected", "delivered", "dropped",
              "offered", "blocked", "retx", "gave_up", "marks")

#: engine-layer columns, always present
_ENGINE_KEYS = ("cycle", "span", "generated", "injected", "delivered",
                "dropped", "offered", "backlog", "in_flight", "occupancy",
                "blocked")

#: transport-layer columns, present when a reliable transport is installed
_TRANSPORT_KEYS = ("outstanding", "retx", "gave_up", "rtt")

#: control-plane columns, present when the congestion loop is closed
_CONTROL_KEYS = ("held", "marks", "cwnd_mean", "cwnd_p50", "cwnd_min")

#: annotation cap: timelines are for humans, not event logs
_MAX_ANNOTATIONS = 64


@dataclass(frozen=True)
class FlightConfig:
    """Tuning knobs of the flight recorder.

    Attributes:
        interval_cycles: cycles per sample; the default matches the
            congestion marker's window (``DEFAULT_CONTROL``) so mark and
            window-decrease annotations land on aligned boundaries.
        max_intervals: sample-buffer cardinality bound; on overflow
            adjacent rows are coalesced and the stride doubles.
        top_links: hottest physical links recorded per interval.
        collapse_ratio: delivered/offered threshold below which an
            interval counts toward collapse onset.  0.7 separates the
            reference overload campaign cleanly: past saturation the
            open loop sustains ~0.6 (backlog diverging) while the
            closed loop holds >= 0.78 (held messages are not offered).
        collapse_intervals: consecutive diverging warm intervals before
            the collapse-onset annotation is stamped.
    """

    interval_cycles: int = 128
    max_intervals: int = 512
    top_links: int = 4
    collapse_ratio: float = 0.7
    collapse_intervals: int = 4

    def __post_init__(self) -> None:
        if self.interval_cycles < 1:
            raise ConfigurationError(
                f"interval_cycles must be >= 1, got {self.interval_cycles}"
            )
        if self.max_intervals < 8 or self.max_intervals % 2:
            raise ConfigurationError(
                f"max_intervals must be an even number >= 8, got {self.max_intervals}"
            )
        if self.top_links < 0:
            raise ConfigurationError(f"top_links must be >= 0, got {self.top_links}")
        if not 0.0 < self.collapse_ratio < 1.0:
            raise ConfigurationError(
                f"collapse_ratio must be in (0, 1), got {self.collapse_ratio}"
            )
        if self.collapse_intervals < 1:
            raise ConfigurationError(
                f"collapse_intervals must be >= 1, got {self.collapse_intervals}"
            )


def _find_transport(probe):
    """The ReliableTransport inside a probe tree, or None (duck walk
    through MultiProbe composition, import-cycle free)."""
    from ..traffic.transport import ReliableTransport

    if isinstance(probe, ReliableTransport):
        return probe
    for child in getattr(probe, "probes", ()):
        found = _find_transport(child)
        if found is not None:
            return found
    return None


class FlightRecorder(Probe):
    """The recorder: attach via ``build_engine(config, probe=...)`` (or
    compose under a :class:`~repro.obs.probe.MultiProbe`); a transport
    or congestion loop installed afterwards is discovered automatically
    at run start.

    Args:
        config: recorder tuning; defaults to :class:`FlightConfig`.
        on_sample: optional callable invoked with every *raw* sample row
            (a dict, before any coalescing) — the ``--watch`` hook.
        events: optional JSONL event-stream sink: a path (opened at run
            start, closed at run end) or a writable file object (left
            open).  Carries ``start``/``sample``/``annotation``/``end``
            records as they happen, unlike the document's coalesced view.
    """

    def __init__(self, config: FlightConfig | None = None, on_sample=None,
                 events=None):
        self.config = config or FlightConfig()
        self.on_sample = on_sample
        self._events_arg = events
        self._events_fh = None
        self._owns_events = False
        self.engine = None
        self.transport = None
        self._control = None
        self._running = False
        self._rows: list[dict] = []
        self._hot: list[list] = []
        self._annotations: list[dict] = []
        #: annotations stamped before run start (e.g. a fault schedule
        #: known up front); replayed onto the timeline at every run start
        self._pending: list[dict] = []
        self.annotations_dropped = 0
        self._decimations = 0
        self._collapse_cycle: int | None = None
        self._stall_cycle: int | None = None
        self._collapse_streak = 0
        self._stall_streak = 0
        self._first_mark_seen = False
        self._first_decrease_seen = False
        # interval bookkeeping (reset at run start)
        self._row_start = 0
        self._interval_end = 0
        self._generated = 0
        self._blocked = 0
        self._last = {}
        self._dir_flits: list[int] = []
        self._dir_labels: list[str] = []

    # -- wiring ---------------------------------------------------------------

    def __getstate__(self) -> dict:
        # a live event stream or watch callback cannot ride inside a
        # checkpoint; fail loudly rather than restore a recorder that
        # silently stopped streaming
        if self._events_fh is not None or self.on_sample is not None:
            from ..errors import CheckpointError

            raise CheckpointError(
                "a flight recorder with a live event stream or --watch "
                "callback cannot be checkpointed; drop --events/--watch "
                "for checkpointed runs"
            )
        return dict(self.__dict__)

    def bind(self, engine) -> None:
        self.engine = engine
        labels = []
        for d in engine.dirs:
            if d.to_node:
                labels.append(f"n{d.lanes[0].sink.node}<")
            else:
                labels.append(f"s{d.switch}p{d.port}")
        self._dir_labels = labels

    def on_run_start(self, engine) -> None:
        self.transport = _find_transport(engine.probe)
        self._control = self.transport.congestion if self.transport else None
        self._rows = []
        self._hot = []
        self._annotations = []
        self.annotations_dropped = 0
        self._decimations = 0
        self._collapse_cycle = None
        self._stall_cycle = None
        self._collapse_streak = 0
        self._stall_streak = 0
        self._first_mark_seen = False
        self._first_decrease_seen = False
        self._generated = 0
        self._blocked = 0
        self._row_start = engine.cycle
        self._interval_end = engine.cycle + self.config.interval_cycles
        self._last = {
            "injected": engine.injected_flits_total,
            "delivered": engine.delivered_flits_total,
            "dropped": engine.dropped_flits_total,
            "backlog": self._backlog_flits(),
            "retx": self.transport.retransmissions if self.transport else 0,
            "gave_up": self.transport.gave_up if self.transport else 0,
            "marks": (self._control.marker.packets_marked
                      if self._control is not None else 0),
        }
        self._dir_flits = [d.flits for d in engine.dirs]
        self._open_events()
        self._emit({
            "type": "start",
            "label": engine.config.label(),
            "interval": self.config.interval_cycles,
            "warmup": engine.config.warmup_cycles,
            "total": engine.config.total_cycles,
        })
        self._running = True
        for note in self._pending:
            self._stamp(dict(note))

    # -- hot-path event counters ----------------------------------------------

    def on_packets_generated(self, cycle: int, node: int, count: int) -> None:
        self._generated += count

    def on_direction_blocked(self, cycle: int, direction) -> None:
        self._blocked += 1

    def on_cycle(self, cycle: int) -> None:
        if cycle + 1 < self._interval_end:
            return
        self._sample(cycle)
        self._interval_end += self.config.interval_cycles

    def on_run_end(self, engine) -> None:
        if engine.cycle > self._row_start:
            # partial tail interval (run length not a stride multiple,
            # or a deadlock abort mid-interval)
            self._sample(engine.cycle - 1)
        self._running = False
        doc = self.document()
        self._emit({
            "type": "end",
            "cycles": engine.cycle,
            "rows": doc["rows"],
            "annotations": len(doc["annotations"]),
            "collapse_onset": doc["collapse_onset"],
        })
        self._close_events()
        if engine.result.telemetry is not None:
            engine.result.telemetry = dataclasses.replace(
                engine.result.telemetry, flight=doc
            )

    # -- annotations ----------------------------------------------------------

    def annotate(self, cycle: int, kind: str, detail: str | None = None) -> None:
        """Stamp a timeline event (fault strike, collapse onset, ...).

        Before run start the stamp is buffered and replayed when the run
        begins (run start resets the previous run's timeline): a fault
        schedule is annotated right after ``build_engine``, before the
        engine ever runs.
        """
        note = {"cycle": cycle, "kind": kind, "detail": detail}
        if not self._running:
            self._pending.append(note)
            return
        self._stamp(note)

    def _stamp(self, note: dict) -> None:
        if len(self._annotations) >= _MAX_ANNOTATIONS:
            self.annotations_dropped += 1
            return
        self._annotations.append(note)
        self._emit({"type": "annotation", **note})

    # -- sampling -------------------------------------------------------------

    def _backlog_flits(self) -> int:
        # len(queue) * packet_flits: entries may carry explicit sizes
        # (trace workloads) but scanning deep overload backlogs per
        # interval would be O(queue), not O(nodes)
        size = self.engine.config.packet_flits
        return sum(len(node.source.queue) for node in self.engine.nodes) * size

    def _sample(self, end_cycle: int) -> None:
        eng = self.engine
        cfg = self.config
        last = self._last
        span = end_cycle + 1 - self._row_start

        injected = eng.injected_flits_total - last["injected"]
        delivered = eng.delivered_flits_total - last["delivered"]
        dropped = eng.dropped_flits_total - last["dropped"]
        backlog = self._backlog_flits()
        offered = max(0, injected + backlog - last["backlog"])
        occupancy = 0
        hot = []
        dirs = eng.dirs
        flits_now = [d.flits for d in dirs]
        for i, d in enumerate(dirs):
            for lane in d.lanes:
                occupancy += lane.buffered
        if cfg.top_links:
            deltas = [
                (flits_now[i] - self._dir_flits[i], i)
                for i in range(len(dirs))
                if flits_now[i] > self._dir_flits[i]
            ]
            deltas.sort(key=lambda t: (-t[0], t[1]))
            hot = [[self._dir_labels[i], delta] for delta, i in deltas[:cfg.top_links]]
        self._dir_flits = flits_now

        row = {
            "cycle": end_cycle,
            "span": span,
            "generated": self._generated,
            "injected": injected,
            "delivered": delivered,
            "dropped": dropped,
            "offered": offered,
            "backlog": backlog,
            "in_flight": eng.in_flight_packets(),
            "occupancy": occupancy,
            "blocked": self._blocked,
        }

        transport = self.transport
        if transport is not None:
            retx = transport.retransmissions - last["retx"]
            gave_up = transport.gave_up - last["gave_up"]
            rtt = transport.rtt_estimate
            row.update(
                outstanding=transport.total_unresolved(),
                retx=retx,
                gave_up=gave_up,
                rtt=None if rtt is None else round(rtt, 3),
            )
            last["retx"] = transport.retransmissions
            last["gave_up"] = transport.gave_up

        control = self._control
        if control is not None:
            marks = control.marker.packets_marked - last["marks"]
            cwnds = sorted(v[0] for v in control._windows.values())
            if cwnds:
                mean = sum(cwnds) / len(cwnds)
                p50 = cwnds[len(cwnds) // 2]
                lo = cwnds[0]
            else:
                mean = p50 = lo = control.config.initial_window
            row.update(
                held=transport.held_total(),
                marks=marks,
                cwnd_mean=round(mean, 4),
                cwnd_p50=round(p50, 4),
                cwnd_min=round(lo, 4),
            )
            last["marks"] = control.marker.packets_marked
            if marks and not self._first_mark_seen:
                self._first_mark_seen = True
                self.annotate(end_cycle, "first_mark",
                              f"{marks} packet(s) marked in this interval")
            if control.decreases and not self._first_decrease_seen:
                self._first_decrease_seen = True
                self.annotate(end_cycle, "first_decrease",
                              f"window p50 {row['cwnd_p50']:g}")

        last["injected"] = eng.injected_flits_total
        last["delivered"] = eng.delivered_flits_total
        last["dropped"] = eng.dropped_flits_total
        last["backlog"] = backlog
        self._generated = 0
        self._blocked = 0
        self._row_start = end_cycle + 1

        self._detect(row)
        self._rows.append(row)
        self._hot.append(hot)
        if len(self._rows) >= cfg.max_intervals:
            self._coalesce()
        self._emit({"type": "sample", **row, "hot": hot})
        if self.on_sample is not None:
            self.on_sample(row)

    def _detect(self, row: dict) -> None:
        """Online collapse-onset and deadlock-precursor detection."""
        cfg = self.config
        warm = row["cycle"] >= self.engine.config.warmup_cycles
        diverging = (
            warm
            and row["offered"] > 0
            and row["delivered"] < cfg.collapse_ratio * row["offered"]
        )
        if diverging:
            self._collapse_streak += 1
            if (self._collapse_streak >= cfg.collapse_intervals
                    and self._collapse_cycle is None):
                onset = row["cycle"]
                self._collapse_cycle = onset
                self.annotate(
                    onset, "collapse_onset",
                    f"delivered < {cfg.collapse_ratio:g}x offered for "
                    f"{self._collapse_streak} intervals",
                )
        else:
            self._collapse_streak = 0
        stalled = (
            row["delivered"] == 0
            and row["injected"] == 0
            and row["in_flight"] > 0
        )
        if stalled:
            self._stall_streak += 1
            if self._stall_streak >= 2 and self._stall_cycle is None:
                self._stall_cycle = row["cycle"]
                self.annotate(
                    row["cycle"], "stall",
                    f"{row['in_flight']} packets in flight, zero progress "
                    "(deadlock precursor)",
                )
        else:
            self._stall_streak = 0

    def _coalesce(self) -> None:
        """Halve the buffer by merging adjacent row pairs (stride x2)."""
        rows, hot = self._rows, self._hot
        merged_rows, merged_hot = [], []
        for i in range(0, len(rows) - 1, 2):
            a, b = rows[i], rows[i + 1]
            row = dict(b)  # gauges keep the later value
            for key in _RATE_KEYS:
                if key in a:
                    row[key] = a[key] + b[key]
            merged_rows.append(row)
            if self.config.top_links:
                tally: dict[str, int] = {}
                for label, flits in hot[i] + hot[i + 1]:
                    tally[label] = tally.get(label, 0) + flits
                ranked = sorted(tally.items(), key=lambda t: (-t[1], t[0]))
                merged_hot.append(
                    [[label, flits] for label, flits in
                     ranked[: self.config.top_links]]
                )
            else:
                merged_hot.append([])
        if len(rows) % 2:  # odd tail row (partial final interval)
            merged_rows.append(rows[-1])
            merged_hot.append(hot[-1])
        self._rows, self._hot = merged_rows, merged_hot
        self._decimations += 1

    # -- event stream ---------------------------------------------------------

    def _open_events(self) -> None:
        target = self._events_arg
        if target is None:
            return
        if hasattr(target, "write"):
            self._events_fh = target
            self._owns_events = False
        else:
            self._events_fh = open(pathlib.Path(target), "w", encoding="utf-8")
            self._owns_events = True

    def _emit(self, record: dict) -> None:
        fh = self._events_fh
        if fh is None:
            return
        try:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
        except (OSError, io.UnsupportedOperation):
            self._events_fh = None  # a broken sink must not kill the run

    def _close_events(self) -> None:
        if self._events_fh is not None and self._owns_events:
            self._events_fh.close()
        self._events_fh = None

    # -- serialization --------------------------------------------------------

    @property
    def collapse_onset(self) -> int | None:
        """Cycle the collapse-onset annotation was stamped at, or None."""
        return self._collapse_cycle

    def document(self) -> dict:
        """The versioned, byte-deterministic flight document.

        Columnar (one list per key, fixed key order) so reruns of the
        same recipe serialize identically; rides on
        ``telemetry.flight``.
        """
        has_transport = self.transport is not None
        has_control = self._control is not None
        keys = list(_ENGINE_KEYS)
        if has_transport:
            keys += _TRANSPORT_KEYS
        if has_control:
            keys += _CONTROL_KEYS
        series = {key: [row[key] for row in self._rows] for key in keys}
        return {
            "format": FLIGHT_FORMAT_VERSION,
            "interval": self.config.interval_cycles,
            "stride": self.config.interval_cycles * (2 ** self._decimations),
            "max_intervals": self.config.max_intervals,
            "decimations": self._decimations,
            "rows": len(self._rows),
            "layers": {"transport": has_transport, "control": has_control},
            "series": series,
            "hot": [list(entries) for entries in self._hot],
            "annotations": sorted(
                self._annotations, key=lambda a: (a["cycle"], a["kind"])
            ),
            "annotations_dropped": self.annotations_dropped,
            "collapse_onset": self._collapse_cycle,
        }


def simulate_with_flight(
    config,
    flight: FlightConfig | None = None,
    on_sample=None,
    events=None,
    checkpoint=None,
):
    """``simulate(config)`` with a flight recorder attached.

    Module-level and driven by picklable arguments so the resilient
    sweep harness can fan it out over process pools (``on_sample`` and
    ``events`` are for in-process use, and are incompatible with
    ``checkpoint`` — a live stream cannot ride inside a snapshot).  The
    flight document lands on ``result.telemetry.flight``.
    """
    from ..sim.run import simulate

    recorder = FlightRecorder(flight, on_sample=on_sample, events=events)
    return simulate(config, probe=recorder, checkpoint=checkpoint)


def describe_flight(doc: dict) -> str:
    """A short human-readable digest of a flight document."""
    rows = doc["rows"]
    lines = [
        f"flight timeline: {rows} rows, stride {doc['stride']} cycles"
        + (f" ({doc['decimations']} decimation(s))" if doc["decimations"] else ""),
    ]
    if rows:
        series = doc["series"]
        span = sum(series["span"])
        delivered = sum(series["delivered"])
        offered = sum(series["offered"])
        lines.append(
            f"  delivered {delivered} flits vs offered {offered} over "
            f"{span} cycles"
        )
    for note in doc["annotations"]:
        detail = f" — {note['detail']}" if note.get("detail") else ""
        lines.append(f"  @{note['cycle']:>7} {note['kind']}{detail}")
    if doc.get("annotations_dropped"):
        lines.append(f"  (+{doc['annotations_dropped']} annotations dropped)")
    return "\n".join(lines)
