"""Engine performance baselines and the regression gate.

``repro-net bench`` measures the engine's cycles/sec — overall and split
per step phase, with probes off and on — over a small fixed suite and
writes a versioned ``BENCH_<host>.json`` baseline.  ``repro-net bench
--compare BASELINE`` re-measures *the recipes recorded in the baseline*
(each entry carries its full config, so baselines written by other
scripts, e.g. ``benchmarks/obs_overhead.py``, compare too) and exits
with :data:`REGRESSION_EXIT_CODE` when any entry slowed down by more
than the threshold (default 15%).

What is compared, per entry:

* **overall throughput** — best-of-N cycles/sec (best-of defends against
  scheduler noise; a regression must reproduce across every repeat to
  show up);
* **per-phase cost** — seconds-per-cycle of each ``Engine.step`` phase,
  for phases that carried at least :data:`MIN_PHASE_SHARE` of the
  baseline's phase time (tiny phases are pure timer noise).  This
  pinpoints *which* loop regressed, not just that something did.

Wall-clock benchmarks are inherently machine-bound: baselines are named
by host and CI treats a regression verdict as a warning (soft-fail),
reserving hard failure for crashes.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import platform
import time

from ..errors import AnalysisError, ConfigurationError
from ..sim.config import SimulationConfig
from ..sim.results import RunResult
from ..sim.run import cube_config, simulate, tree_config
from .counters import WindowedCounterProbe
from .probe import MultiProbe, NullProbe
from .telemetry import PHASE_NAMES
from .trace import TraceProbe

#: bump on breaking changes to the baseline document layout
BENCH_FORMAT_VERSION = 1

#: ``bench --compare`` exit code for "measurably slower", distinct from
#: crash/usage errors so CI can soft-fail on it
REGRESSION_EXIT_CODE = 3

#: default tolerated slowdown before an entry counts as regressed
DEFAULT_THRESHOLD = 0.15

#: phases below this share of baseline phase time are not compared
MIN_PHASE_SHARE = 0.05

def _forensics_probe():
    # imported on use: forensics sits above this module in the layering
    from .forensics import ForensicsProbe

    return ForensicsProbe()


def _flight_probe():
    # imported on use: flight sits above this module in the layering
    from .flight import FlightRecorder

    return FlightRecorder()


def _statehash_probe():
    # imported on use: statehash sits above this module in the layering
    from .statehash import StateDigestProbe

    return StateDigestProbe()


#: bench-created checkpoint scratch directories, held for process life —
#: they cannot ride on the probe itself (the probe is pickled into every
#: checkpoint it writes, and TemporaryDirectory finalizers don't pickle)
_BENCH_CHECKPOINT_DIRS: list = []


def _checkpoint_probe():
    # imported on use: checkpoint sits above this module in the layering
    import tempfile

    from ..sim.checkpoint import CheckpointProbe

    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-")
    _BENCH_CHECKPOINT_DIRS.append(tmp)
    return CheckpointProbe(tmp.name)


#: probe spec names -> factories; "off" runs the uninstrumented fast path
PROBE_FACTORIES = {
    "off": lambda: None,
    "null": NullProbe,
    "traced": lambda: MultiProbe(
        [TraceProbe(), WindowedCounterProbe(window_cycles=200)]
    ),
    "forensics": _forensics_probe,
    "flight": _flight_probe,
    "statehash": _statehash_probe,
    "checkpoint": _checkpoint_probe,
}


def _simulate_spec(probe: str):
    """The simulation callable for a probe spec name.

    ``"reliable"`` is not a probe: it installs the whole source-side
    reliable transport (:mod:`repro.traffic.transport`), so its entry
    gates the fault-free protocol overhead — timer wheel, sequence
    bookkeeping, wrapped sources — on top of the engine.
    ``"congestion"`` goes one layer further and installs the closed
    control loop (:mod:`repro.traffic.congestion`: marker probe +
    per-destination AIMD windows + hold queues), gating the full
    closed-loop cost.
    """
    if probe == "reliable":
        from ..traffic.transport import simulate_reliable

        return simulate_reliable
    if probe == "congestion":
        from ..traffic.congestion import simulate_congested

        return simulate_congested
    try:
        factory = PROBE_FACTORIES[probe]
    except KeyError:
        raise ConfigurationError(
            f"unknown probe spec {probe!r} (expected 'reliable', "
            f"'congestion' or one of {sorted(PROBE_FACTORIES)})"
        ) from None
    return lambda config: simulate(config, probe=factory())


def default_suite(cycles: int = 2000) -> list[tuple[str, SimulationConfig, str]]:
    """The standard bench suite: (name, config, probe spec) triples.

    Small fixed networks — the point is a stable per-host trend line for
    the engine's hot loops, not paper-scale numbers — covering both
    topologies and every probe operating point (probes off, the no-op
    probe, the trace/counter stack, and the forensics tier).
    """
    common = dict(load=0.3, seed=11, warmup_cycles=cycles // 10, total_cycles=cycles)
    tree = tree_config(k=2, n=3, vcs=2, **common)
    cube = cube_config(k=4, n=2, algorithm="dor", **common)
    return [
        ("tree-off", tree, "off"),
        ("tree-null", tree, "null"),
        ("cube-off", cube, "off"),
        ("cube-traced", cube, "traced"),
        ("cube-forensics", cube, "forensics"),
    ]


def measure_entry(
    name: str, config: SimulationConfig, probe: str, repeats: int = 3
) -> dict:
    """Benchmark one (config, probe) point; returns the entry document.

    Best-of-``repeats`` on cycles/sec; phase seconds are taken from the
    best run so the two numbers describe the same execution.
    """
    sim = _simulate_spec(probe)
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    best: RunResult | None = None
    for _ in range(repeats):
        result = sim(config)
        if best is None or result.telemetry.cycles_per_sec > best.telemetry.cycles_per_sec:
            best = result
    t = best.telemetry
    return {
        "name": name,
        "probe": probe,
        "config": _config_doc(config),
        "cycles_per_sec": t.cycles_per_sec,
        "phase_seconds": t.phase_seconds,
        "telemetry": t.to_dict(),
    }


def _config_doc(config: SimulationConfig) -> dict:
    return dataclasses.asdict(config)


def bench_document(entries: list[dict], repeats: int) -> dict:
    """Wrap measured entries into the versioned baseline document."""
    return {
        "format": BENCH_FORMAT_VERSION,
        "kind": "bench",
        "host": platform.node() or "unknown",
        "python": platform.python_version(),
        "recorded_at": time.time(),
        "repeats": repeats,
        "entries": entries,
    }


def run_bench(repeats: int = 3, cycles: int = 2000) -> dict:
    """Measure the default suite; returns the baseline document."""
    entries = [
        measure_entry(name, config, probe, repeats=repeats)
        for name, config, probe in default_suite(cycles)
    ]
    return bench_document(entries, repeats)


def default_baseline_path() -> pathlib.Path:
    return pathlib.Path(f"BENCH_{platform.node() or 'local'}.json")


def save_baseline(doc: dict, path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(json.dumps(doc, indent=1), encoding="utf-8")


def load_baseline(path: str | pathlib.Path) -> dict:
    """Read and validate a baseline document.

    Raises:
        AnalysisError: unreadable file, bad JSON or wrong format version.
    """
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"cannot load bench baseline from {path}: {exc}") from exc
    version = doc.get("format")
    if version != BENCH_FORMAT_VERSION:
        raise AnalysisError(
            f"unsupported bench format {version!r} (expected {BENCH_FORMAT_VERSION})"
        )
    if not doc.get("entries"):
        raise AnalysisError(f"bench baseline {path} has no entries")
    return doc


def remeasure(baseline: dict, repeats: int | None = None) -> list[dict]:
    """Re-run every recipe recorded in a baseline on this machine."""
    repeats = repeats or baseline.get("repeats", 3)
    entries = []
    for entry in baseline["entries"]:
        try:
            config = SimulationConfig(**entry["config"])
            name, probe = entry["name"], entry["probe"]
        except (KeyError, TypeError) as exc:
            raise AnalysisError(f"malformed bench entry: {exc}") from exc
        entries.append(measure_entry(name, config, probe, repeats=repeats))
    return entries


def compare(
    baseline: dict, current: list[dict], threshold: float = DEFAULT_THRESHOLD
) -> list[str]:
    """Regression verdicts for a fresh measurement against a baseline.

    Returns human-readable findings, one per regressed metric; empty
    means the gate passes.  An entry regresses when overall cycles/sec
    dropped by more than ``threshold``, or any significant phase's
    seconds-per-cycle grew by more than ``threshold``.
    """
    if not 0.0 < threshold < 1.0:
        raise ConfigurationError(f"threshold must be in (0, 1), got {threshold}")
    current_by_name = {e["name"]: e for e in current}
    findings = []
    for base in baseline["entries"]:
        cur = current_by_name.get(base["name"])
        if cur is None:
            raise AnalysisError(f"no fresh measurement for baseline entry {base['name']!r}")
        base_rate, cur_rate = base["cycles_per_sec"], cur["cycles_per_sec"]
        if base_rate > 0 and cur_rate < (1.0 - threshold) * base_rate:
            drop = 1.0 - cur_rate / base_rate
            findings.append(
                f"{base['name']}: {cur_rate:,.0f} cyc/s vs baseline "
                f"{base_rate:,.0f} ({drop:+.1%} slower)"
            )
        findings.extend(_phase_findings(base, cur, threshold))
    return findings


def compare_document(
    baseline: dict, current: list[dict], threshold: float = DEFAULT_THRESHOLD
) -> dict:
    """Machine-readable comparison document: per-entry deltas + verdict.

    The structured twin of :func:`compare` for ``bench --compare
    --json`` and CI tooling: one row per baseline entry with both rates
    and the relative delta (positive = faster), the per-entry and
    overall pass/fail, and the human-readable findings verbatim.
    """
    findings = compare(baseline, current, threshold)
    current_by_name = {e["name"]: e for e in current}
    entries = []
    for base in baseline["entries"]:
        cur = current_by_name[base["name"]]
        base_rate, cur_rate = base["cycles_per_sec"], cur["cycles_per_sec"]
        prefix = f"{base['name']}:"
        entries.append(
            {
                "name": base["name"],
                "probe": base.get("probe"),
                "baseline_cycles_per_sec": base_rate,
                "cycles_per_sec": cur_rate,
                "delta": (
                    round(cur_rate / base_rate - 1.0, 6) if base_rate else None
                ),
                "regressed": any(f.startswith(prefix) for f in findings),
            }
        )
    return {
        "format": BENCH_FORMAT_VERSION,
        "kind": "bench-compare",
        "host": platform.node() or "unknown",
        "python": platform.python_version(),
        "threshold": threshold,
        "passed": not findings,
        "findings": findings,
        "entries": entries,
    }


def _phase_findings(base: dict, cur: dict, threshold: float) -> list[str]:
    base_phases = base.get("phase_seconds") or {}
    cur_phases = cur.get("phase_seconds") or {}
    base_cycles = (base.get("telemetry") or {}).get("cycles", 0)
    cur_cycles = (cur.get("telemetry") or {}).get("cycles", 0)
    if not base_phases or not cur_phases or not base_cycles or not cur_cycles:
        return []  # pre-phase-timer baseline: overall rate still compared
    total = sum(base_phases.values())
    if total <= 0:
        return []
    findings = []
    for name in PHASE_NAMES:
        share = base_phases.get(name, 0.0) / total
        if share < MIN_PHASE_SHARE:
            continue
        base_spc = base_phases[name] / base_cycles
        cur_spc = cur_phases.get(name, 0.0) / cur_cycles
        if base_spc > 0 and cur_spc > (1.0 + threshold) * base_spc:
            findings.append(
                f"{base['name']}: phase '{name}' {cur_spc * 1e6:.2f} µs/cycle vs "
                f"baseline {base_spc * 1e6:.2f} "
                f"({cur_spc / base_spc - 1.0:+.1%} slower)"
            )
    return findings
