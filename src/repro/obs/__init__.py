"""Observability: flit-level probes, windowed counters, run telemetry.

The paper's claims rest on *where* flits spend their cycles — blocked
behind busy lanes, waiting in injection queues, crossing the cube's
bisection.  This package makes those places visible without taxing
uninstrumented runs:

* :mod:`repro.obs.probe` — the probe interface the engine calls at flit
  granularity (``Engine.attach_probe``); a no-op :class:`Probe` base, a
  ``NullProbe`` alias for overhead benchmarking and a :class:`MultiProbe`
  combinator.
* :mod:`repro.obs.trace` — :class:`TraceProbe`: a packet-lifecycle event
  trace exportable as JSONL and Chrome ``trace_event`` format
  (``chrome://tracing`` / Perfetto).
* :mod:`repro.obs.counters` — :class:`WindowedCounterProbe`: per-window,
  per-direction flit/blocked-cycle/occupancy counters that respect the
  measurement window.
* :mod:`repro.obs.telemetry` — :class:`RunTelemetry`: the provenance and
  performance record (config digest, seed, wall clock, cycles/sec, peak
  in-flight) attached to every :class:`~repro.sim.results.RunResult`.

CLI entry points: ``repro-net trace`` for instrumented single runs,
``repro-net run/sweep --json`` for machine-readable results including
telemetry, and ``benchmarks/obs_overhead.py`` for the probe-overhead
smoke benchmark CI runs on every push.
"""

from .counters import CounterWindow, DirectionWindow, WindowedCounterProbe
from .probe import MultiProbe, NullProbe, Probe
from .telemetry import RunTelemetry, config_digest
from .trace import EVENT_KINDS, TraceEvent, TraceProbe

__all__ = [
    "CounterWindow",
    "DirectionWindow",
    "WindowedCounterProbe",
    "MultiProbe",
    "NullProbe",
    "Probe",
    "RunTelemetry",
    "config_digest",
    "EVENT_KINDS",
    "TraceEvent",
    "TraceProbe",
]
