"""Observability: flit-level probes, windowed counters, run telemetry.

The paper's claims rest on *where* flits spend their cycles — blocked
behind busy lanes, waiting in injection queues, crossing the cube's
bisection.  This package makes those places visible without taxing
uninstrumented runs:

* :mod:`repro.obs.probe` — the probe interface the engine calls at flit
  granularity (``Engine.attach_probe``); a no-op :class:`Probe` base, a
  ``NullProbe`` alias for overhead benchmarking and a :class:`MultiProbe`
  combinator.
* :mod:`repro.obs.trace` — :class:`TraceProbe`: a packet-lifecycle event
  trace exportable as JSONL and Chrome ``trace_event`` format
  (``chrome://tracing`` / Perfetto).
* :mod:`repro.obs.counters` — :class:`WindowedCounterProbe`: per-window,
  per-direction flit/blocked-cycle/occupancy counters that respect the
  measurement window.
* :mod:`repro.obs.telemetry` — :class:`RunTelemetry`: the provenance and
  performance record (config digest, seed, wall clock, cycles/sec, peak
  in-flight, per-phase wall-time split) attached to every
  :class:`~repro.sim.results.RunResult`.

On top of the per-run signals sits the aggregation tier:

* :mod:`repro.obs.ledger` — :class:`Ledger`: the append-only JSONL
  results store every ``--ledger`` CLI invocation feeds, queryable by
  config digest / network / pattern / time window, deduplicated by
  recipe digest + seed.
* :mod:`repro.obs.report` — the HTML reproduction scorecard: ledger
  curves rendered as inline SVG with the paper's Figure 5/6 saturation
  points overlaid and a per-figure fidelity score.
* :mod:`repro.obs.bench` — engine performance baselines
  (``BENCH_<host>.json``) and the ``bench --compare`` regression gate
  over overall and per-phase cycles/sec.
* :mod:`repro.obs.forensics` — the congestion-forensics tier:
  per-packet latency attribution (:class:`ForensicsProbe` et al.),
  wait-for graph sampling with deadlock-precursor detection, and
  per-link hotspot aggregation, feeding ``repro-net analyze`` and the
  scorecard's breakdown/heatmap panels.
* :mod:`repro.obs.heatmap` — stdlib-SVG rendering of the forensics
  document (hotspot heatmaps, latency-breakdown panel) and of flight
  timelines (stacked dynamics panels).
* :mod:`repro.obs.flight` — :class:`FlightRecorder`: the cross-layer
  flight recorder sampling one bounded per-interval timeline over
  engine, links, transport and control plane, with collapse-onset /
  fault / deadlock-precursor annotations, a live ``--watch`` hook and a
  JSONL event stream; the document rides on ``telemetry.flight``.
* :mod:`repro.obs.percentiles` — the shared latency-percentile
  formatting used by ``run --latencies``, ``analyze`` and the flight
  digests.
* :mod:`repro.obs.statehash` — :class:`StateDigestProbe`: the layered
  Merkle-style state-digest audit trail (per-lane leaves rolled up per
  link / node / subsystem into per-interval roots on a bounded hash
  chain), ``Engine.state_fingerprint()`` and the un-hashed
  :func:`state_snapshot` — the backend validation contract of
  DESIGN.md; the chain rides on ``telemetry.statehash``.
* :mod:`repro.obs.diff` — the divergence bisection debugger behind
  ``repro-net diff``: compares two digest chains, replays both configs
  to the exact first divergent cycle and names the subsystem, link,
  lane, flit or credit counter that differs.

CLI entry points: ``repro-net trace`` for instrumented single runs,
``repro-net run/sweep/trace --json`` for machine-readable results
including telemetry, ``--ledger`` on run/sweep/trace/faults for durable
result capture, ``repro-net report`` for the scorecard, ``repro-net
bench`` for the perf gate, and ``benchmarks/obs_overhead.py`` for the
probe-overhead smoke benchmark CI runs on every push.
"""

from .counters import CounterWindow, DirectionWindow, WindowedCounterProbe
from .probe import MultiProbe, NullProbe, Probe
from .telemetry import PHASE_NAMES, RunTelemetry, config_digest
from .trace import EVENT_KINDS, TraceEvent, TraceProbe

# The aggregation tier (ledger/report/bench) sits *above* the simulation
# layer, while the probe/telemetry leaves sit *below* it (the engine
# imports repro.obs.telemetry).  Importing the tier eagerly here would
# close a cycle engine -> obs -> bench -> sim.run -> engine, so its names
# resolve lazily on first attribute access (PEP 562).
_LAZY = {
    "BENCH_FORMAT_VERSION": "bench",
    "REGRESSION_EXIT_CODE": "bench",
    "compare": "bench",
    "load_baseline": "bench",
    "run_bench": "bench",
    "save_baseline": "bench",
    "LEDGER_FORMAT_VERSION": "ledger",
    "Ledger": "ledger",
    "ledger_record": "ledger",
    "CongestionCurve": "report",
    "PaperRef": "report",
    "ReliabilityCurve": "report",
    "ScorecardFigure": "report",
    "congestion_curves": "report",
    "figures_from_results": "report",
    "forensics_by_figure": "report",
    "paper_reference": "report",
    "partition_reliability": "report",
    "partition_results": "report",
    "reliability_curves": "report",
    "render_scorecard": "report",
    "write_scorecard": "report",
    "FORENSICS_FORMAT_VERSION": "forensics",
    "ForensicsProbe": "forensics",
    "HotspotProbe": "forensics",
    "LatencyAttributionProbe": "forensics",
    "PacketAttribution": "forensics",
    "StreamingHistogram": "forensics",
    "WaitForGraphSampler": "forensics",
    "WaitForSample": "forensics",
    "attach_forensics": "forensics",
    "describe_forensics": "forensics",
    "run_with_forensics": "forensics",
    "simulate_with_forensics": "forensics",
    "hotspot_heatmap_svg": "heatmap",
    "latency_breakdown_svg": "heatmap",
    "standalone_svg": "heatmap",
    "flight_timeline_svg": "heatmap",
    "FLIGHT_FORMAT_VERSION": "flight",
    "FlightConfig": "flight",
    "FlightRecorder": "flight",
    "describe_flight": "flight",
    "simulate_with_flight": "flight",
    "format_percentiles": "percentiles",
    "percentile_table": "percentiles",
    "STATEHASH_FORMAT_VERSION": "statehash",
    "DIGEST_ALGO": "statehash",
    "StateDigestConfig": "statehash",
    "StateDigestProbe": "statehash",
    "describe_statehash": "statehash",
    "engine_fingerprint": "statehash",
    "simulate_with_statehash": "statehash",
    "state_snapshot": "statehash",
    "DIFF_FORMAT_VERSION": "diff",
    "DIVERGENCE_EXIT_CODE": "diff",
    "compare_chains": "diff",
    "describe_diff": "diff",
    "diff_runs": "diff",
    "snapshot_diff": "diff",
    "statehash_entries": "report",
    "render_diff_html": "report",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)


def __dir__() -> list[str]:
    return sorted(set(__all__) | set(globals()))

__all__ = [
    "BENCH_FORMAT_VERSION",
    "REGRESSION_EXIT_CODE",
    "compare",
    "load_baseline",
    "run_bench",
    "save_baseline",
    "CounterWindow",
    "DirectionWindow",
    "WindowedCounterProbe",
    "LEDGER_FORMAT_VERSION",
    "Ledger",
    "ledger_record",
    "MultiProbe",
    "NullProbe",
    "Probe",
    "CongestionCurve",
    "PaperRef",
    "ReliabilityCurve",
    "ScorecardFigure",
    "congestion_curves",
    "figures_from_results",
    "forensics_by_figure",
    "paper_reference",
    "partition_reliability",
    "partition_results",
    "reliability_curves",
    "render_scorecard",
    "write_scorecard",
    "FORENSICS_FORMAT_VERSION",
    "ForensicsProbe",
    "HotspotProbe",
    "LatencyAttributionProbe",
    "PacketAttribution",
    "StreamingHistogram",
    "WaitForGraphSampler",
    "WaitForSample",
    "attach_forensics",
    "describe_forensics",
    "run_with_forensics",
    "simulate_with_forensics",
    "hotspot_heatmap_svg",
    "latency_breakdown_svg",
    "standalone_svg",
    "flight_timeline_svg",
    "FLIGHT_FORMAT_VERSION",
    "FlightConfig",
    "FlightRecorder",
    "describe_flight",
    "simulate_with_flight",
    "format_percentiles",
    "percentile_table",
    "STATEHASH_FORMAT_VERSION",
    "DIGEST_ALGO",
    "StateDigestConfig",
    "StateDigestProbe",
    "describe_statehash",
    "engine_fingerprint",
    "simulate_with_statehash",
    "state_snapshot",
    "DIFF_FORMAT_VERSION",
    "DIVERGENCE_EXIT_CODE",
    "compare_chains",
    "describe_diff",
    "diff_runs",
    "snapshot_diff",
    "statehash_entries",
    "render_diff_html",
    "PHASE_NAMES",
    "RunTelemetry",
    "config_digest",
    "EVENT_KINDS",
    "TraceEvent",
    "TraceProbe",
]
