"""HTML reproduction scorecard: our curves against the paper's figures.

Ledger or sweep data in, one self-contained HTML file out — no external
assets, no plotting dependencies, just stdlib string assembly of inline
SVG.  Each *figure* (one network/shape/pattern group) renders as a
side-by-side pair of panels inside a single ``<svg>``: accepted
bandwidth vs offered load (the CNF bandwidth graph) and average latency
vs offered load, one curve per routing/VC variant, exactly the panel
layout of the paper's Figures 5 and 6.

Where a measured series corresponds to a configuration the paper
reports, the hard-coded reference saturation point (from §8/§9) is
overlaid as a dashed vertical marker and the scorecard computes a
**fidelity score** — ``1 − |sat_measured − sat_paper| / sat_paper``,
clamped at zero — per series and per figure.  The summary table at the
top of the page is the reproduction health dashboard: a fidelity dip
after a code change flags a behavioural regression the unit tests may
not see.

Typical use::

    repro-net sweep --network tree --pattern uniform --ledger runs.jsonl
    repro-net report --ledger runs.jsonl --out scorecard.html
"""

from __future__ import annotations

import html
import pathlib
from dataclasses import dataclass, field

from ..errors import AnalysisError
from ..metrics.saturation import DEFAULT_TOLERANCE, saturation_point
from ..metrics.series import LoadSweepSeries
from ..sim.results import RunResult

#: Okabe–Ito colour-blind-safe palette, cycled across series
_PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9")


@dataclass(frozen=True)
class PaperRef:
    """One paper-reported operating point for a specific configuration.

    Attributes:
        figure: the source figure, e.g. ``"Fig 5"``.
        saturation: saturation load as a fraction of capacity.
        latency_presat: pre-saturation latency plateau in cycles, where
            the paper quotes one (``None`` otherwise).
    """

    figure: str
    saturation: float
    latency_presat: float | None = None


#: Figure 5 (§8): 4-ary 4-tree, adaptive routing — (pattern, vcs) -> saturation
_FIG5_SATURATION = {
    ("uniform", 1): 0.36,
    ("uniform", 2): 0.55,
    ("uniform", 4): 0.72,
    ("complement", 1): 0.95,
    ("complement", 2): 0.95,
    ("complement", 4): 0.95,
    ("transpose", 1): 0.33,
    ("transpose", 2): 0.60,
    ("transpose", 4): 0.78,
    ("bitrev", 1): 0.33,
    ("bitrev", 2): 0.60,
    ("bitrev", 4): 0.78,
}

#: Figure 6 (§9): 16-ary 2-cube, 4 VCs — (pattern, algorithm) -> saturation
_FIG6_SATURATION = {
    ("uniform", "dor"): 0.60,
    ("uniform", "duato"): 0.80,
    ("complement", "dor"): 0.47,
    ("complement", "duato"): 0.35,
    ("transpose", "dor"): 0.22,
    ("transpose", "duato"): 0.50,
    ("bitrev", "dor"): 0.20,
    ("bitrev", "duato"): 0.60,
}

#: §9 quotes ≈70 cycles of pre-saturation latency for the uniform cube
_FIG6_LATENCY_PRESAT = {("uniform", "dor"): 70.0, ("uniform", "duato"): 70.0}


def paper_reference(
    network: str, k: int, n: int, algorithm: str, vcs: int, pattern: str
) -> PaperRef | None:
    """The paper's reference point for one exact configuration, if any.

    Only the paper's own networks carry references: the 4-ary 4-tree
    under adaptive routing (Figure 5, keyed by VC count) and the 16-ary
    2-cube with 4 VCs (Figure 6, keyed by algorithm).  Everything else —
    extension patterns, other shapes — renders without an overlay.
    """
    if network == "tree" and (k, n) == (4, 4) and algorithm == "tree_adaptive":
        sat = _FIG5_SATURATION.get((pattern, vcs))
        if sat is not None:
            return PaperRef(figure="Fig 5", saturation=sat)
    if network == "cube" and (k, n) == (16, 2) and vcs == 4:
        sat = _FIG6_SATURATION.get((pattern, algorithm))
        if sat is not None:
            return PaperRef(
                figure="Fig 6",
                saturation=sat,
                latency_presat=_FIG6_LATENCY_PRESAT.get((pattern, algorithm)),
            )
    return None


@dataclass
class ScorecardFigure:
    """One rendered figure: all curves sharing a network shape + pattern.

    Attributes:
        title: heading, e.g. ``"tree 4-ary 4-dim, uniform traffic"``.
        series: one sweep series per routing/VC variant, each labelled.
        refs: label -> :class:`PaperRef` for series the paper reports.
        saturation: label -> measured saturation point.
        fidelity: label -> fidelity score in [0, 1] (referenced series
            only).
    """

    title: str
    series: list[LoadSweepSeries] = field(default_factory=list)
    refs: dict[str, PaperRef] = field(default_factory=dict)
    saturation: dict[str, float] = field(default_factory=dict)
    fidelity: dict[str, float] = field(default_factory=dict)

    @property
    def score(self) -> float | None:
        """Mean fidelity over the referenced series (None if none)."""
        if not self.fidelity:
            return None
        return sum(self.fidelity.values()) / len(self.fidelity)


def _series_label(algorithm: str, vcs: int) -> str:
    return f"{algorithm}, {vcs} vc"


def _figure_title(network: str, k: int, n: int, pattern: str) -> str:
    return f"{network} {k}-ary {n}-dim, {pattern} traffic"


def forensics_by_figure(results: list[RunResult]) -> dict[str, tuple[str, dict]]:
    """Pick one forensics document per scorecard figure.

    Runs instrumented with the forensics tier carry the document on
    their telemetry; for each (network, shape, pattern) figure the run
    at the highest offered load wins — congestion forensics are most
    informative where the network is closest to saturation.  Returns
    ``figure title -> (run label, forensics document)``.
    """
    chosen: dict[str, tuple[float, str, dict]] = {}
    for result in results:
        t = result.telemetry
        if t is None or not getattr(t, "forensics", None):
            continue
        c = result.config
        title = _figure_title(c.network, c.k, c.n, c.pattern)
        load = c.load
        prev = chosen.get(title)
        if prev is None or load > prev[0]:
            label = f"{_series_label(c.algorithm, c.vcs)}, load {load:g}"
            chosen[title] = (load, label, t.forensics)
    return {title: (label, doc) for title, (_, label, doc) in chosen.items()}


def partition_results(
    results: list[RunResult],
) -> tuple[list[RunResult], list[RunResult], list[RunResult]]:
    """Split chaos and overload runs out of a result set.

    A chaos run carries the storm recipe on ``telemetry.reliability``
    and an overload run the mode document (``"overload"``); both measure
    behaviour the paper's CNF figures do not — goodput under faults and
    congestion collapse past saturation — so neither may contaminate
    the paper figures (nor each other's panel).  Returns
    ``(plain, chaos, congestion)``.
    """
    plain: list[RunResult] = []
    chaos: list[RunResult] = []
    congestion: list[RunResult] = []
    for result in results:
        rel = getattr(result.telemetry, "reliability", None) or {}
        if "storm" in rel:
            chaos.append(result)
        elif "overload" in rel:
            congestion.append(result)
        else:
            plain.append(result)
    return plain, chaos, congestion


def partition_reliability(
    results: list[RunResult],
) -> tuple[list[RunResult], list[RunResult]]:
    """Split chaos-campaign runs out of a result set.

    Back-compat wrapper around :func:`partition_results`: overload runs
    land in the *plain* half here, so callers mixing congestion
    campaigns into one ledger should prefer the three-way partition.
    Returns ``(plain, chaos)``.
    """
    plain, chaos, congestion = partition_results(results)
    return plain + congestion, chaos


@dataclass
class ReliabilityCurve:
    """One configuration's fault-rate curve from a chaos campaign.

    ``points`` are ``(fault_rate, goodput_fraction, retransmit_overhead,
    given_up, dropped)`` rows, load-averaged per fault rate and sorted
    by fault rate.
    """

    label: str
    points: list[tuple[float, float, float, int, int]] = field(default_factory=list)


def reliability_curves(results: list[RunResult]) -> list[ReliabilityCurve]:
    """Aggregate chaos runs into goodput-degradation curves.

    Runs sharing (network, shape, algorithm, vcs, repair time) form one
    curve; within it every fault rate averages its load grid — the same
    aggregation :func:`repro.experiments.chaos.degradation_rows` applies
    campaign-side, recomputed here from the ledger so the scorecard
    needs only run documents.
    """
    groups: dict[tuple, dict[float, list[RunResult]]] = {}
    for result in results:
        rel = getattr(result.telemetry, "reliability", None) or {}
        storm = rel.get("storm")
        if storm is None:
            continue
        c = result.config
        key = (c.network, c.k, c.n, c.algorithm, c.vcs, storm["repair_cycles"])
        groups.setdefault(key, {}).setdefault(storm["fault_rate"], []).append(result)
    curves = []
    for (network, k, n, algorithm, vcs, repair), rates in sorted(groups.items()):
        label = f"{network} {k}-ary {n}-dim, {_series_label(algorithm, vcs)}"
        if repair:
            label += f", repair {repair} cyc"
        curve = ReliabilityCurve(label=label)
        for rate, runs in sorted(rates.items()):
            curve.points.append(
                (
                    rate,
                    sum(r.goodput_fraction for r in runs) / len(runs),
                    sum(r.retransmit_overhead for r in runs) / len(runs),
                    sum(r.given_up_packets for r in runs),
                    sum(r.dropped_packets for r in runs),
                )
            )
        curves.append(curve)
    return curves


@dataclass
class CongestionCurve:
    """One overload mode's collapse curve from a congestion campaign.

    ``points`` are ``(factor, goodput_fraction, p99_latency, given_up)``
    rows — offered load in saturation multiples, seed-averaged per
    factor and sorted by factor (``p99_latency`` is None when the run
    kept no latency samples).
    """

    label: str
    mode: str
    saturation: float
    points: list[tuple[float, float, float | None, int]] = field(default_factory=list)


def congestion_curves(results: list[RunResult]) -> list[CongestionCurve]:
    """Aggregate overload runs into congestion-collapse curves.

    Runs sharing (network, shape, algorithm, vcs, mode, arbiter) form
    one curve; within it every saturation factor averages its seeds.
    Open- and closed-loop sweeps of the same shape therefore render as
    two curves over one axis — the collapse comparison the campaign
    exists to make.
    """
    groups: dict[tuple, dict[float, list[RunResult]]] = {}
    sats: dict[tuple, float] = {}
    for result in results:
        rel = getattr(result.telemetry, "reliability", None) or {}
        overload = rel.get("overload")
        if overload is None:
            continue
        c = result.config
        key = (
            c.network, c.k, c.n, c.algorithm, c.vcs,
            overload["mode"], overload["arbiter"],
        )
        sats[key] = overload["saturation"]
        groups.setdefault(key, {}).setdefault(overload["factor"], []).append(result)
    curves = []
    for key, factors in sorted(groups.items()):
        network, k, n, algorithm, vcs, mode, arbiter = key
        label = (
            f"{network} {k}-ary {n}-dim, {_series_label(algorithm, vcs)}, "
            f"{mode} loop ({arbiter})"
        )
        curve = CongestionCurve(label=label, mode=mode, saturation=sats[key])
        for factor, runs in sorted(factors.items()):
            p99s = []
            for r in runs:
                pct = r.latency_percentiles()
                if pct is not None:
                    p99s.append(pct["p99"])
            curve.points.append(
                (
                    factor,
                    sum(r.goodput_fraction for r in runs) / len(runs),
                    max(p99s) if p99s else None,
                    sum(r.given_up_packets for r in runs),
                )
            )
        curves.append(curve)
    return curves


def figures_from_results(
    results: list[RunResult], tol: float = DEFAULT_TOLERANCE
) -> list[ScorecardFigure]:
    """Group raw runs into scorecard figures with fidelity scores.

    Runs sharing (network, k, n, pattern) land in one figure; within it,
    each (algorithm, vcs) variant becomes one curve sorted by offered
    load.  Duplicate recipes (same load, different seeds) all plot —
    scatter is information, not noise.

    Raises:
        AnalysisError: when ``results`` is empty.
    """
    if not results:
        raise AnalysisError("no runs to score: the ledger matched nothing")
    groups: dict[tuple, dict[tuple, LoadSweepSeries]] = {}
    for result in results:
        c = result.config
        fig_key = (c.network, c.k, c.n, c.pattern)
        curves = groups.setdefault(fig_key, {})
        curve_key = (c.algorithm, c.vcs)
        series = curves.get(curve_key)
        if series is None:
            series = LoadSweepSeries(
                label=_series_label(c.algorithm, c.vcs),
                network=c.network,
                algorithm=c.algorithm,
                vcs=c.vcs,
                pattern=c.pattern,
            )
            curves[curve_key] = series
        series.add(result)

    figures = []
    for (network, k, n, pattern), curves in sorted(groups.items()):
        fig = ScorecardFigure(title=_figure_title(network, k, n, pattern))
        for (algorithm, vcs), series in sorted(curves.items()):
            fig.series.append(series)
            sat = saturation_point(series, tol)
            fig.saturation[series.label] = sat
            ref = paper_reference(network, k, n, algorithm, vcs, pattern)
            if ref is not None:
                fig.refs[series.label] = ref
                err = abs(sat - ref.saturation) / ref.saturation
                fig.fidelity[series.label] = max(0.0, 1.0 - err)
        figures.append(fig)
    return figures


# -- SVG assembly ----------------------------------------------------------------

#: panel geometry (one figure = two panels in a single <svg>)
_PANEL_W, _PANEL_H = 340, 230
_MARGIN_L, _MARGIN_T = 64, 30
_PANEL_GAP = 120
_SVG_W = _MARGIN_L + 2 * _PANEL_W + _PANEL_GAP + 30
_SVG_H = _MARGIN_T + _PANEL_H + 60


def _fmt(value: float) -> str:
    """Short, locale-free coordinate/tick formatting."""
    return f"{value:.4g}"


class _Panel:
    """Maps data coordinates into one panel's SVG pixel box."""

    def __init__(self, x0: float, x1: float, y0: float, y1: float, left: float):
        self.x0, self.x1 = x0, x1 or 1.0
        self.y0, self.y1 = y0, y1 or 1.0
        self.left = left

    def x(self, v: float) -> float:
        span = (self.x1 - self.x0) or 1.0
        return self.left + (v - self.x0) / span * _PANEL_W

    def y(self, v: float) -> float:
        span = (self.y1 - self.y0) or 1.0
        return _MARGIN_T + _PANEL_H - (v - self.y0) / span * _PANEL_H

    def frame(self, title: str, xlabel: str, ylabel: str) -> list[str]:
        top, bottom = _MARGIN_T, _MARGIN_T + _PANEL_H
        right = self.left + _PANEL_W
        parts = [
            f'<rect x="{self.left}" y="{top}" width="{_PANEL_W}" height="{_PANEL_H}" '
            f'class="panel"/>',
            f'<text x="{self.left + _PANEL_W / 2}" y="{top - 10}" class="ptitle">'
            f"{html.escape(title)}</text>",
            f'<text x="{self.left + _PANEL_W / 2}" y="{bottom + 36}" class="axis">'
            f"{html.escape(xlabel)}</text>",
            f'<text x="{self.left - 48}" y="{top + _PANEL_H / 2}" class="axis" '
            f'transform="rotate(-90 {self.left - 48} {top + _PANEL_H / 2})">'
            f"{html.escape(ylabel)}</text>",
        ]
        for frac in (0.0, 0.5, 1.0):
            xv = self.x0 + frac * (self.x1 - self.x0)
            yv = self.y0 + frac * (self.y1 - self.y0)
            px, py = self.x(xv), self.y(yv)
            parts.append(
                f'<line x1="{px:.1f}" y1="{top}" x2="{px:.1f}" y2="{bottom}" class="grid"/>'
            )
            parts.append(
                f'<line x1="{self.left}" y1="{py:.1f}" x2="{right}" y2="{py:.1f}" class="grid"/>'
            )
            parts.append(
                f'<text x="{px:.1f}" y="{bottom + 16}" class="tick">{_fmt(xv)}</text>'
            )
            parts.append(
                f'<text x="{self.left - 6}" y="{py + 4:.1f}" class="tick ylab">{_fmt(yv)}</text>'
            )
        return parts

    def polyline(self, pts: list[tuple[float, float]], color: str) -> list[str]:
        if not pts:
            return []
        coords = " ".join(f"{self.x(x):.1f},{self.y(y):.1f}" for x, y in pts)
        parts = []
        if len(pts) > 1:
            parts.append(f'<polyline points="{coords}" class="curve" stroke="{color}"/>')
        parts.extend(
            f'<circle cx="{self.x(x):.1f}" cy="{self.y(y):.1f}" r="2.6" fill="{color}"/>'
            for x, y in pts
        )
        return parts

    def vline(self, xv: float, color: str, label: str) -> list[str]:
        px = self.x(xv)
        return [
            f'<line x1="{px:.1f}" y1="{_MARGIN_T}" x2="{px:.1f}" '
            f'y2="{_MARGIN_T + _PANEL_H}" class="ref" stroke="{color}"/>',
            f'<text x="{px:.1f}" y="{_MARGIN_T + 12}" class="reftext" fill="{color}">'
            f"{html.escape(label)}</text>",
        ]

    def hline(self, yv: float, color: str, label: str) -> list[str]:
        py = self.y(yv)
        right = self.left + _PANEL_W
        return [
            f'<line x1="{self.left}" y1="{py:.1f}" x2="{right}" y2="{py:.1f}" '
            f'class="ref" stroke="{color}"/>',
            f'<text x="{right - 4}" y="{py - 4:.1f}" class="reftext anchor-end" '
            f'fill="{color}">{html.escape(label)}</text>',
        ]


def _figure_svg(fig: ScorecardFigure) -> str:
    """One figure as a single standalone ``<svg>`` (two panels)."""
    xs = [p.offered for s in fig.series for p in s.points]
    bw = [max(p.accepted, p.offered_measured) for s in fig.series for p in s.points]
    lat = [p.latency_cycles for s in fig.series for p in s.points if p.latency_cycles]
    ref_sats = [r.saturation for r in fig.refs.values()]
    ref_lats = [r.latency_presat for r in fig.refs.values() if r.latency_presat]
    x_hi = max(xs + ref_sats) * 1.05
    bw_hi = max(bw + ref_sats) * 1.1
    lat_hi = max(lat + ref_lats) * 1.1 if (lat or ref_lats) else 1.0

    left_b = _Panel(0.0, x_hi, 0.0, bw_hi, _MARGIN_L)
    left_l = _Panel(0.0, x_hi, 0.0, lat_hi, _MARGIN_L + _PANEL_W + _PANEL_GAP)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {_SVG_W} {_SVG_H}" '
        f'width="{_SVG_W}" height="{_SVG_H}" role="img">'
    ]
    parts += left_b.frame("accepted bandwidth", "offered (fraction of capacity)",
                          "accepted (fraction)")
    parts += left_l.frame("network latency", "offered (fraction of capacity)",
                          "latency (cycles)")
    for i, series in enumerate(fig.series):
        color = _PALETTE[i % len(_PALETTE)]
        parts += left_b.polyline(
            [(p.offered, p.accepted) for p in series.points], color
        )
        parts += left_l.polyline(
            [
                (p.offered, p.latency_cycles)
                for p in series.points
                if p.latency_cycles is not None
            ],
            color,
        )
        ref = fig.refs.get(series.label)
        if ref is not None:
            parts += left_b.vline(
                ref.saturation, color, f"paper {_fmt(ref.saturation)}"
            )
            if ref.latency_presat is not None:
                parts += left_l.hline(
                    ref.latency_presat, color, f"paper ≈{_fmt(ref.latency_presat)}"
                )
    parts.append("</svg>")
    return "\n".join(parts)


def _reliability_svg(curves: list[ReliabilityCurve]) -> str:
    """Goodput-degradation and retransmit-overhead panels (one ``<svg>``)."""
    rates = [p[0] for c in curves for p in c.points]
    goodput = [p[1] for c in curves for p in c.points]
    overhead = [p[2] for c in curves for p in c.points]
    x_hi = (max(rates) * 1.1) if max(rates, default=0.0) else 0.25
    g_hi = (max(goodput) * 1.15) if goodput else 1.0
    o_hi = (max(overhead) * 1.15) if max(overhead, default=0.0) else 0.1

    left = _Panel(0.0, x_hi, 0.0, g_hi, _MARGIN_L)
    right = _Panel(0.0, x_hi, 0.0, o_hi, _MARGIN_L + _PANEL_W + _PANEL_GAP)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {_SVG_W} {_SVG_H}" '
        f'width="{_SVG_W}" height="{_SVG_H}" role="img">'
    ]
    parts += left.frame("end-to-end goodput", "fault rate (fraction of channels)",
                        "goodput (fraction of capacity)")
    parts += right.frame("retransmit overhead", "fault rate (fraction of channels)",
                         "retransmitted / injected")
    for i, curve in enumerate(curves):
        color = _PALETTE[i % len(_PALETTE)]
        parts += left.polyline([(p[0], p[1]) for p in curve.points], color)
        parts += right.polyline([(p[0], p[2]) for p in curve.points], color)
    parts.append("</svg>")
    return "\n".join(parts)


def _reliability_section(curves: list[ReliabilityCurve]) -> list[str]:
    """The chaos-campaign panel: curves, legend and accounting table."""
    parts = ["<h2>Reliability under fail-stop fault storms</h2>"]
    parts.append(
        '<p class="muted">Randomized fail-stop link faults destroy in-flight '
        "worms; the source-side reliable transport recovers them by timeout "
        "and retransmission.  Goodput counts first-copy payload only; each "
        "point averages a chaos campaign's offered-load grid.</p>"
    )
    legend = []
    for i, curve in enumerate(curves):
        color = _PALETTE[i % len(_PALETTE)]
        legend.append(
            f'<span><i class="swatch" style="background:{color}"></i>'
            f"{html.escape(curve.label)}</span>"
        )
    parts.append(f'<p class="legend">{"".join(legend)}</p>')
    parts.append(_reliability_svg(curves))
    parts.append("<table>")
    parts.append(
        "<tr><th>configuration</th><th>fault rate</th><th>goodput</th>"
        "<th>retransmit overhead</th><th>given up</th><th>dropped</th></tr>"
    )
    for curve in curves:
        for rate, goodput, overhead, gave_up, dropped in curve.points:
            gave_up_cls = "num" if gave_up == 0 else "num warn"
            parts.append(
                f"<tr><td>{html.escape(curve.label)}</td>"
                f'<td class="num">{rate:.2f}</td>'
                f'<td class="num">{goodput:.3f}</td>'
                f'<td class="num">{overhead:.1%}</td>'
                f'<td class="{gave_up_cls}">{gave_up}</td>'
                f'<td class="num">{dropped}</td></tr>'
            )
    parts.append("</table>")
    return parts


def _congestion_svg(curves: list[CongestionCurve]) -> str:
    """Goodput and p99-latency collapse panels (one ``<svg>``).

    The x axis is offered load in saturation multiples, so open- and
    closed-loop curves of any shape share one frame, with the paper's
    saturation point at exactly 1.0 (dashed marker).
    """
    factors = [p[0] for c in curves for p in c.points]
    goodput = [p[1] for c in curves for p in c.points]
    p99 = [p[2] for c in curves for p in c.points if p[2] is not None]
    x_hi = (max(factors + [1.0])) * 1.05
    g_hi = (max(goodput) * 1.15) if goodput else 1.0
    l_hi = (max(p99) * 1.1) if p99 else 1.0

    left = _Panel(0.0, x_hi, 0.0, g_hi, _MARGIN_L)
    right = _Panel(0.0, x_hi, 0.0, l_hi, _MARGIN_L + _PANEL_W + _PANEL_GAP)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {_SVG_W} {_SVG_H}" '
        f'width="{_SVG_W}" height="{_SVG_H}" role="img">'
    ]
    parts += left.frame("goodput past saturation", "offered load (× saturation)",
                        "goodput (fraction of capacity)")
    parts += right.frame("tail latency", "offered load (× saturation)",
                         "p99 latency (cycles)")
    for i, curve in enumerate(curves):
        color = _PALETTE[i % len(_PALETTE)]
        parts += left.polyline([(p[0], p[1]) for p in curve.points], color)
        parts += right.polyline(
            [(p[0], p[2]) for p in curve.points if p[2] is not None], color
        )
    parts += left.vline(1.0, "#666", "saturation")
    parts += right.vline(1.0, "#666", "saturation")
    parts.append("</svg>")
    return "\n".join(parts)


def _congestion_section(curves: list[CongestionCurve]) -> list[str]:
    """The congestion-collapse panel: curves, legend and per-point table."""
    parts = ["<h2>Congestion collapse past saturation</h2>"]
    parts.append(
        '<p class="muted">Overload campaigns drive the network past the '
        "paper's saturation load.  Open loop, the reliable transport "
        "retransmits blindly and goodput collapses while tail latency "
        "grows; closed loop, hot-link marking and per-destination AIMD "
        "windows throttle injection at the source — graceful degradation "
        "instead of collapse.  Goodput counts first-copy payload only.</p>"
    )
    legend = []
    for i, curve in enumerate(curves):
        color = _PALETTE[i % len(_PALETTE)]
        legend.append(
            f'<span><i class="swatch" style="background:{color}"></i>'
            f"{html.escape(curve.label)}</span>"
        )
    parts.append(f'<p class="legend">{"".join(legend)}</p>')
    parts.append(_congestion_svg(curves))
    parts.append("<table>")
    parts.append(
        "<tr><th>configuration</th><th>× saturation</th><th>goodput</th>"
        "<th>p99 latency</th><th>given up</th></tr>"
    )
    for curve in curves:
        for factor, goodput, p99, gave_up in curve.points:
            gave_up_cls = "num" if gave_up == 0 else "num warn"
            p99_cell = f"{p99:.0f}" if p99 is not None else "—"
            parts.append(
                f"<tr><td>{html.escape(curve.label)}</td>"
                f'<td class="num">{factor:.2f}</td>'
                f'<td class="num">{goodput:.3f}</td>'
                f'<td class="num">{p99_cell}</td>'
                f'<td class="{gave_up_cls}">{gave_up}</td></tr>'
            )
    parts.append("</table>")
    return parts


#: dynamics panel cap: entries beyond this stay in the ledger only
_MAX_DYNAMICS = 8


def flight_entries(results: list[RunResult]) -> list[tuple[str, dict]]:
    """Pick the flight documents worth rendering in the dynamics panel.

    Flight-instrumented runs carry the timeline on ``telemetry.flight``.
    Overload runs keep one entry per (shape, mode, arbiter) — the
    highest saturation factor wins, where the open/closed contrast is
    starkest.  Chaos runs keep one per (shape, fault rate) and plain
    runs one per (shape, pattern, variant), the highest offered load
    winning in both.  Returns ``[(label, flight document), ...]``
    sorted by label, capped at :data:`_MAX_DYNAMICS` entries.
    """
    chosen: dict[tuple, tuple[float, str, dict]] = {}
    for result in results:
        t = result.telemetry
        if t is None or getattr(t, "flight", None) is None:
            continue
        c = result.config
        shape = f"{c.network} {c.k}-ary {c.n}-dim"
        rel = getattr(t, "reliability", None) or {}
        overload = rel.get("overload")
        storm = rel.get("storm")
        if overload is not None:
            key = (shape, "overload", overload["mode"], overload["arbiter"])
            rank = overload["factor"]
            label = (
                f"{shape}, {c.pattern}, {overload['mode']} loop "
                f"({overload['arbiter']}), {overload['factor']:g}× saturation"
            )
        elif storm is not None:
            key = (shape, "chaos", storm["fault_rate"], storm["repair_cycles"])
            rank = c.load
            label = (
                f"{shape}, chaos fault rate {storm['fault_rate']:g}, "
                f"load {c.load:g}"
            )
        else:
            key = (shape, "plain", c.pattern, c.algorithm, c.vcs)
            rank = c.load
            label = (
                f"{shape}, {c.pattern}, {_series_label(c.algorithm, c.vcs)}, "
                f"load {c.load:g}"
            )
        prev = chosen.get(key)
        if prev is None or rank > prev[0]:
            chosen[key] = (rank, label, t.flight)
    entries = sorted(
        ((label, doc) for _, label, doc in chosen.values()), key=lambda e: e[0]
    )
    return entries[:_MAX_DYNAMICS]


def statehash_entries(results: list[RunResult]) -> list[tuple[str, dict]]:
    """The digest chains worth rendering in the audit panel.

    Every result carrying ``telemetry.statehash`` contributes one row,
    labelled like the dynamics panel.  All rows are kept (the table is
    cheap and the whole point is spotting an odd chain head among
    replicas), sorted by (label, seed) for stable output.
    """
    entries = []
    for result in results:
        t = result.telemetry
        if t is None or getattr(t, "statehash", None) is None:
            continue
        c = result.config
        label = (
            f"{c.network} {c.k}-ary {c.n}-dim, {c.pattern}, "
            f"{_series_label(c.algorithm, c.vcs)}, load {c.load:g}, "
            f"seed {c.seed}"
        )
        entries.append((label, t.statehash))
    entries.sort(key=lambda e: e[0])
    return entries


def _dynamics_svg(entries: list[tuple[str, dict, str]]) -> str:
    """Delivered-rate and backlog overlays over the shared cycle axis.

    One curve per flight entry; for an open-vs-closed overload pair this
    is the collapse contrast in the time domain — the open loop's
    delivered rate sagging under a growing backlog while the closed
    loop's stays level.  Annotations render as dashed markers with
    hover tooltips on the rate panel.
    """
    x_hi = y_hi = b_hi = 0.0
    for _, doc, _ in entries:
        series = doc.get("series", {})
        cycles = series.get("cycle") or [1]
        spans = series.get("span") or [1] * len(cycles)
        x_hi = max(x_hi, cycles[-1])
        for key in ("offered", "delivered"):
            for i, v in enumerate(series.get(key) or ()):
                y_hi = max(y_hi, v / (spans[i] or 1))
        b_hi = max(b_hi, max(series.get("backlog") or [0]))
    left = _Panel(0.0, x_hi or 1.0, 0.0, (y_hi or 1.0) * 1.1, _MARGIN_L)
    right = _Panel(
        0.0, x_hi or 1.0, 0.0, (b_hi or 1.0) * 1.1,
        _MARGIN_L + _PANEL_W + _PANEL_GAP,
    )
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {_SVG_W} {_SVG_H}" '
        f'width="{_SVG_W}" height="{_SVG_H}" role="img">'
    ]
    parts += left.frame("delivery rate", "cycle", "delivered (flits/cycle)")
    parts += right.frame("source backlog", "cycle", "queued flits")
    top, bottom = _MARGIN_T, _MARGIN_T + _PANEL_H
    for label, doc, color in entries:
        series = doc.get("series", {})
        cycles = series.get("cycle") or []
        spans = series.get("span") or [1] * len(cycles)
        delivered = series.get("delivered") or []
        backlog = series.get("backlog") or []
        rate = " ".join(
            f"{left.x(cycles[i]):.1f},"
            f"{left.y(delivered[i] / (spans[i] or 1)):.1f}"
            for i in range(len(cycles))
        )
        parts.append(
            f'<polyline points="{rate}" class="curve" stroke="{color}">'
            f"<title>{html.escape(label)}</title></polyline>"
        )
        if backlog:
            queue = " ".join(
                f"{right.x(cycles[i]):.1f},{right.y(backlog[i]):.1f}"
                for i in range(len(cycles))
            )
            parts.append(
                f'<polyline points="{queue}" class="curve" stroke="{color}">'
                f"<title>{html.escape(label)}</title></polyline>"
            )
        for ann in doc.get("annotations", ()):
            px = left.x(min(ann.get("cycle", 0), x_hi))
            tooltip = f"{label}: {ann.get('kind', '?')} @ {ann.get('cycle', '?')}"
            parts.append(
                f'<line x1="{px:.1f}" y1="{top}" x2="{px:.1f}" y2="{bottom}" '
                f'class="ref" stroke="{color}">'
                f"<title>{html.escape(tooltip)}</title></line>"
            )
    parts.append("</svg>")
    return "\n".join(parts)


def _dynamics_section(entries: list[tuple[str, dict]]) -> list[str]:
    """The flight-recorder panel: rate/backlog overlay + per-run timelines."""
    from .heatmap import flight_timeline_svg

    colored = [
        (label, doc, _PALETTE[i % len(_PALETTE)])
        for i, (label, doc) in enumerate(entries)
    ]
    parts = ["<h2>Dynamics (flight recorder)</h2>"]
    parts.append(
        '<p class="muted">Bounded multi-layer time series sampled during '
        "flight-instrumented runs: injection and delivery rates, fabric "
        "occupancy, transport retransmissions and congestion-window "
        "dynamics on one cycle axis.  Dashed markers stamp annotated "
        "events — fault strikes, the first ECN mark and window decrease, "
        "and the collapse onset (sustained delivery shortfall against the "
        "offered rate).</p>"
    )
    legend = [
        f'<span><i class="swatch" style="background:{color}"></i>'
        f"{html.escape(label)}</span>"
        for label, _, color in colored
    ]
    parts.append(f'<p class="legend">{"".join(legend)}</p>')
    parts.append(_dynamics_svg(colored))
    rows = []
    for label, doc, _ in colored:
        for ann in doc.get("annotations", ()):
            rows.append((label, ann))
    if rows:
        parts.append("<table>")
        parts.append(
            "<tr><th>run</th><th>annotation</th><th>cycle</th>"
            "<th>detail</th></tr>"
        )
        for label, ann in rows:
            kind = ann.get("kind", "?")
            cls = "warn" if kind in ("collapse_onset", "stall") else "num"
            parts.append(
                f"<tr><td>{html.escape(label)}</td>"
                f'<td class="{cls}">{html.escape(kind)}</td>'
                f'<td class="num">{ann.get("cycle", "?")}</td>'
                f"<td>{html.escape(str(ann.get('detail') or ''))}</td></tr>"
            )
        parts.append("</table>")
    for label, doc, _ in colored:
        parts.append(f"<h3>flight timeline ({html.escape(label)})</h3>")
        parts.append(flight_timeline_svg(doc))
    return parts


def _statehash_section(entries: list[tuple[str, dict]]) -> list[str]:
    """The state-digest audit panel: one chain summary row per run.

    Runs sharing a genesis (identical full config, seed included) are
    replica groups: matching chain heads render as a reproducibility
    check mark, a mismatch flags a divergence for ``repro diff``.
    """
    parts = ["<h2>State-digest audit</h2>"]
    parts.append(
        '<p class="muted">Bounded Merkle-style chains of per-interval '
        "state roots (lanes, credits, routing, injection queues, "
        "transport windows, RNG positions).  Two runs of one recipe must "
        "agree on every root; <code>repro diff</code> bisects any "
        "mismatch to the exact first divergent cycle.</p>"
    )
    by_genesis: dict[str, set[str]] = {}
    for _, doc in entries:
        by_genesis.setdefault(doc["genesis"], set()).add(doc["chain_head"])
    parts.append("<table>")
    parts.append(
        "<tr><th>run</th><th>genesis (config digest)</th><th>samples</th>"
        "<th>stride</th><th>final root</th><th>chain head</th>"
        "<th>replicas</th></tr>"
    )
    for label, doc in entries:
        heads = by_genesis[doc["genesis"]]
        if len(heads) > 1:
            replica = '<td class="bad">diverged</td>'
        else:
            replica = '<td class="good">consistent</td>'
        final_root = doc["roots"][-1] if doc["roots"] else "—"
        parts.append(
            f"<tr><td>{html.escape(label)}</td>"
            f"<td><code>{html.escape(doc['genesis'])}</code></td>"
            f'<td class="num">{doc["entries"]}</td>'
            f'<td class="num">{doc["stride"]}</td>'
            f"<td><code>{html.escape(final_root)}</code></td>"
            f"<td><code>{html.escape(doc['chain_head'])}</code></td>"
            f"{replica}</tr>"
        )
    parts.append("</table>")
    return parts


def render_diff_html(doc: dict, title: str = "Divergence report") -> str:
    """Self-contained HTML for one ``repro diff`` outcome document."""
    verdict = (
        '<p class="good">IDENTICAL over '
        f"{doc['compared_entries']} common sampled cycles</p>"
        if doc["identical"]
        else '<p class="bad">DIVERGED — first divergent interval ends cycle '
        f"{doc['first_divergent_interval_cycle']}, subsystems: "
        f"{html.escape(', '.join(doc['subsystems_divergent']) or '?')}</p>"
    )
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8"/>',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        verdict,
        "<table>",
        "<tr><th>side</th><th>label</th><th>config</th><th>seed</th>"
        "<th>samples</th><th>stride</th><th>chain head</th></tr>",
    ]
    for key in ("a", "b"):
        side = doc[key]
        parts.append(
            f"<tr><td>{key}</td><td>{html.escape(side['label'])}</td>"
            f"<td><code>{html.escape(side['config_hash'])}</code></td>"
            f'<td class="num">{side["seed"]}</td>'
            f'<td class="num">{side["entries"]}</td>'
            f'<td class="num">{side["stride"]}</td>'
            f"<td><code>{html.escape(side['chain_head'])}</code></td></tr>"
        )
    parts.append("</table>")
    for note in doc["notes"]:
        parts.append(f'<p class="muted">{html.escape(note)}</p>')
    bisection = doc.get("bisection")
    if bisection is not None:
        status = bisection["status"]
        if status == "exact":
            parts.append(
                f"<h2>Bisected to cycle {bisection['cycle']}</h2>"
                f'<p>Divergent subsystems at that cycle: '
                f"{html.escape(', '.join(bisection.get('subsystems', [])) or 'root only')}"
                "</p>"
            )
        else:
            parts.append(f'<h2>Bisection: <span class="warn">{html.escape(status)}</span></h2>')
    if doc["findings"]:
        parts.append("<table>")
        parts.append(
            "<tr><th>subsystem</th><th>location</th><th>lane</th>"
            "<th>field</th><th>a</th><th>b</th></tr>"
        )
        for f in doc["findings"]:
            parts.append(
                f"<tr><td>{html.escape(f['subsystem'])}</td>"
                f"<td>{html.escape(str(f['location'] or ''))}</td>"
                f"<td>{html.escape(str(f['lane'] or ''))}</td>"
                f"<td><code>{html.escape(f['path'])}</code></td>"
                f"<td><code>{html.escape(repr(f['a']))}</code></td>"
                f"<td><code>{html.escape(repr(f['b']))}</code></td></tr>"
            )
        parts.append("</table>")
        if doc["findings_dropped"]:
            parts.append(
                f'<p class="muted">… {doc["findings_dropped"]} more differing '
                "fields (raise --max-findings to see them)</p>"
            )
    parts.append("</body></html>")
    return "\n".join(parts)


_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 960px;
       color: #1a1a2e; background: #fff; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2.2rem; }
table { border-collapse: collapse; margin: 1rem 0; width: 100%; }
th, td { border-bottom: 1px solid #d7d7e0; padding: .35rem .6rem; text-align: left; }
th { background: #f4f4f8; }
td.num { font-variant-numeric: tabular-nums; text-align: right; }
.good { color: #00705f; font-weight: 600; }
.warn { color: #9a4a00; font-weight: 600; }
.bad  { color: #a02020; font-weight: 600; }
.muted { color: #777; }
svg { display: block; margin: .6rem 0 0; }
svg .panel { fill: none; stroke: #444; stroke-width: 1; }
svg .grid { stroke: #e4e4ec; stroke-width: 1; }
svg .curve { fill: none; stroke-width: 1.8; }
svg .ref { stroke-dasharray: 5 4; stroke-width: 1.4; opacity: .85; }
svg .reftext { font: 10px system-ui, sans-serif; text-anchor: middle; }
svg .anchor-end { text-anchor: end; }
svg .ptitle { font: 600 12px system-ui, sans-serif; text-anchor: middle; }
svg .axis { font: 11px system-ui, sans-serif; text-anchor: middle; fill: #444; }
svg .tick { font: 10px system-ui, sans-serif; text-anchor: middle; fill: #666; }
svg .ylab { text-anchor: end; }
svg .barlabel { font: 600 10px system-ui, sans-serif; fill: #fff; text-anchor: middle; }
h3 { font-size: .95rem; margin: 1.2rem 0 0; }
.legend span { display: inline-block; margin-right: 1.2rem; }
.swatch { display: inline-block; width: .8em; height: .8em; border-radius: 2px;
          margin-right: .35em; vertical-align: -1px; }
"""


def _fidelity_class(score: float) -> str:
    if score >= 0.9:
        return "good"
    if score >= 0.7:
        return "warn"
    return "bad"


def _summary_table(figures: list[ScorecardFigure]) -> list[str]:
    rows = [
        "<table>",
        "<tr><th>figure</th><th>series</th><th>paper ref</th>"
        "<th>saturation (paper)</th><th>saturation (measured)</th>"
        "<th>fidelity</th></tr>",
    ]
    for fig in figures:
        for series in fig.series:
            ref = fig.refs.get(series.label)
            sat = fig.saturation[series.label]
            if ref is None:
                ref_cells = (
                    '<td class="muted">—</td><td class="num muted">—</td>'
                    f'<td class="num">{sat:.3f}</td><td class="muted">unscored</td>'
                )
            else:
                score = fig.fidelity[series.label]
                ref_cells = (
                    f"<td>{html.escape(ref.figure)}</td>"
                    f'<td class="num">{ref.saturation:.3f}</td>'
                    f'<td class="num">{sat:.3f}</td>'
                    f'<td class="{_fidelity_class(score)}">{score:.0%}</td>'
                )
            rows.append(
                f"<tr><td>{html.escape(fig.title)}</td>"
                f"<td>{html.escape(series.label)}</td>{ref_cells}</tr>"
            )
    rows.append("</table>")
    return rows


def _forensics_section(label: str, doc: dict) -> list[str]:
    """The latency-breakdown + hotspot-heatmap panels for one figure."""
    from .heatmap import hotspot_heatmap_svg, latency_breakdown_svg

    parts = [
        f"<h3>congestion forensics ({html.escape(label)})</h3>",
    ]
    attribution = doc.get("attribution") or {}
    if attribution.get("packets"):
        parts.append(latency_breakdown_svg(attribution))
    hotspots = doc.get("hotspots") or {}
    if hotspots.get("links"):
        parts.append(hotspot_heatmap_svg(hotspots))
    waitfor = doc.get("waitfor") or {}
    notes = []
    if waitfor.get("samples"):
        notes.append(
            f"wait-for graph: {waitfor['samples']} samples, "
            f"max blocked-chain depth {waitfor.get('max_depth', 0)}"
        )
        if waitfor.get("cycles_detected"):
            notes.append(
                f'<span class="bad">{waitfor["cycles_detected"]} sample(s) '
                "contained a wait cycle (deadlock precursor)</span>"
            )
        root = waitfor.get("worst_root")
        if root:
            notes.append(
                f"hottest root channel: switch {root['switch']} "
                f"port {root['port']} vc {root['vc']} "
                f"({root['waiters']} waiters)"
            )
    if notes:
        parts.append(f'<p class="muted">{"; ".join(notes)}.</p>')
    return parts


def render_scorecard(
    figures: list[ScorecardFigure],
    title: str = "Reproduction scorecard",
    forensics: dict[str, tuple[str, dict]] | None = None,
    reliability: list[ReliabilityCurve] | None = None,
    congestion: list[CongestionCurve] | None = None,
    dynamics: list[tuple[str, dict]] | None = None,
    statehash: list[tuple[str, dict]] | None = None,
) -> str:
    """The full self-contained HTML document for a set of figures.

    ``forensics`` maps figure titles to ``(run label, forensics
    document)`` pairs (see :func:`forensics_by_figure`); matching
    figures gain a latency-breakdown panel and a link-hotspot heatmap
    under their CNF panels.  ``reliability`` curves (from
    :func:`reliability_curves`) append the chaos-campaign
    goodput-degradation panel after the figures, and ``congestion``
    curves (from :func:`congestion_curves`) the congestion-collapse
    panel contrasting open- and closed-loop overload behaviour.
    ``dynamics`` entries (from :func:`flight_entries`) append the
    flight-recorder panel: time-domain rate/backlog overlays, the
    annotation table and one stacked timeline per entry.  ``statehash``
    entries (from :func:`statehash_entries`) append the state-digest
    audit panel: one chain summary per digested run with a per-recipe
    replica-consistency verdict.
    """
    scored = [f.score for f in figures if f.score is not None]
    overall = sum(scored) / len(scored) if scored else None
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8"/>',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
    ]
    if overall is not None:
        parts.append(
            f'<p>Overall fidelity <span class="{_fidelity_class(overall)}">'
            f"{overall:.0%}</span> over {len(scored)} paper-referenced "
            "figure(s); fidelity is 1 − relative saturation-point error "
            "vs the paper.</p>"
        )
    else:
        parts.append(
            '<p class="muted">No series matches a paper-reported '
            "configuration, so no fidelity score is available; curves are "
            "rendered unscored.</p>"
        )
    parts += _summary_table(figures)
    for fig in figures:
        parts.append(f"<h2>{html.escape(fig.title)}</h2>")
        legend = []
        for i, series in enumerate(fig.series):
            color = _PALETTE[i % len(_PALETTE)]
            legend.append(
                f'<span><i class="swatch" style="background:{color}"></i>'
                f"{html.escape(series.label)}</span>"
            )
        parts.append(f'<p class="legend">{"".join(legend)}</p>')
        parts.append(_figure_svg(fig))
        extra = (forensics or {}).get(fig.title)
        if extra is not None:
            parts += _forensics_section(*extra)
    if reliability:
        parts += _reliability_section(reliability)
    if congestion:
        parts += _congestion_section(congestion)
    if dynamics:
        parts += _dynamics_section(dynamics)
    if statehash:
        parts += _statehash_section(statehash)
    parts.append("</body></html>")
    return "\n".join(parts)


def write_scorecard(
    results: list[RunResult],
    path: str | pathlib.Path,
    title: str = "Reproduction scorecard",
    tol: float = DEFAULT_TOLERANCE,
) -> list[ScorecardFigure]:
    """Score a result set and write the HTML scorecard to ``path``.

    Results carrying a forensics document (``--forensics`` runs) add
    latency-breakdown and hotspot-heatmap panels to their figures.
    Chaos-campaign runs are partitioned out of the paper figures into
    the reliability panel (goodput degradation vs fault rate), and
    overload runs into the congestion-collapse panel (goodput and p99
    vs saturation multiples, open vs closed loop).  Flight-instrumented
    runs of any kind feed the dynamics panel (time-domain overlays with
    annotations), and digest-instrumented runs the state-digest audit
    panel.  Returns the figures (with fidelity populated) for
    programmatic use.
    """
    plain, chaos, congestion = partition_results(results)
    figures = figures_from_results(plain, tol) if plain else []
    pathlib.Path(path).write_text(
        render_scorecard(
            figures,
            title,
            forensics=forensics_by_figure(plain),
            reliability=reliability_curves(chaos),
            congestion=congestion_curves(congestion),
            dynamics=flight_entries(results),
            statehash=statehash_entries(results),
        ),
        encoding="utf-8",
    )
    return figures
