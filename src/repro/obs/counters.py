"""Windowed per-lane occupancy and blocked-cycle counters.

In the spirit of SpiNNaker's ``network_tester`` (programmable per-link,
per-window counters), a :class:`WindowedCounterProbe` divides the
measurement window into fixed-length windows and, for every link
direction, records per window:

* **flits** — flits that crossed the direction in the window (delta of
  the direction's cumulative counter);
* **blocked_cycles** — cycles in which the direction held buffered
  flits but moved none (all busy lanes out of credits): the direct
  measure of head-of-line blocking the paper's §8 argues about;
* **occupancy** — per-VC mean buffered flits in the direction's output
  lanes, sampled every cycle.

Counters start at the config's warm-up cycle by default, so the reported
rates describe the measurement window only — unlike the engine's raw
cumulative :attr:`~repro.router.lane.LinkDirection.flits` counters they
never mix warm-up transients into steady-state numbers.

The per-cycle occupancy sweep walks every lane, which costs real time on
big networks; this probe is for *instrumented* runs (the ``trace`` CLI,
saturation forensics), not for bulk sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .probe import Probe


@dataclass(frozen=True)
class DirectionWindow:
    """One direction's counters over one window.

    Attributes:
        switch / port / to_node: the direction's identity.
        flits: flits that crossed in the window.
        blocked_cycles: cycles the direction was busy but stalled.
        occupancy: per-VC mean buffered flits over the window.
    """

    switch: int
    port: int
    to_node: bool
    flits: int
    blocked_cycles: int
    occupancy: tuple[float, ...]


@dataclass(frozen=True)
class CounterWindow:
    """All directions' counters over one window ``[start, end)``."""

    start: int
    end: int
    directions: tuple[DirectionWindow, ...]

    @property
    def cycles(self) -> int:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "directions": [
                {
                    "switch": d.switch,
                    "port": d.port,
                    "to_node": d.to_node,
                    "flits": d.flits,
                    "blocked_cycles": d.blocked_cycles,
                    "occupancy": list(d.occupancy),
                }
                for d in self.directions
            ],
        }


class WindowedCounterProbe(Probe):
    """Accumulate per-direction counters over fixed-length windows.

    Args:
        window_cycles: window length; the engine's cycle axis is split
            into consecutive windows of this many cycles.
        include_warmup: also count the warm-up period (default: counters
            begin at ``config.warmup_cycles``, the measurement window).
    """

    def __init__(self, window_cycles: int = 200, include_warmup: bool = False):
        if window_cycles < 1:
            raise ConfigurationError(
                f"window_cycles must be >= 1, got {window_cycles}"
            )
        self.window_cycles = window_cycles
        self.include_warmup = include_warmup
        self.windows: list[CounterWindow] = []
        self._engine = None

    def bind(self, engine) -> None:
        self._engine = engine
        self._dirs = engine.dirs
        self._index = {id(d): i for i, d in enumerate(self._dirs)}
        self._start_cycle = 0 if self.include_warmup else engine.config.warmup_cycles
        self._window_start: int | None = None
        n = len(self._dirs)
        self._blocked = [0] * n
        self._occ = [[0] * len(d.lanes) for d in self._dirs]
        self._flit_base = [0] * n

    def __getstate__(self) -> dict:
        # the id(direction) index dies across processes; _dirs carries
        # the same objects in order, so rebuild it on restore
        state = dict(self.__dict__)
        state.pop("_index", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if hasattr(self, "_dirs"):
            self._index = {id(d): i for i, d in enumerate(self._dirs)}

    # -- callbacks -----------------------------------------------------------

    def on_direction_blocked(self, cycle: int, direction) -> None:
        if cycle < self._start_cycle:
            return
        self._blocked[self._index[id(direction)]] += 1

    def on_cycle(self, cycle: int) -> None:
        if cycle < self._start_cycle:
            return
        if self._window_start is None:
            # on_cycle fires after the cycle's flit movement, so the
            # first window's baseline is each counter's value at the
            # *start* of this cycle: the warm-up snapshot (or zero when
            # counting from cycle 0)
            self._window_start = cycle
            if not self.include_warmup:
                for i, d in enumerate(self._dirs):
                    self._flit_base[i] = d.flits_at_warmup
        for i, d in enumerate(self._dirs):
            occ = self._occ[i]
            for v, lane in enumerate(d.lanes):
                occ[v] += lane.buffered
        if cycle - self._window_start + 1 >= self.window_cycles:
            self._flush(cycle + 1)

    def on_run_end(self, engine) -> None:
        if self._window_start is not None and engine.cycle > self._window_start:
            self._flush(engine.cycle)

    def _flush(self, end: int) -> None:
        start = self._window_start
        cycles = end - start
        records = tuple(
            DirectionWindow(
                switch=d.switch,
                port=d.port,
                to_node=d.to_node,
                flits=d.flits - self._flit_base[i],
                blocked_cycles=self._blocked[i],
                occupancy=tuple(s / cycles for s in self._occ[i]),
            )
            for i, d in enumerate(self._dirs)
        )
        self.windows.append(CounterWindow(start=start, end=end, directions=records))
        # the flush runs at the end of the window's last cycle, so the
        # live counters are exactly the next window's baseline
        self._window_start = end
        for i, d in enumerate(self._dirs):
            self._blocked[i] = 0
            self._flit_base[i] = d.flits
            self._occ[i] = [0] * len(d.lanes)

    # -- analysis ------------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        """Plain-data form of every window, for JSON export."""
        return [w.to_dict() for w in self.windows]

    def totals(self) -> dict[tuple[int, int], dict]:
        """Whole-measurement totals per direction ``(switch, port)``."""
        out: dict[tuple[int, int], dict] = {}
        for w in self.windows:
            for d in w.directions:
                entry = out.setdefault(
                    (d.switch, d.port),
                    {"flits": 0, "blocked_cycles": 0, "cycles": 0,
                     "to_node": d.to_node},
                )
                entry["flits"] += d.flits
                entry["blocked_cycles"] += d.blocked_cycles
                entry["cycles"] += w.cycles
        return out

    def most_blocked(self, n: int = 5) -> list[tuple[tuple[int, int], dict]]:
        """The ``n`` directions with the most blocked cycles overall."""
        return sorted(
            self.totals().items(),
            key=lambda kv: kv[1]["blocked_cycles"],
            reverse=True,
        )[:n]

    def hottest(self, n: int = 5) -> list[tuple[tuple[int, int], dict]]:
        """The ``n`` directions that carried the most flits overall."""
        return sorted(
            self.totals().items(), key=lambda kv: kv[1]["flits"], reverse=True
        )[:n]
