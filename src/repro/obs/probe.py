"""The probe interface: flit-level engine instrumentation points.

The engine owns exactly one probe slot (``Engine.probe``), ``None`` by
default.  When a probe is attached the engine calls the methods below at
well-defined points of its three-phase cycle; when no probe is attached
the hot loop pays only a handful of ``is not None`` checks per cycle, so
an uninstrumented run keeps its full throughput (the CI smoke benchmark
in ``benchmarks/obs_overhead.py`` enforces this).

:class:`Probe` is both the interface and the null implementation: every
callback is a no-op, so concrete probes override only the events they
care about.  Attaching a bare ``Probe()`` measures the dispatch overhead
of the instrumentation itself — the "null probe" of the benchmark.

Event vocabulary (``cycle`` is always the engine cycle of the event):

=====================  =========================================================
callback               fires when
=====================  =========================================================
``on_packets_generated``  a source process created new packets (they join the
                          node's injection queue; source queueing time starts)
``on_packet_injected``    a packet's header entered an injection lane (network
                          latency starts; the packet object now has a pid)
``on_header_routed``      the routing phase bound an input lane to an output
                          lane (one event per hop of the header)
``on_head_arrived``       the header flit crossed a link into the input lane
                          of the *next* switch (one event per hop, paired
                          with the ``on_header_routed`` that sent it; the
                          final hop fires ``on_head_delivered`` instead)
``on_direction_blocked``  a link direction had buffered flits but moved none
                          this cycle (no lane held both a flit and a credit)
``on_head_delivered``     the header flit reached the destination node
``on_tail_delivered``     the tail flit reached the destination (delivery)
``on_packet_dropped``     a fail-stop fault destroyed an in-flight worm
                          (its lanes were flushed; it will never deliver)
``on_cycle``              the cycle's three phases all completed
``on_run_start/end``      bracketing ``Engine.run`` / ``run_until_drained``
=====================  =========================================================
"""

from __future__ import annotations


class Probe:
    """No-op probe: the interface and the disabled default in one class.

    Subclasses override the events they need.  ``bind`` runs once at
    attach time, before any event, so probes can pre-size per-lane state
    from the live engine (lane population, warm-up window, topology).
    """

    def bind(self, engine) -> None:
        """Called by :meth:`Engine.attach_probe` with the live engine."""

    # -- run lifecycle -------------------------------------------------------

    def on_run_start(self, engine) -> None:
        """A full run (``run`` or ``run_until_drained``) is starting."""

    def on_run_end(self, engine) -> None:
        """The run finished (also called when a deadlock aborts it)."""

    # -- packet lifecycle ----------------------------------------------------

    def on_packets_generated(self, cycle: int, node: int, count: int) -> None:
        """``count`` new packets joined ``node``'s injection queue."""

    def on_packet_injected(self, cycle: int, packet) -> None:
        """``packet``'s header entered an injection lane at its source."""

    def on_header_routed(self, cycle: int, switch: int, in_lane, out_lane) -> None:
        """A header was routed through ``switch``: ``in_lane`` bound to
        ``out_lane`` (``in_lane.packet`` identifies the packet)."""

    def on_head_arrived(self, cycle: int, lane, packet) -> None:
        """``packet``'s header flit crossed a link and now occupies input
        ``lane`` at the next switch (it joins that switch's routing
        queue).  Together with ``on_packet_injected`` and
        ``on_header_routed`` this checkpoints the header at every hop, so
        a probe can attribute each cycle of head latency to routing
        stall vs. blocked-in-network time."""

    def on_head_delivered(self, cycle: int, packet) -> None:
        """``packet``'s header reached its destination node."""

    def on_tail_delivered(self, cycle: int, packet) -> None:
        """``packet``'s tail reached its destination (fully delivered)."""

    def on_packet_dropped(self, cycle: int, packet, reason: str) -> None:
        """``packet`` was destroyed in flight (fail-stop fault teardown):
        every lane it held was flushed and it will never be delivered.
        ``reason`` names the cause (currently always ``"fault"``)."""

    # -- fabric state --------------------------------------------------------

    def on_direction_blocked(self, cycle: int, direction) -> None:
        """``direction`` held buffered flits but none could cross this
        cycle (every busy lane was out of credits)."""

    def on_cycle(self, cycle: int) -> None:
        """All three phases of ``cycle`` completed."""


#: alias making intent explicit at call sites that attach a do-nothing
#: probe to measure instrumentation dispatch overhead
NullProbe = Probe


class MultiProbe(Probe):
    """Fan one engine's events out to several probes, in order.

    Used by the CLI ``trace`` subcommand to run the event trace and the
    windowed counters in a single simulation.
    """

    def __init__(self, probes):
        self.probes = list(probes)

    def bind(self, engine) -> None:
        for p in self.probes:
            p.bind(engine)

    def on_run_start(self, engine) -> None:
        for p in self.probes:
            p.on_run_start(engine)

    def on_run_end(self, engine) -> None:
        for p in self.probes:
            p.on_run_end(engine)

    def on_packets_generated(self, cycle: int, node: int, count: int) -> None:
        for p in self.probes:
            p.on_packets_generated(cycle, node, count)

    def on_packet_injected(self, cycle: int, packet) -> None:
        for p in self.probes:
            p.on_packet_injected(cycle, packet)

    def on_header_routed(self, cycle: int, switch: int, in_lane, out_lane) -> None:
        for p in self.probes:
            p.on_header_routed(cycle, switch, in_lane, out_lane)

    def on_head_arrived(self, cycle: int, lane, packet) -> None:
        for p in self.probes:
            p.on_head_arrived(cycle, lane, packet)

    def on_head_delivered(self, cycle: int, packet) -> None:
        for p in self.probes:
            p.on_head_delivered(cycle, packet)

    def on_tail_delivered(self, cycle: int, packet) -> None:
        for p in self.probes:
            p.on_tail_delivered(cycle, packet)

    def on_packet_dropped(self, cycle: int, packet, reason: str) -> None:
        for p in self.probes:
            p.on_packet_dropped(cycle, packet, reason)

    def on_direction_blocked(self, cycle: int, direction) -> None:
        for p in self.probes:
            p.on_direction_blocked(cycle, direction)

    def on_cycle(self, cycle: int) -> None:
        for p in self.probes:
            p.on_cycle(cycle)
