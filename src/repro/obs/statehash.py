"""Layered state digests: a Merkle-style audit trail of engine state.

ROADMAP item 1 (the vectorized multi-backend engine) needs a way to
prove a new backend *byte-identical* to this reference implementation —
and when it is not, to say **when and where** the two diverged, not just
that the final run documents differ.  This module is that contract.

Every K cycles the :class:`StateDigestProbe` folds the complete mutable
engine state into one 64-bit **root digest** built bottom-up:

- per-lane leaf records (occupancy, flit pid, credit counters) hashed
  per :class:`~repro.router.lane.LinkDirection` into **link digests**,
  plus the routing state (round-robin pointers, pending headers, the
  route queue, crossbar bindings) — together the **fabric** digest;
- per-node **injection** digests (injection channel state, source
  queues, geometric-arrival cursors);
- the **transport** digest (ARQ registries, the timer wheel, AIMD
  windows and ECN marker state) when a reliable transport is installed;
- the **rng** digest (every source stream's position plus the
  transport's jitter stream).

Roots are linked into a tamper-evident chain seeded by the config
digest (``chain[i] = H(chain[i-1] ‖ root[i])``), bounded like the
flight recorder by pairwise decimation, and ride ``telemetry.statehash``
into run documents and the ledger.  :func:`engine_fingerprint` (exposed
as ``Engine.state_fingerprint``) is the instantaneous form;
:func:`state_snapshot` is the un-hashed nested view the divergence
debugger (:mod:`repro.obs.diff`) walks to name the exact lane, flit or
credit counter that differs.

Determinism rules: digests cover only *simulation* state — never wall
clock, ``id()`` values, measurement accumulators or phase timers — so
two runs of one config produce byte-identical chains, and a future
backend can replay a chain entry-for-entry.

Example::

    from repro.obs.statehash import simulate_with_statehash
    result = simulate_with_statehash(config)
    print(result.telemetry.statehash["chain_head"])
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
import struct
from array import array

from ..errors import ConfigurationError
from .flight import _find_transport
from .probe import MultiProbe, Probe
from .telemetry import config_digest

#: bump on breaking changes to the digest document layout
STATEHASH_FORMAT_VERSION = 1

#: digest algorithm tag recorded in every document; digests are the
#: first 64 bits of BLAKE2b, rendered as 16 hex chars
DIGEST_ALGO = "blake2b-64"

#: hashed in place of absent values (an empty lane, an unset RTT); far
#: outside any cycle count, pid or credit value yet inside int64
_NONE = -(1 << 62) - 11


# -- hashing primitives --------------------------------------------------------


def _hex(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=8).hexdigest()


def _ints(values) -> bytes:
    """Canonical byte form of an int64 stream (little-endian on every
    platform this targets; ``array`` keeps the hot path allocation-light)."""
    return array("q", values).tobytes()


def _f2i(x) -> int:
    """A float's exact IEEE-754 bit pattern as int64 (None -> sentinel).

    Hashing bit patterns instead of ``repr`` keeps float state (AIMD
    windows, RTT estimates) byte-exact with zero formatting ambiguity.
    """
    if x is None:
        return _NONE
    return struct.unpack("<q", struct.pack("<d", float(x)))[0]


def _pid(packet) -> int:
    return _NONE if packet is None else packet.pid


def _rng_digest(rng) -> bytes:
    """Digest of a ``random.Random`` stream position.

    ``getstate()`` for the Mersenne Twister is ``(version, 625 uints,
    gauss_next)``; ``hash()`` of that int tuple folds it in C (tuple/int
    hashing is unsalted — ``PYTHONHASHSEED`` only perturbs str/bytes —
    so the value is stable across processes on one interpreter build).
    This runs for every node every sample; pickling or packing 625
    words per call was the probe's single largest cost.  The RNG leaf
    is the one interpreter-specific digest — see the DESIGN.md backend
    validation contract.  Exotic states fall back to a pinned pickle.
    """
    if rng is None:
        return b"no-rng"
    version, internal, gauss = rng.getstate()
    if version == 3 and type(internal) is tuple:
        return _ints((version, hash(internal), _f2i(gauss)))
    state = pickle.dumps((version, internal, gauss), protocol=4)
    return hashlib.blake2b(state, digest_size=8).digest()


# -- per-subsystem leaf records ------------------------------------------------


def direction_label(d) -> str:
    """The direction's stable name (same convention as the flight
    recorder): ``n<node><`` for ejection links, ``s<switch>p<port>``
    for fabric links."""
    if d.to_node:
        return f"n{d.lanes[0].sink.node}<"
    return f"s{d.switch}p{d.port}"


def _lane_record(d, lane) -> list[int]:
    """One output lane plus its sink as an int64 leaf record."""
    p = lane.packet
    rec = [
        lane.vc,
        _NONE if p is None else p.pid,
        lane.buffered,
        lane.sent,
        lane.credits,
    ]
    sink = lane.sink
    sp = sink.packet
    rec.append(_NONE if sp is None else sp.pid)
    rec.append(sink.received)
    if not d.to_node:
        rec.append(sink.forwarded)
        rec.append(sink.last_arrival)
        bound = sink.bound
        if bound is None:
            rec += (_NONE, _NONE, _NONE)
        else:
            rec += (bound.switch, bound.port, bound.vc)
    return rec


def _routing_ints(engine) -> list[int]:
    """Routing state: rr pointers, pending headers (order is semantic),
    the route queue (order is semantic) and crossbar bindings (sorted —
    the engine's swap-removal order is an implementation detail no
    alternative backend should have to reproduce)."""
    vals = list(engine.route_rr)
    vals.append(_NONE)
    for s, lanes in enumerate(engine.pending):
        if not lanes:
            continue
        vals.append(s)
        for lane in lanes:
            vals += (lane.port, lane.vc, _pid(lane.packet))
    vals.append(_NONE)
    vals += engine.route_queue
    vals.append(_NONE)
    for lane in sorted(engine.bindings, key=lambda l: (l.switch, l.port, l.vc)):
        vals += (lane.switch, lane.port, lane.vc, _pid(lane.packet))
    return vals


def _fabric(engine, detail: bool):
    """(fabric digest, per-link digests, per-lane digests) — the latter
    two only materialized when ``detail`` is set (diff-time, not the
    sampling hot path).  The hot path inlines :func:`_lane_record` —
    same bytes, no per-lane call or list churn; every sample walks every
    lane, so this loop is most of the probe's marginal cost."""
    links = {} if detail else None
    lanes = {} if detail else None
    none = _NONE
    flat = []
    if detail:
        for idx, d in enumerate(engine.dirs):
            lane_recs = [_lane_record(d, lane) for lane in d.lanes]
            seg = [idx, d.rr, d.nbusy, d.flits, int(d.to_node)]
            for rec in lane_recs:
                seg += rec
            flat += seg
            label = direction_label(d)
            links[label] = _hex(_ints(seg))
            lanes[label] = {
                f"vc{lane.vc}": _hex(_ints(rec))
                for lane, rec in zip(d.lanes, lane_recs)
            }
    else:
        append = flat.append
        for idx, d in enumerate(engine.dirs):
            to_node = d.to_node
            append(idx)
            append(d.rr)
            append(d.nbusy)
            append(d.flits)
            append(1 if to_node else 0)
            for lane in d.lanes:
                p = lane.packet
                append(lane.vc)
                append(none if p is None else p.pid)
                append(lane.buffered)
                append(lane.sent)
                append(lane.credits)
                sink = lane.sink
                sp = sink.packet
                append(none if sp is None else sp.pid)
                append(sink.received)
                if not to_node:
                    append(sink.forwarded)
                    append(sink.last_arrival)
                    bound = sink.bound
                    if bound is None:
                        flat += (none, none, none)
                    else:
                        append(bound.switch)
                        append(bound.port)
                        append(bound.vc)
    routing = hashlib.blake2b(_ints(_routing_ints(engine)), digest_size=8)
    fabric_hex = _hex(_ints(flat) + routing.digest())
    return fabric_hex, links, lanes


def _node_ints(node) -> list[int]:
    """One node's injection-side state: the injection channel, its input
    lanes at the switch boundary, and the (possibly transport-wrapped)
    source queue and arrival cursor."""
    vals = [node.nid, node.rr, node.sent, _pid(node.packet)]
    vals.append(_NONE if node.lane is None else node.lane.vc)
    for lane in node.lanes:
        vals += (lane.vc, _pid(lane.packet), lane.received, lane.forwarded, lane.last_arrival)
        bound = lane.bound
        if bound is None:
            vals += (_NONE, _NONE, _NONE)
        else:
            vals += (bound.switch, bound.port, bound.vc)
    src = node.source
    vals.append(int(bool(getattr(src, "active", False))))
    for entry in getattr(src, "queue", ()):
        vals.append(len(entry))
        vals.extend(int(v) for v in entry)
    nxt = getattr(src, "_next", None)
    vals.append(_NONE if nxt is None else nxt)
    inner = getattr(src, "inner", None)
    if inner is not None:  # transport-wrapped: the raw source underneath
        vals.append(int(bool(inner.active)))
        for entry in inner.queue:
            vals.append(len(entry))
            vals.extend(int(v) for v in entry)
        inxt = getattr(inner, "_next", None)
        vals.append(_NONE if inxt is None else inxt)
    return vals


def _injection(engine, detail: bool):
    node_digests = []
    nodes = {} if detail else None
    for node in engine.nodes:
        h = hashlib.blake2b(_ints(_node_ints(node)), digest_size=8)
        node_digests.append(h.digest())
        if detail:
            nodes[str(node.nid)] = h.hexdigest()
    return _hex(b"".join(node_digests)), nodes


def _msg_ints(msg) -> tuple:
    return (
        msg.src, msg.dst, msg.seq, msg.size, msg.created, msg.attempts,
        int(msg.acked), int(msg.gave_up), msg.delivered_first, msg.deadline,
        int(msg.claimed), msg.last_sent,
    )


def _congestion_ints(engine, control) -> list[int]:
    if control is None:
        return [_NONE]
    vals = [
        control.released, control.held, control.clean_acks, control.marked_acks,
        control.timeouts, control.decreases,
        _f2i(control.min_cwnd_seen), _f2i(control.max_cwnd_seen),
    ]
    for (src, dst), state in sorted(control._windows.items()):
        cwnd, in_flight, last_decrease = state
        vals += (src, dst, _f2i(cwnd), in_flight, last_decrease)
    marker = control.marker
    if marker is None:
        return vals
    # marker sets are keyed by id(direction): map to engine.dirs indices
    # so the digest is stable across processes and backends
    dir_index = {id(d): i for i, d in enumerate(engine.dirs)}
    vals.append(_NONE)
    vals += (
        marker.packets_marked, marker.windows, marker.hot_link_windows,
        marker.peak_hot_links, marker._window_end,
    )
    vals += sorted(marker._marked)
    vals.append(_NONE)
    vals += sorted(dir_index[h] for h in marker._hot)
    vals.append(_NONE)
    for key in sorted(marker._blocked, key=lambda k: dir_index[k]):
        vals += (dir_index[key], marker._blocked[key][1])
    return vals


def _transport_ints(engine, tp) -> list[int]:
    vals = [
        tp.messages, tp.acked, tp.gave_up, tp.retransmissions, tp.duplicates,
        tp.late_acks, tp.drops_seen, tp.max_attempts, tp._counter,
        _f2i(tp.rtt_estimate),
    ]
    for (src, dst), seq in sorted(tp._next_seq.items()):
        vals += (src, dst, seq)
    vals.append(_NONE)
    for node, count in sorted(tp._unresolved.items()):
        vals += (node, count)
    vals.append(_NONE)
    for node in sorted(tp._fifo):
        vals.append(node)
        for msg in tp._fifo[node]:
            vals += _msg_ints(msg)
    vals.append(_NONE)
    for node in sorted(tp._waiting):
        vals.append(node)
        for msg in tp._waiting[node]:
            vals += _msg_ints(msg)
    vals.append(_NONE)
    for pid in sorted(tp._by_pid):
        vals.append(pid)
        vals += _msg_ints(tp._by_pid[pid])
    vals.append(_NONE)
    for due, counter, kind, msg, tag in sorted(tp._events, key=lambda e: (e[0], e[1])):
        vals += (due, counter, kind, msg.src, msg.dst, msg.seq, tag)
    vals.append(_NONE)
    vals += _congestion_ints(engine, tp.congestion)
    return vals


def _transport_hex(engine) -> str:
    tp = _find_transport(engine.probe)
    if tp is None:
        return _hex(b"")
    return _hex(_ints(_transport_ints(engine, tp)))


def _rng_hex(engine) -> str:
    parts = []
    for node in engine.nodes:
        src = node.source
        inner = getattr(src, "inner", src)
        parts.append(_rng_digest(getattr(inner, "rng", None)))
    tp = _find_transport(engine.probe)
    parts.append(b"no-transport" if tp is None else _rng_digest(tp._rng))
    return _hex(b"".join(parts))


# -- the fingerprint -----------------------------------------------------------


def engine_fingerprint(engine, detail: bool = False, at_cycle: int | None = None) -> dict:
    """The layered digest of ``engine``'s complete simulation state.

    Returns ``{"cycle", "root", "fabric", "injection", "transport",
    "rng"}``; with ``detail`` also ``"links"``/``"lanes"``/``"nodes"``
    (per-link, per-lane and per-node leaf digests, for divergence
    localization).  ``at_cycle`` overrides the cycle folded into the
    root: probes sample from ``on_cycle(t)`` where the state is already
    post-step but ``engine.cycle`` has not yet advanced to ``t + 1``.

    This is the **backend validation contract** (DESIGN.md): any
    alternative engine backend must produce identical fingerprints at
    identical cycles for identical configs.
    """
    fabric_hex, links, lanes = _fabric(engine, detail)
    injection_hex, nodes = _injection(engine, detail)
    transport_hex = _transport_hex(engine)
    rng_hex = _rng_hex(engine)
    cycle = engine.cycle if at_cycle is None else at_cycle
    meta = (
        cycle,
        engine.injected_packets_total, engine.delivered_packets_total,
        engine.dropped_packets_total, engine.injected_flits_total,
        engine.delivered_flits_total, engine.dropped_flits_total,
        engine._next_pid,
    )
    root = _hex(
        _ints(meta)
        + (fabric_hex + injection_hex + transport_hex + rng_hex).encode("ascii")
    )
    fp = {
        "cycle": cycle,
        "root": root,
        "fabric": fabric_hex,
        "injection": injection_hex,
        "transport": transport_hex,
        "rng": rng_hex,
    }
    if detail:
        fp["links"] = links
        fp["lanes"] = lanes
        fp["nodes"] = nodes
    return fp


#: subsystem keys of a fingerprint, in document order
SUBSYSTEMS = ("fabric", "injection", "transport", "rng")


# -- the un-hashed snapshot (diff-time field-level view) -----------------------


def _opt_pid(packet):
    return None if packet is None else packet.pid


def state_snapshot(engine) -> dict:
    """The fingerprint's pre-image as a nested JSON-able dict.

    Same coverage and canonicalization as :func:`engine_fingerprint`,
    but with named fields instead of digests — the divergence debugger
    flattens two snapshots into path -> value maps and reports exactly
    which lane, flit or counter differs.  Costs far more than a
    fingerprint; meant for diff-time, not per-interval sampling.
    """
    links = {}
    for d in engine.dirs:
        lane_docs = {}
        for lane in d.lanes:
            sink = lane.sink
            if d.to_node:
                sink_doc = {"node": sink.node, "packet": _opt_pid(sink.packet),
                            "received": sink.received}
            else:
                bound = sink.bound
                sink_doc = {
                    "packet": _opt_pid(sink.packet),
                    "received": sink.received,
                    "forwarded": sink.forwarded,
                    "last_arrival": sink.last_arrival,
                    "bound": None if bound is None
                    else f"s{bound.switch}p{bound.port}vc{bound.vc}",
                }
            lane_docs[f"vc{lane.vc}"] = {
                "packet": _opt_pid(lane.packet),
                "buffered": lane.buffered,
                "sent": lane.sent,
                "credits": lane.credits,
                "sink": sink_doc,
            }
        links[direction_label(d)] = {
            "rr": d.rr, "nbusy": d.nbusy, "flits": d.flits, "lanes": lane_docs,
        }
    routing = {
        "route_rr": list(engine.route_rr),
        "pending": {
            str(s): [[lane.port, lane.vc, _opt_pid(lane.packet)] for lane in lanes]
            for s, lanes in enumerate(engine.pending) if lanes
        },
        "route_queue": list(engine.route_queue),
        "bindings": [
            [lane.switch, lane.port, lane.vc, _opt_pid(lane.packet)]
            for lane in sorted(engine.bindings, key=lambda l: (l.switch, l.port, l.vc))
        ],
    }
    injection = {}
    for node in engine.nodes:
        src = node.source
        inner = getattr(src, "inner", None)
        source_doc = {
            "active": bool(getattr(src, "active", False)),
            "queue": [list(entry) for entry in getattr(src, "queue", ())],
            "next": getattr(src, "_next", None),
        }
        if inner is not None:
            source_doc["inner_queue"] = [list(entry) for entry in inner.queue]
            source_doc["inner_next"] = getattr(inner, "_next", None)
        injection[str(node.nid)] = {
            "rr": node.rr,
            "sent": node.sent,
            "packet": _opt_pid(node.packet),
            "lane": None if node.lane is None else node.lane.vc,
            "lanes": {
                f"vc{lane.vc}": {
                    "packet": _opt_pid(lane.packet),
                    "received": lane.received,
                    "forwarded": lane.forwarded,
                    "last_arrival": lane.last_arrival,
                    "bound": None if lane.bound is None
                    else f"s{lane.bound.switch}p{lane.bound.port}vc{lane.bound.vc}",
                }
                for lane in node.lanes
            },
            "source": source_doc,
        }
    tp = _find_transport(engine.probe)
    transport = None if tp is None else _transport_snapshot(engine, tp)
    rng = {
        "sources": {
            str(node.nid): _rng_digest(
                getattr(getattr(node.source, "inner", node.source), "rng", None)
            ).hex()
            for node in engine.nodes
        },
        "jitter": None if tp is None else _rng_digest(tp._rng).hex(),
    }
    return {
        "cycle": engine.cycle,
        "counters": {
            "injected_packets": engine.injected_packets_total,
            "delivered_packets": engine.delivered_packets_total,
            "dropped_packets": engine.dropped_packets_total,
            "injected_flits": engine.injected_flits_total,
            "delivered_flits": engine.delivered_flits_total,
            "dropped_flits": engine.dropped_flits_total,
            "next_pid": engine._next_pid,
        },
        "fabric": {"links": links, "routing": routing},
        "injection": injection,
        "transport": transport,
        "rng": rng,
    }


def _msg_doc(msg) -> dict:
    return {
        "src": msg.src, "dst": msg.dst, "seq": msg.seq, "size": msg.size,
        "created": msg.created, "attempts": msg.attempts,
        "acked": msg.acked, "gave_up": msg.gave_up,
        "delivered_first": msg.delivered_first, "deadline": msg.deadline,
        "claimed": msg.claimed, "last_sent": msg.last_sent,
    }


def _transport_snapshot(engine, tp) -> dict:
    control = tp.congestion
    congestion = None
    if control is not None:
        marker = control.marker
        marker_doc = None
        if marker is not None:
            dir_index = {id(d): i for i, d in enumerate(engine.dirs)}
            labels = [direction_label(d) for d in engine.dirs]
            marker_doc = {
                "packets_marked": marker.packets_marked,
                "windows": marker.windows,
                "hot_link_windows": marker.hot_link_windows,
                "peak_hot_links": marker.peak_hot_links,
                "window_end": marker._window_end,
                "marked_pids": sorted(marker._marked),
                "hot_links": sorted(labels[dir_index[h]] for h in marker._hot),
                "blocked": {
                    labels[dir_index[key]]: marker._blocked[key][1]
                    for key in marker._blocked
                },
            }
        congestion = {
            "counters": {
                "released": control.released, "held": control.held,
                "clean_acks": control.clean_acks, "marked_acks": control.marked_acks,
                "timeouts": control.timeouts, "decreases": control.decreases,
            },
            "min_cwnd_seen": control.min_cwnd_seen,
            "max_cwnd_seen": control.max_cwnd_seen,
            "windows": {
                f"{src}->{dst}": list(state)
                for (src, dst), state in sorted(control._windows.items())
            },
            "marker": marker_doc,
        }
    return {
        "counters": {
            "messages": tp.messages, "acked": tp.acked, "gave_up": tp.gave_up,
            "retransmissions": tp.retransmissions, "duplicates": tp.duplicates,
            "late_acks": tp.late_acks, "drops_seen": tp.drops_seen,
            "max_attempts": tp.max_attempts, "event_counter": tp._counter,
        },
        "rtt_estimate": tp.rtt_estimate,
        "next_seq": {f"{s}->{d}": n for (s, d), n in sorted(tp._next_seq.items())},
        "unresolved": {str(n): c for n, c in sorted(tp._unresolved.items()) if c},
        "fifo": {
            str(n): [_msg_doc(m) for m in tp._fifo[n]]
            for n in sorted(tp._fifo) if tp._fifo[n]
        },
        "waiting": {
            str(n): [_msg_doc(m) for m in tp._waiting[n]]
            for n in sorted(tp._waiting) if tp._waiting[n]
        },
        "by_pid": {str(pid): _msg_doc(tp._by_pid[pid]) for pid in sorted(tp._by_pid)},
        "events": [
            [due, counter, kind, msg.src, msg.dst, msg.seq, tag]
            for due, counter, kind, msg, tag in sorted(
                tp._events, key=lambda e: (e[0], e[1])
            )
        ],
        "congestion": congestion,
    }


# -- the probe -----------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class StateDigestConfig:
    """Sampling knobs for the state-digest audit trail.

    Args:
        interval_cycles: cycles between digest samples; every sample is
            a full state fingerprint, so this is the overhead dial (the
            default keeps the probe under the CI overhead gate).
        max_intervals: buffer bound; reaching it pairwise-decimates the
            chain (stride doubles), like the flight recorder, so a
            million-cycle run still fits one run document.
        audit: run :meth:`Engine.audit` at every digest boundary —
            invariant violations then surface within one interval of
            their origin instead of at drain time.
    """

    interval_cycles: int = 128
    max_intervals: int = 512
    audit: bool = False

    def __post_init__(self) -> None:
        if self.interval_cycles < 1:
            raise ConfigurationError(
                f"digest interval must be >= 1 cycle, got {self.interval_cycles}"
            )
        if self.max_intervals < 8 or self.max_intervals % 2:
            raise ConfigurationError(
                f"max_intervals must be even and >= 8, got {self.max_intervals}"
            )


class StateDigestProbe(Probe):
    """Samples layered state digests every K cycles into a hash chain.

    The chain is seeded by the config digest (``genesis``), so two
    chains are only comparable when the configs match — and a truncated
    or tampered chain cannot reproduce the recorded ``chain_head``.
    After decimation the chain values still commit to *all* sampled
    roots (dropped rows included); the divergence debugger therefore
    compares per-cycle **roots**, and uses ``chain_head`` as the
    whole-run integrity summary.
    """

    def __init__(self, config: StateDigestConfig | None = None):
        self.config = config or StateDigestConfig()
        self.engine = None
        #: (cycle, fingerprint) samples, oldest first; bounded
        self._entries: list[tuple[int, dict]] = []
        self._chain: list[str] = []
        self._chain_head = ""
        self._genesis = ""
        self._interval_end = 0
        self._stride = self.config.interval_cycles
        self._decimations = 0
        self._audits = 0

    def bind(self, engine) -> None:
        self.engine = engine

    def on_run_start(self, engine) -> None:
        self.engine = engine
        self._entries = []
        self._chain = []
        self._decimations = 0
        self._audits = 0
        self._stride = self.config.interval_cycles
        self._genesis = config_digest(engine.config)
        self._chain_head = self._genesis
        # genesis sample: state before the first stepped cycle
        self._sample(engine.cycle)
        self._interval_end = engine.cycle + self._stride

    def on_cycle(self, cycle: int) -> None:
        # on_cycle(t) runs with post-step state for cycle t; the sample
        # is stamped t + 1 so a replay that steps to engine.cycle == t+1
        # fingerprints the identical state
        if cycle + 1 < self._interval_end:
            return
        self._sample(cycle + 1)
        self._interval_end += self._stride
        if self.config.audit:
            self.engine.audit()
            self._audits += 1

    def on_run_end(self, engine) -> None:
        last = self._entries[-1][0] if self._entries else -1
        if engine.cycle > last:
            self._sample(engine.cycle)
        engine.result.telemetry = dataclasses.replace(
            engine.result.telemetry, statehash=self.document()
        )

    # -- internals -------------------------------------------------------------

    def _sample(self, at_cycle: int) -> None:
        fp = engine_fingerprint(self.engine, at_cycle=at_cycle)
        self._chain_head = _hex((self._chain_head + fp["root"]).encode("ascii"))
        self._entries.append((at_cycle, fp))
        self._chain.append(self._chain_head)
        if len(self._entries) >= self.config.max_intervals:
            self._coalesce()

    def _coalesce(self) -> None:
        """Halve the buffer, doubling the stride; index 0 (the genesis
        sample) always survives, so decimated chains stay alignable."""
        self._entries = self._entries[::2]
        self._chain = self._chain[::2]
        self._decimations += 1
        self._stride = self.config.interval_cycles * (1 << self._decimations)

    def document(self) -> dict:
        """The bounded digest chain as a JSON-able run-document block."""
        return {
            "format": STATEHASH_FORMAT_VERSION,
            "algo": DIGEST_ALGO,
            "interval": self.config.interval_cycles,
            "stride": self._stride,
            "max_intervals": self.config.max_intervals,
            "decimations": self._decimations,
            "entries": len(self._entries),
            "audited": self._audits,
            "genesis": self._genesis,
            "cycles": [c for c, _ in self._entries],
            "roots": [fp["root"] for _, fp in self._entries],
            "subsystems": {
                name: [fp[name] for _, fp in self._entries] for name in SUBSYSTEMS
            },
            "chain": list(self._chain),
            "chain_head": self._chain_head,
        }


# -- conveniences --------------------------------------------------------------


def simulate_with_statehash(
    config, statehash: StateDigestConfig | None = None, probe=None, checkpoint=None
):
    """One run with the digest chain on ``result.telemetry.statehash``.

    ``probe`` composes an additional observer alongside the digest probe
    (via :class:`~repro.obs.probe.MultiProbe`).  Module-level and
    picklable, so campaign pools can ship it to workers.  With
    ``checkpoint`` the digest chain doubles as the restore verifier: a
    resumed run's chain is byte-identical to an uninterrupted one's.
    """
    from ..sim.run import simulate

    digests = StateDigestProbe(statehash or StateDigestConfig())
    composed = digests if probe is None else MultiProbe([digests, probe])
    return simulate(config, probe=composed, checkpoint=checkpoint)


def describe_statehash(doc: dict) -> str:
    """One text block summarizing a digest-chain document."""
    lines = [
        f"state digests: {doc['entries']} samples, stride {doc['stride']} "
        f"cycles ({doc['algo']})",
        f"  genesis (config digest)  {doc['genesis']}",
        f"  chain head               {doc['chain_head']}",
    ]
    if doc.get("decimations"):
        lines.append(
            f"  decimated {doc['decimations']}x from interval {doc['interval']}"
        )
    if doc.get("audited"):
        lines.append(f"  invariant audits passed  {doc['audited']}")
    if doc["cycles"]:
        lines.append(
            f"  cycle {doc['cycles'][-1]} root          {doc['roots'][-1]}"
        )
    return "\n".join(lines)
