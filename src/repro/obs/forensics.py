"""Congestion forensics: latency attribution, wait-for graphs, hotspots.

The paper explains every saturation curve with the same mechanism —
blocked wormholes piling up behind hot channels (§7) — but the base
observability tier only records *that* blocking happened.  This module
attributes every cycle of packet latency to a cause and localizes the
congestion:

* :class:`LatencyAttributionProbe` — decomposes each delivered packet's
  end-to-end latency (``created → tail_delivered``) into four exhaustive,
  mutually exclusive components:

  - **source_wait** — cycles queued at the source before the single
    injection channel accepted the header (``injected − created``);
  - **routing_stall** — cycles an already-arrived header waited in the
    routing phase because every candidate output lane was busy (the
    adaptivity-limited term);
  - **blocked** — cycles flits sat in lane buffers unable to advance:
    header flits waiting on link arbitration/credits beyond the pipeline
    minimum, plus body flits serialized behind other worms multiplexing
    the same links;
  - **transfer** — the contention-free pipeline cost: three cycles per
    hop (T_routing + T_crossbar + T_link, the §5 normalization) plus
    ``size − 1`` cycles of tail serialization.

  The decomposition is exact by construction: the engine checkpoints the
  header at injection, at every routing decision (``on_header_routed``),
  at every downstream arrival (``on_head_arrived``) and at delivery, and
  each inter-checkpoint gap splits into its pipeline minimum (transfer)
  and its excess (stall or blocked).  The invariant

      routing_stall + blocked + transfer == tail_delivered − injected

  (and with ``source_wait`` added, ``== tail_delivered − created``) holds
  for every delivered packet on every routing algorithm; a counter
  records any violation and the property-based tests sweep all five
  paper configurations.  Percentiles come from streaming log2-bucketed
  histograms (:class:`StreamingHistogram`), so memory stays O(64) per
  component regardless of run length.

* :class:`WaitForGraphSampler` — periodically snapshots the lane-level
  wait-for graph: every unrouted header (``Engine.unrouted_headers``)
  waits on the holders of its legal candidate output lanes
  (:meth:`~repro.routing.base.RoutingAlgorithm.candidates`, read-only and
  RNG-free so sampling never perturbs the run).  Cycle detection over
  that graph flags deadlock *precursors* — for a deadlock-free algorithm
  a wait cycle means heavy transient contention; for an unsafe one it is
  the wedge forming, and the sampler captures a
  :func:`~repro.sim.diagnostics.capture_snapshot` diagnostic *before*
  the watchdog's ``DeadlockError`` fires.  Each sample also records the
  blocked-chain depth and the root channel (the single output lane the
  most headers are waiting on).

* :class:`HotspotProbe` — per-physical-link flit and blocked-cycle
  aggregation over the measurement window, the data behind the
  :mod:`repro.obs.heatmap` SVG heatmaps embedded in the scorecard.

:class:`ForensicsProbe` composes all three through the ordinary
:class:`~repro.obs.probe.MultiProbe` machinery and serializes one
versioned ``forensics`` document that travels on
:class:`~repro.obs.telemetry.RunTelemetry` — and therefore through the
run JSON document, the ledger (``kind="forensics"``) and ``repro-net
analyze``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..sim.diagnostics import DeadlockSnapshot, capture_snapshot
from ..sim.packet import FAULT_SENTINEL
from .probe import MultiProbe, Probe

#: bump on breaking changes to the forensics document layout
FORENSICS_FORMAT_VERSION = 1

#: the additive latency components, in presentation order
COMPONENTS = ("source_wait", "routing_stall", "blocked", "transfer")

#: engine pipeline cost of one header hop: T_routing + T_crossbar + T_link
CYCLES_PER_HOP = 3


class StreamingHistogram:
    """Streaming log2-bucketed histogram of non-negative integers.

    Values land in bucket ``v.bit_length()`` (bucket 0 holds exactly the
    value 0, bucket b holds ``[2**(b-1), 2**b)``), so percentile queries
    resolve to the bucket's upper bound — an over-estimate by less than
    2x, constant memory, O(1) insert.  Exact count/sum/min/max ride
    along, so means and maxima are precise; only mid-distribution
    percentiles are quantized.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def add(self, value: int) -> None:
        b = value.bit_length()
        self.buckets[b] = self.buckets.get(b, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        """Upper bound of the bucket holding the q-th quantile (0 empty)."""
        if not self.count:
            return 0
        rank = q * self.count
        seen = 0
        for b in sorted(self.buckets):
            seen += self.buckets[b]
            if seen >= rank:
                upper = (1 << b) - 1 if b else 0
                # never report beyond the exact maximum
                return min(upper, self.max)
        return self.max

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min or 0,
            "max": self.max or 0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
        }


@dataclass(frozen=True)
class PacketAttribution:
    """The exhaustive latency decomposition of one delivered packet."""

    pid: int
    src: int
    dst: int
    size: int
    hops: int
    created: int
    injected: int
    delivered: int
    source_wait: int
    routing_stall: int
    blocked: int
    transfer: int

    @property
    def network_latency(self) -> int:
        """Injection to tail delivery — the §6 latency metric."""
        return self.delivered - self.injected

    @property
    def total(self) -> int:
        return self.source_wait + self.routing_stall + self.blocked + self.transfer

    def check(self) -> bool:
        """The attribution invariant: components sum to created→delivered
        (equivalently: stall + blocked + transfer == network latency)."""
        return (
            self.total == self.delivered - self.created
            and self.source_wait >= 0
            and self.routing_stall >= 0
            and self.blocked >= 0
            and self.transfer >= 0
        )


class _Flight:
    """Per-packet live attribution state between probe events."""

    __slots__ = ("checkpoint", "routed_at", "stall", "blocked", "hops")

    def __init__(self, checkpoint: int):
        #: cycle the header last arrived in an input lane
        self.checkpoint = checkpoint
        #: cycle of the most recent routing decision
        self.routed_at = checkpoint
        self.stall = 0
        self.blocked = 0
        self.hops = 0


class LatencyAttributionProbe(Probe):
    """Decompose every delivered packet's latency into its four causes.

    Args:
        include_warmup: also histogram packets injected before the
            warm-up boundary (default off, matching the engine's
            measurement-window rule for latency samples).
        keep_packets: retain up to this many full
            :class:`PacketAttribution` records in :attr:`packets` (0
            keeps none; tests use this for exhaustive invariant checks).
    """

    def __init__(self, include_warmup: bool = False, keep_packets: int = 0):
        self.include_warmup = include_warmup
        self.keep_packets = keep_packets
        self.packets: list[PacketAttribution] = []
        self.histograms = {name: StreamingHistogram() for name in COMPONENTS}
        self.histograms["network_latency"] = StreamingHistogram()
        self.sums = dict.fromkeys(COMPONENTS, 0)
        self.finished = 0
        self.invariant_violations = 0
        self._flights: dict[int, _Flight] = {}
        self._warmup = 0
        self._pattern = None

    def bind(self, engine) -> None:
        self._warmup = engine.config.warmup_cycles
        self._pattern = engine.config.pattern

    # -- event plumbing ------------------------------------------------------

    def on_packet_injected(self, cycle: int, packet) -> None:
        self._flights[packet.pid] = _Flight(cycle)

    def on_header_routed(self, cycle: int, switch: int, in_lane, out_lane) -> None:
        f = self._flights.get(in_lane.packet.pid)
        if f is None:  # injected before this probe attached
            return
        # the header arrived at `checkpoint`; routing it costs one cycle
        # (T_routing), every further cycle was a stall on busy lanes
        f.stall += cycle - f.checkpoint - 1
        f.routed_at = cycle
        f.hops += 1

    def on_head_arrived(self, cycle: int, lane, packet) -> None:
        f = self._flights.get(packet.pid)
        if f is None:
            return
        # crossbar + link pipeline minimum is 2 cycles after routing;
        # the excess is time blocked on credits/arbitration
        f.blocked += cycle - f.routed_at - 2
        f.checkpoint = cycle

    def on_head_delivered(self, cycle: int, packet) -> None:
        f = self._flights.get(packet.pid)
        if f is None:
            return
        f.blocked += cycle - f.routed_at - 2

    def on_tail_delivered(self, cycle: int, packet) -> None:
        f = self._flights.pop(packet.pid, None)
        if f is None:
            return
        # body flits need size-1 cycles behind the head; the rest of the
        # head→tail gap is link multiplexing with other worms
        tail_blocked = (cycle - packet.head_delivered) - (packet.size - 1)
        record = PacketAttribution(
            pid=packet.pid,
            src=packet.src,
            dst=packet.dst,
            size=packet.size,
            hops=f.hops,
            created=packet.created,
            injected=packet.injected,
            delivered=cycle,
            source_wait=packet.injected - packet.created,
            routing_stall=f.stall,
            blocked=f.blocked + tail_blocked,
            transfer=CYCLES_PER_HOP * f.hops + packet.size - 1,
        )
        if not record.check():
            self.invariant_violations += 1
        if not self.include_warmup and packet.injected < self._warmup:
            return
        self.finished += 1
        for name in COMPONENTS:
            value = getattr(record, name)
            self.sums[name] += value
            self.histograms[name].add(value)
        self.histograms["network_latency"].add(record.network_latency)
        if len(self.packets) < self.keep_packets:
            self.packets.append(record)

    def on_packet_dropped(self, cycle: int, packet, reason: str) -> None:
        # a killed worm never delivers: discard its open flight so the
        # per-pid state does not accumulate across a long fault storm
        self._flights.pop(packet.pid, None)

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """The attribution section of the forensics document."""
        grand = sum(self.sums.values())
        return {
            "pattern": self._pattern,
            "packets": self.finished,
            "invariant_violations": self.invariant_violations,
            "share": {
                name: (self.sums[name] / grand if grand else 0.0)
                for name in COMPONENTS
            },
            "components": {
                name: hist.to_dict() for name, hist in self.histograms.items()
            },
        }


@dataclass(frozen=True)
class WaitForSample:
    """One wait-for graph snapshot.

    Attributes:
        cycle: engine cycle of the sample.
        waiting: unrouted headers (graph nodes with out-edges).
        edges: waiter→holder edges over distinct packet pairs.
        max_depth: longest acyclic blocked chain (a header waiting on a
            holder whose own header waits on ... ), in packets.
        cycle_pids: one detected wait cycle as a pid tuple (empty when
            the graph is acyclic — the healthy state).
        root: the most-waited-on output lane
            (``{"switch", "port", "vc", "waiters"}``) or None.
        waits_on_faulted: headers whose only wait targets include a
            faulted (permanently dead) lane.
    """

    cycle: int
    waiting: int
    edges: int
    max_depth: int
    cycle_pids: tuple[int, ...]
    root: dict | None
    waits_on_faulted: int

    def to_dict(self) -> dict:
        doc = dataclasses.asdict(self)
        doc["cycle_pids"] = list(self.cycle_pids)
        return doc


class WaitForGraphSampler(Probe):
    """Periodic lane-level wait-for graph snapshots with cycle detection.

    Args:
        sample_every: cycles between samples (the per-cycle cost when not
            sampling is one modulo).
        keep_samples: ring-buffer length of retained samples.
        max_cycle_pids: cap on the recorded wait-cycle path length.
    """

    def __init__(
        self,
        sample_every: int = 200,
        keep_samples: int = 64,
        max_cycle_pids: int = 16,
    ):
        self.sample_every = max(1, sample_every)
        self.keep_samples = keep_samples
        self.max_cycle_pids = max_cycle_pids
        self.samples: list[WaitForSample] = []
        self.samples_taken = 0
        self.cycles_detected = 0
        #: diagnostics captured the first time a wait cycle was seen —
        #: the deadlock precursor, available before any DeadlockError
        self.precursor: DeadlockSnapshot | None = None
        self.precursor_cycle: int | None = None
        self.engine = None

    def bind(self, engine) -> None:
        self.engine = engine

    def on_cycle(self, cycle: int) -> None:
        if cycle % self.sample_every == 0:
            self.sample(cycle)

    # -- the sampler ---------------------------------------------------------

    def sample(self, cycle: int) -> WaitForSample:
        """Snapshot the wait-for graph now (read-only on engine state)."""
        engine = self.engine
        routing = engine.routing
        adj: dict[int, set[int]] = {}
        lane_waiters: dict[int, tuple] = {}  # id(out lane) -> (lane, set of pids)
        waiting = 0
        waits_on_faulted = 0
        for s, inlane in engine.unrouted_headers():
            pkt = inlane.packet
            if pkt is FAULT_SENTINEL:
                continue
            waiting += 1
            cands = routing.candidates(s, inlane, pkt)
            if cands is None:
                # unknown policy: over-approximate with every held output
                # lane at the switch (a superset of any legal candidate
                # set, so true wait cycles are never missed)
                cands = [
                    lane for port in engine.out_lanes[s] for lane in port
                ]
            succ = adj.setdefault(pkt.pid, set())
            faulted = False
            for lane in cands:
                holder = lane.packet
                if holder is None and lane.sink is not None:
                    # lane released but downstream buffer still draining
                    holder = lane.sink.packet
                if holder is None:
                    continue
                if holder is FAULT_SENTINEL:
                    faulted = True
                    continue
                if holder.pid == pkt.pid:
                    continue
                succ.add(holder.pid)
                key = id(lane)
                entry = lane_waiters.get(key)
                if entry is None:
                    lane_waiters[key] = (lane, {pkt.pid})
                else:
                    entry[1].add(pkt.pid)
            if faulted:
                waits_on_faulted += 1

        cycle_pids = self._find_cycle(adj)
        max_depth = self._max_chain_depth(adj)
        root = None
        if lane_waiters:
            lane, pids = max(lane_waiters.values(), key=lambda e: len(e[1]))
            root = {
                "switch": lane.switch,
                "port": lane.port,
                "vc": lane.vc,
                "waiters": len(pids),
            }
        sample = WaitForSample(
            cycle=cycle,
            waiting=waiting,
            edges=sum(len(v) for v in adj.values()),
            max_depth=max_depth,
            cycle_pids=cycle_pids,
            root=root,
            waits_on_faulted=waits_on_faulted,
        )
        self.samples_taken += 1
        if cycle_pids:
            self.cycles_detected += 1
            if self.precursor is None:
                self.precursor = capture_snapshot(engine)
                self.precursor_cycle = cycle
        self.samples.append(sample)
        if len(self.samples) > self.keep_samples:
            del self.samples[0]
        return sample

    def _find_cycle(self, adj: dict[int, set[int]]) -> tuple[int, ...]:
        """One wait cycle as a pid path, or () when the graph is acyclic."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = dict.fromkeys(adj, WHITE)
        for start in adj:
            if color[start] != WHITE:
                continue
            path: list[int] = []
            stack = [(start, iter(adj[start]))]
            color[start] = GRAY
            path.append(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    c = color.get(succ, BLACK)  # holders that aren't
                    # themselves waiting have no out-edges: terminal
                    if c == GRAY:
                        i = path.index(succ)
                        return tuple(path[i:][: self.max_cycle_pids])
                    if c == WHITE:
                        color[succ] = GRAY
                        path.append(succ)
                        stack.append((succ, iter(adj[succ])))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    path.pop()
                    stack.pop()
        return ()

    @staticmethod
    def _max_chain_depth(adj: dict[int, set[int]]) -> int:
        """Longest waiter→holder chain, counted in packets.

        A terminal holder (a packet that is not itself waiting) closes a
        chain; back edges (wait cycles) contribute their acyclic prefix.
        Iterative post-order DFS with memoization — a saturated network
        can hold chains far deeper than the recursion limit.
        """
        depth: dict[int, int] = {}
        for root in adj:
            if root in depth:
                continue
            provisional = {root: 1}
            onstack = {root}
            stack = [(root, iter(adj[root]))]
            while stack:
                node, it = stack[-1]
                descended = False
                for succ in it:
                    if succ in depth:
                        d = 1 + depth[succ]
                    elif succ in onstack:
                        d = 2  # back edge: count the revisited holder once
                    elif succ in adj:
                        provisional[succ] = 1
                        onstack.add(succ)
                        stack.append((succ, iter(adj[succ])))
                        descended = True
                        break
                    else:
                        d = 2  # terminal holder below this waiter
                    if d > provisional[node]:
                        provisional[node] = d
                if not descended:
                    stack.pop()
                    onstack.discard(node)
                    depth[node] = provisional.pop(node)
                    if stack:
                        parent = stack[-1][0]
                        if 1 + depth[node] > provisional[parent]:
                            provisional[parent] = 1 + depth[node]
        return max(depth.values(), default=0)

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """The wait-for section of the forensics document."""
        worst = None
        for s in self.samples:
            if s.root is not None and (
                worst is None or s.root["waiters"] > worst["waiters"]
            ):
                worst = s.root
        return {
            "sample_every": self.sample_every,
            "samples": self.samples_taken,
            "max_waiting": max((s.waiting for s in self.samples), default=0),
            "max_depth": max((s.max_depth for s in self.samples), default=0),
            "cycles_detected": self.cycles_detected,
            "precursor_cycle": self.precursor_cycle,
            "precursor": (
                self.precursor.describe() if self.precursor is not None else None
            ),
            "worst_root": worst,
            "last_samples": [s.to_dict() for s in self.samples[-8:]],
        }


class HotspotProbe(Probe):
    """Per-physical-link flit and blocked-cycle totals (hotspot data).

    One record per unidirectional channel: flits crossed during the
    measurement window (from the direction's warm-up-corrected counter)
    and cycles the direction was busy-but-blocked.  Feeds the scorecard
    heatmaps (:mod:`repro.obs.heatmap`).
    """

    def __init__(self) -> None:
        self._blocked: dict[int, list] = {}
        self.engine = None
        self._warmup = 0

    def bind(self, engine) -> None:
        self.engine = engine
        self._warmup = engine.config.warmup_cycles
        self._blocked = {id(d): [d, 0] for d in engine.dirs}

    def on_direction_blocked(self, cycle: int, direction) -> None:
        if cycle >= self._warmup:
            self._blocked[id(direction)][1] += 1

    def __getstate__(self) -> dict:
        # id(direction) keys die across processes; checkpoint the
        # direction objects and re-key on restore
        state = dict(self.__dict__)
        state["_blocked"] = [list(rec) for rec in self._blocked.values()]
        return state

    def __setstate__(self, state: dict) -> None:
        blocked = state.pop("_blocked")
        self.__dict__.update(state)
        self._blocked = {id(rec[0]): rec for rec in blocked}

    def records(self) -> list[dict]:
        """Per-direction hotspot records (all directions, even idle)."""
        out = []
        for d, blocked in self._blocked.values():
            out.append(
                {
                    "switch": d.switch,
                    "port": d.port,
                    "to_node": d.to_node,
                    "flits": d.measured_flits,
                    "blocked_cycles": blocked,
                }
            )
        return out

    def summary(self, top: int = 8) -> dict:
        """The hotspot section of the forensics document."""
        records = self.records()
        hot = sorted(records, key=lambda r: r["blocked_cycles"], reverse=True)
        config = self.engine.config
        return {
            "network": config.network,
            "k": config.k,
            "n": config.n,
            "num_switches": self.engine.topology.num_switches,
            "measured_cycles": max(0, config.total_cycles - config.warmup_cycles),
            "total_blocked_cycles": sum(r["blocked_cycles"] for r in records),
            "total_flits": sum(r["flits"] for r in records),
            "top": [r for r in hot[:top] if r["blocked_cycles"] > 0],
            "links": records,
        }


class ForensicsProbe(MultiProbe):
    """The full forensics tier as one attachable probe.

    Composes :class:`LatencyAttributionProbe` (:attr:`attribution`),
    :class:`WaitForGraphSampler` (:attr:`waitfor`) and
    :class:`HotspotProbe` (:attr:`hotspots`); :meth:`summary` serializes
    all three into the versioned forensics document that rides on
    :class:`~repro.obs.telemetry.RunTelemetry`.
    """

    def __init__(
        self,
        sample_every: int = 200,
        include_warmup: bool = False,
        keep_packets: int = 0,
    ):
        self.attribution = LatencyAttributionProbe(
            include_warmup=include_warmup, keep_packets=keep_packets
        )
        self.waitfor = WaitForGraphSampler(sample_every=sample_every)
        self.hotspots = HotspotProbe()
        super().__init__([self.attribution, self.waitfor, self.hotspots])

    def summary(self) -> dict:
        return {
            "format": FORENSICS_FORMAT_VERSION,
            "attribution": self.attribution.summary(),
            "waitfor": self.waitfor.summary(),
            "hotspots": self.hotspots.summary(),
        }


def describe_forensics(doc: dict) -> str:
    """Multi-line human-readable digest of one forensics document.

    The text form of what the scorecard panels draw, shared by
    ``repro-net run --forensics`` and ``repro-net analyze``.
    """
    lines: list[str] = []
    attr = doc.get("attribution") or {}
    packets = attr.get("packets", 0)
    lines.append(
        f"latency attribution ({attr.get('pattern', '?')} traffic, "
        f"{packets} packets):"
    )
    if packets:
        from .percentiles import percentile_table

        components = attr.get("components", {})
        share = attr.get("share", {})
        for name in COMPONENTS:
            lines.append(
                percentile_table(
                    name, components.get(name, {}), share.get(name, 0.0)
                )
            )
        lines.append(
            percentile_table("network total", components.get("network_latency", {}))
        )
    else:
        lines.append("  no delivered packets in the measurement window")
    violations = attr.get("invariant_violations", 0)
    if violations:
        lines.append(f"  WARNING: {violations} attribution invariant violation(s)")

    wf = doc.get("waitfor") or {}
    lines.append(
        f"wait-for graph: {wf.get('samples', 0)} samples "
        f"(every {wf.get('sample_every', '?')} cyc), "
        f"max {wf.get('max_waiting', 0)} blocked headers, "
        f"max chain depth {wf.get('max_depth', 0)}"
    )
    if wf.get("cycles_detected"):
        pc = wf.get("precursor_cycle")
        lines.append(
            f"  DEADLOCK PRECURSOR: wait cycle first seen at cycle {pc} "
            f"({wf['cycles_detected']} sample(s) with cycles)"
        )
    root = wf.get("worst_root")
    if root:
        lines.append(
            f"  hottest root channel: sw{root['switch']} port{root['port']} "
            f"vc{root['vc']} ({root['waiters']} waiters)"
        )

    hot = doc.get("hotspots") or {}
    total = hot.get("total_blocked_cycles", 0)
    lines.append(
        f"hotspots ({hot.get('network', '?')}, "
        f"{hot.get('num_switches', '?')} switches): "
        f"{total} blocked link-cycles, {hot.get('total_flits', 0)} link flits"
    )
    for rec in hot.get("top", []):
        to = " (ejection)" if rec.get("to_node") else ""
        lines.append(
            f"  sw{rec['switch']} port{rec['port']}{to}: "
            f"{rec['blocked_cycles']} blocked cycles, {rec['flits']} flits"
        )
    return "\n".join(lines)


def attach_forensics(result, probe: ForensicsProbe):
    """Fold ``probe``'s forensics document into ``result.telemetry``.

    Returns the result (telemetry is frozen, so it is replaced rather
    than mutated); a result with no telemetry is returned unchanged.
    """
    if result.telemetry is not None:
        result.telemetry = dataclasses.replace(
            result.telemetry, forensics=probe.summary()
        )
    return result


def _find_forensics(probe):
    """The ForensicsProbe inside a probe tree, or None."""
    if isinstance(probe, ForensicsProbe):
        return probe
    for child in getattr(probe, "probes", ()):
        found = _find_forensics(child)
        if found is not None:
            return found
    return None


def _resume_finish(engine, result):
    """Checkpoint finisher: reattach the restored probe's document."""
    return attach_forensics(result, _find_forensics(engine.probe))


def simulate_with_forensics(config, sample_every: int = 200, checkpoint=None):
    """``simulate(config)`` with the forensics tier attached.

    The forensics document lands on the result's telemetry, so it
    survives pickling (parallel sweep workers), the run JSON document
    and the ledger.  Raises :class:`~repro.errors.DeadlockError` exactly
    like :func:`~repro.sim.run.simulate` — campaign resilience handling
    stays unchanged.  ``checkpoint`` makes the run resumable; the
    forensics document is then rebuilt from the *restored* probe.
    """
    from ..sim.run import build_engine, simulate

    if checkpoint is None:
        probe = ForensicsProbe(sample_every=sample_every)
        result = simulate(config, probe=probe)
        return attach_forensics(result, probe)

    from ..sim.checkpoint import attach_checkpoints, resume_point

    resumed = resume_point(checkpoint, config)
    if resumed is not None:
        return resumed
    probe = ForensicsProbe(sample_every=sample_every)
    engine = build_engine(config, probe=probe)
    attach_checkpoints(
        engine, checkpoint, finisher="repro.obs.forensics:_resume_finish"
    )
    result = engine.run()
    return attach_forensics(result, probe)


def run_with_forensics(
    config, sample_every: int = 200, keep_packets: int = 0, probe=None
):
    """One forensics-instrumented run that survives a deadlock.

    Returns ``(result, probe, deadlock)`` where ``deadlock`` is the
    caught :class:`~repro.errors.DeadlockError` or None.  On deadlock
    the partial result still carries the forensics document — including
    the sampler's precursor snapshot, which by then has usually seen the
    wedge form — because the post-mortem is the whole point.

    ``probe`` composes an extra observer (e.g. a flight recorder)
    alongside the forensics tier; the returned probe is always the
    :class:`ForensicsProbe`.
    """
    from ..errors import DeadlockError
    from ..sim.run import build_engine

    forensics = ForensicsProbe(sample_every=sample_every, keep_packets=keep_packets)
    attach = forensics if probe is None else MultiProbe([forensics, probe])
    engine = build_engine(config, probe=attach)
    deadlock = None
    try:
        result = engine.run()
    except DeadlockError as exc:
        deadlock = exc
        result = engine.result
    attach_forensics(result, forensics)
    return result, forensics, deadlock
