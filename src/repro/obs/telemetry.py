"""Run telemetry: provenance and performance facts about one simulation.

Every :class:`~repro.sim.results.RunResult` produced by ``Engine.run`` or
``Engine.run_until_drained`` carries a :class:`RunTelemetry`: a compact
record of *how* the numbers were produced — which exact recipe (a stable
config digest), which seed, how long the run took on the wall clock, the
engine's cycles/sec, and the peak number of packets simultaneously in
flight.  Telemetry travels with the result through pickling (parallel
sweep workers), the JSON run document (:mod:`repro.metrics.io`) and the
on-disk sweep :class:`~repro.experiments.runcache.RunCache`, so archived
results stay attributable and every future optimisation PR has a
recorded baseline to beat.

This module deliberately depends on nothing inside :mod:`repro` so the
result layer can import it without cycles.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

#: names of the engine's per-cycle phases, in execution order; keys of
#: :attr:`RunTelemetry.phase_seconds` (see ``Engine.step``)
PHASE_NAMES = ("link", "injection", "crossbar", "routing")


def config_digest(config) -> str:
    """Stable short digest of a full run recipe.

    Hashes the canonical JSON of the config dataclass (all fields, sorted
    keys), so two configs collide exactly when every knob — including the
    seed and the statistics windows — agrees.  16 hex chars keep it
    greppable in logs while leaving collisions out of practical reach.
    """
    doc = json.dumps(dataclasses.asdict(config), sort_keys=True, default=str)
    return hashlib.sha256(doc.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class RunTelemetry:
    """Provenance and performance record of one finished run.

    Attributes:
        config_hash: :func:`config_digest` of the run recipe.
        seed: master RNG seed (echoed out of the config for quick access).
        cycles: simulated cycles covered by this run call.
        wall_clock_s: wall-clock duration of the run call in seconds.
        cycles_per_sec: simulated cycles per wall-clock second (the
            engine-throughput figure of merit for optimisation PRs).
        peak_in_flight: maximum number of packets simultaneously in the
            network at any point of the run (memory/backlog high-water
            mark; grows sharply past saturation).
        phase_seconds: wall-clock seconds spent in each phase of
            ``Engine.step`` over the run, keyed by :data:`PHASE_NAMES`
            (link traversal, injection, crossbar forwarding, header
            routing).  The phases nearly partition the step, so their sum
            approximates ``wall_clock_s`` minus loop overhead.  ``None``
            for documents written before the timers existed.
        forensics: the congestion-forensics document (latency
            attribution, wait-for graph summary, link hotspots) attached
            by :func:`repro.obs.forensics.attach_forensics` when the run
            was instrumented with a
            :class:`~repro.obs.forensics.ForensicsProbe`; ``None`` for
            uninstrumented runs and older archives.
        reliability: the reliable-transport accounting document (message
            states, retransmissions, ack latencies — and, for chaos
            campaign points, the fault-storm recipe under ``"storm"``)
            attached by :func:`repro.traffic.transport.attach_reliability`;
            ``None`` for runs without the transport and older archives.
        flight: the flight-recorder timeline document (cross-layer
            per-interval series, hot links, annotations) attached by
            :class:`repro.obs.flight.FlightRecorder` at run end; ``None``
            for unrecorded runs and older archives.
        statehash: the state-digest audit trail (the bounded chain of
            per-interval Merkle-style state roots) attached by
            :class:`repro.obs.statehash.StateDigestProbe` at run end —
            the input of ``repro diff`` divergence bisection; ``None``
            for undigested runs and older archives.
    """

    config_hash: str
    seed: int
    cycles: int
    wall_clock_s: float
    cycles_per_sec: float
    peak_in_flight: int
    phase_seconds: dict[str, float] | None = None
    forensics: dict | None = None
    reliability: dict | None = None
    flight: dict | None = None
    statehash: dict | None = None

    def to_dict(self) -> dict:
        """Plain-data form for JSON documents."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> RunTelemetry:
        """Inverse of :meth:`to_dict`; raises KeyError/TypeError on
        malformed input (callers wrap into AnalysisError)."""
        return cls(
            config_hash=doc["config_hash"],
            seed=doc["seed"],
            cycles=doc["cycles"],
            wall_clock_s=doc["wall_clock_s"],
            cycles_per_sec=doc["cycles_per_sec"],
            peak_in_flight=doc["peak_in_flight"],
            # absent from pre-phase-timer archives
            phase_seconds=doc.get("phase_seconds"),
            # absent from pre-forensics archives and uninstrumented runs
            forensics=doc.get("forensics"),
            # absent from pre-reliability archives and transportless runs
            reliability=doc.get("reliability"),
            # absent from pre-flight archives and unrecorded runs
            flight=doc.get("flight"),
            # absent from pre-statehash archives and undigested runs
            statehash=doc.get("statehash"),
        )

    def summary(self) -> str:
        """One-line digest for logs and CLI output."""
        return (
            f"config {self.config_hash} seed {self.seed}: "
            f"{self.cycles} cycles in {self.wall_clock_s:.2f}s "
            f"({self.cycles_per_sec:,.0f} cyc/s), "
            f"peak in-flight {self.peak_in_flight}"
        )

    def phase_summary(self) -> str:
        """One-line wall-time split across the engine's step phases.

        Shares are of the phase total (not the full wall clock), so they
        sum to 100% and stay comparable across runs with different
        amounts of loop overhead.  A 0-cycle run (e.g. a run call on an
        engine already past ``total_cycles``) has no phase time to
        split; an explicit empty summary is returned instead of nonsense
        percentages or a division error.
        """
        if self.cycles == 0:
            return "phases: none (0 cycles simulated)"
        if not self.phase_seconds:
            return "phase timers unavailable"
        total = sum(self.phase_seconds.values()) or 1.0
        parts = (
            f"{name} {self.phase_seconds.get(name, 0.0) / total:.0%}"
            for name in PHASE_NAMES
        )
        return "phases: " + " | ".join(parts)
