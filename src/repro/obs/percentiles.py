"""Shared latency-percentile formatting.

One vocabulary (``samples``/``mean``/``p50``/``p95``/``p99``/``max`` —
the keys produced by both
:meth:`~repro.sim.results.RunResult.latency_percentiles` and
:meth:`~repro.obs.forensics.StreamingHistogram.percentiles`) and two
render styles:

* :func:`format_percentiles` — the compact one-liner printed by
  ``repro-net run --latencies`` and the flight digests;
* :func:`percentile_table` — the aligned-column row used by the
  forensics digest (``repro-net run --forensics`` / ``analyze``).

Keeping both here means the CLI and the analyzers cannot drift apart on
which percentiles a "latency summary" contains.
"""

from __future__ import annotations

#: canonical percentile keys, in print order
PERCENTILE_KEYS = ("p50", "p95", "p99", "max")


def format_percentiles(pct: dict, unit: str = "cycles",
                       label: str = "latency percentiles") -> str:
    """Compact one-line summary of a percentile dict.

    ``{label} (N samples): p50=.. p95=.. p99=.. max=.. {unit}``
    """
    values = " ".join(f"{key}={pct[key]}" for key in PERCENTILE_KEYS)
    return f"{label} ({pct['samples']} samples): {values} {unit}"


def percentile_table(name: str, hist: dict, share: float | None = None) -> str:
    """One aligned table row of a percentile dict (forensics style).

    ``share`` renders as a percentage in a fixed-width cell; ``None``
    leaves the cell blank (the forensics digest's "network total" row).
    """
    cell = f"{share:>6.1%}" if share is not None else f"{'':>6}"
    return (
        f"  {name:<14} {cell}  mean {hist.get('mean', 0.0):>7.1f}  "
        f"p50 {hist.get('p50', 0):>5} p95 {hist.get('p95', 0):>5}  "
        f"p99 {hist.get('p99', 0):>5}  max {hist.get('max', 0):>5}"
    )
