"""Divergence bisection: when, where and *what* two runs disagree on.

The state-digest audit trail (:mod:`repro.obs.statehash`) records a
bounded chain of per-interval state roots.  This module turns two such
chains into an answer:

1. **Compare** the chains at their common sampled cycles and locate the
   first divergent interval (chains are compared by per-cycle *roots*;
   the ``chain_head`` values are the whole-run integrity summaries).
2. **Bisect**: deterministically re-run both configs with no probes
   attached, fast-forward to the last agreeing cycle, verify the replay
   reproduces the recorded root (a mismatch means the recorded run's
   probes perturbed state — e.g. a reliable transport, which wraps the
   sources — and the result is flagged ``unreplayable`` instead of
   silently wrong), then step cycle-by-cycle until the roots split:
   the **exact first divergent cycle**.
3. **Explain**: take detail fingerprints and un-hashed state snapshots
   of both engines at that cycle, flatten them into path -> value maps,
   and report every differing leaf — which subsystem, link, lane, flit
   pid or credit counter holds a different value.

Inputs are run documents (``repro run --statehash --json``), ledger
records, or bare config dicts; sides without a recorded chain are
re-run.  The outcome document is deterministic — byte-identical across
reruns of the same pair — so diffs themselves can be archived and
compared.

Example::

    from repro.obs.diff import diff_runs, describe_diff
    doc = diff_runs("a.json", "b.json")
    print(describe_diff(doc))
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from ..errors import AnalysisError, ConfigurationError, SimulationError
from .statehash import (
    SUBSYSTEMS,
    StateDigestConfig,
    engine_fingerprint,
    simulate_with_statehash,
    state_snapshot,
)
from .telemetry import config_digest

#: bump on breaking changes to the diff outcome document
DIFF_FORMAT_VERSION = 1

#: ``repro diff`` exit code when the runs diverge (0 = identical,
#: 2 = error, mirroring the bench gate's dedicated exit-code idiom)
DIVERGENCE_EXIT_CODE = 4

#: findings kept in the outcome document before truncation
DEFAULT_MAX_FINDINGS = 64

#: stands in for a leaf present on one side only
_ABSENT = "<absent>"


# -- input resolution ----------------------------------------------------------


@dataclasses.dataclass
class _Side:
    """One comparand: a config plus its (possibly re-run) digest chain."""

    label: str
    config: object
    chain: dict
    reran: bool


def _load_doc(source) -> dict:
    if isinstance(source, dict):
        return source
    path = pathlib.Path(source)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"cannot read run source {path}: {exc}") from exc


def _resolve_side(source, label: str, interval: int | None) -> _Side:
    """A diff side from a run document, ledger record or config dict.

    A recorded chain is reused when present and compatible with the
    requested interval; otherwise the config is re-run with a
    :class:`StateDigestProbe` to produce one.
    """
    from ..sim.config import SimulationConfig

    chain = None
    if isinstance(source, SimulationConfig):
        config = source
    else:
        doc = _load_doc(source)
        if isinstance(doc.get("run"), dict):  # ledger record
            doc = doc["run"]
        if "config" in doc and isinstance(doc["config"], dict):  # run document
            config = SimulationConfig(**doc["config"])
            chain = (doc.get("telemetry") or {}).get("statehash")
        else:  # bare config kwargs
            try:
                config = SimulationConfig(**doc)
            except TypeError as exc:
                raise AnalysisError(
                    f"{label}: neither a run document, a ledger record nor "
                    f"SimulationConfig kwargs ({exc})"
                ) from exc
    if chain is not None and interval is not None and chain["interval"] != interval:
        chain = None  # recorded at a different granularity: re-run
    reran = chain is None
    if reran:
        digest_config = StateDigestConfig(interval_cycles=interval or 128)
        result = simulate_with_statehash(config, digest_config)
        chain = result.telemetry.statehash
    return _Side(label=label, config=config, chain=chain, reran=reran)


def _config_fields_differ(config_a, config_b) -> list[str]:
    a, b = dataclasses.asdict(config_a), dataclasses.asdict(config_b)
    return sorted(k for k in a.keys() | b.keys() if a.get(k) != b.get(k))


# -- chain comparison ----------------------------------------------------------


def _chain_roots(chain: dict) -> dict[int, str]:
    return dict(zip(chain["cycles"], chain["roots"]))


def _subsystems_at(chain: dict, cycle: int) -> dict[str, str]:
    idx = chain["cycles"].index(cycle)
    return {name: chain["subsystems"][name][idx] for name in SUBSYSTEMS}


def compare_chains(chain_a: dict, chain_b: dict) -> dict:
    """Interval-level comparison of two digest chains.

    Returns ``{"common_cycles", "identical", "first_divergent_cycle",
    "last_agreeing_cycle", "subsystems_divergent"}``.  Chains sampled at
    incompatible strides share no cycles beyond genesis; at least two
    common cycles are required to say anything useful.

    Raises:
        ConfigurationError: when the chains share no sampled cycles.
    """
    roots_a, roots_b = _chain_roots(chain_a), _chain_roots(chain_b)
    common = sorted(roots_a.keys() & roots_b.keys())
    if not common:
        raise ConfigurationError(
            "digest chains share no sampled cycles (intervals "
            f"{chain_a['interval']}/{chain_a['stride']} vs "
            f"{chain_b['interval']}/{chain_b['stride']}); re-run with a "
            "common --interval"
        )
    first_div = None
    last_agree = None
    for cycle in common:
        if roots_a[cycle] != roots_b[cycle]:
            first_div = cycle
            break
        last_agree = cycle
    subsystems = []
    if first_div is not None:
        sub_a = _subsystems_at(chain_a, first_div)
        sub_b = _subsystems_at(chain_b, first_div)
        subsystems = [name for name in SUBSYSTEMS if sub_a[name] != sub_b[name]]
    return {
        "common_cycles": common,
        "identical": first_div is None,
        "first_divergent_cycle": first_div,
        "last_agreeing_cycle": last_agree,
        "subsystems_divergent": subsystems,
    }


# -- replay bisection ----------------------------------------------------------


def _replay_to(config, cycle: int):
    from ..sim.run import build_engine

    engine = build_engine(config)
    while engine.cycle < cycle:
        engine.step()
    return engine


def _bisect(side_a: _Side, side_b: _Side, last_agree: int | None, first_div: int) -> dict:
    """Replay both sides and narrow the divergence to one cycle.

    The replay runs probe-less, so before bisecting, each side's
    replayed root at the last agreeing cycle is checked against its
    recorded chain.  A mismatch means the recorded state evolution
    cannot be reproduced from the config alone (state-perturbing probe,
    e.g. the reliable transport) — reported as ``unreplayable`` with
    the interval-level divergence left standing.
    """
    start = 0 if last_agree is None else last_agree
    try:
        eng_a = _replay_to(side_a.config, start)
        eng_b = _replay_to(side_b.config, start)
    except SimulationError as exc:
        return {"status": "replay-failed", "cycle": None, "error": str(exc)}
    if last_agree is not None:
        recorded_a = _chain_roots(side_a.chain)[last_agree]
        recorded_b = _chain_roots(side_b.chain)[last_agree]
        faithful_a = engine_fingerprint(eng_a)["root"] == recorded_a
        faithful_b = engine_fingerprint(eng_b)["root"] == recorded_b
        if not (faithful_a and faithful_b):
            return {
                "status": "unreplayable",
                "cycle": None,
                "replay_faithful": {"a": faithful_a, "b": faithful_b},
            }
    fp_a = engine_fingerprint(eng_a)
    fp_b = engine_fingerprint(eng_b)
    try:
        while fp_a["root"] == fp_b["root"] and eng_a.cycle < first_div:
            eng_a.step()
            eng_b.step()
            fp_a = engine_fingerprint(eng_a)
            fp_b = engine_fingerprint(eng_b)
    except SimulationError as exc:
        return {"status": "replay-failed", "cycle": eng_a.cycle, "error": str(exc)}
    if fp_a["root"] == fp_b["root"]:
        # the recorded chains disagree at first_div but the replays do
        # not: the recorded divergence came from probe-side state
        return {"status": "not-reproduced", "cycle": None}
    return {
        "status": "exact",
        "cycle": eng_a.cycle,
        "subsystems": [name for name in SUBSYSTEMS if fp_a[name] != fp_b[name]],
        "engines": (eng_a, eng_b),
    }


# -- snapshot diffing ----------------------------------------------------------


def _flatten(prefix: str, obj, out: dict) -> None:
    if isinstance(obj, dict):
        for key in sorted(obj):
            _flatten(f"{prefix}/{key}", obj[key], out)
    elif isinstance(obj, (list, tuple)):
        for i, value in enumerate(obj):
            _flatten(f"{prefix}/{i}", value, out)
    else:
        out[prefix] = obj


def _classify(path: str) -> dict:
    """Map a flattened snapshot path to (subsystem, location, lane, field)."""
    seg = path.split("/")
    subsystem = "engine" if seg[0] == "counters" else seg[0]
    location = None
    lane = None
    if seg[0] == "fabric" and len(seg) > 1:
        if seg[1] == "links" and len(seg) > 2:
            location = seg[2]
            if len(seg) > 4 and seg[3] == "lanes":
                lane = seg[4]
        elif seg[1] == "routing":
            location = "routing"
    elif seg[0] == "injection" and len(seg) > 1:
        location = f"node {seg[1]}"
        if len(seg) > 3 and seg[2] == "lanes":
            lane = seg[3]
    elif seg[0] == "transport" and len(seg) > 1:
        location = seg[1]
    elif seg[0] == "rng" and len(seg) > 1:
        location = f"node {seg[2]}" if seg[1] == "sources" and len(seg) > 2 else seg[1]
    return {
        "path": path,
        "subsystem": subsystem,
        "location": location,
        "lane": lane,
        "field": seg[-1],
    }


def snapshot_diff(snap_a: dict, snap_b: dict, max_findings: int = DEFAULT_MAX_FINDINGS):
    """(findings, dropped): every leaf where two snapshots disagree.

    Findings are sorted by path and truncated deterministically, so the
    same pair of snapshots always produces the same document.
    """
    flat_a: dict = {}
    flat_b: dict = {}
    _flatten("", snap_a, flat_a)
    _flatten("", snap_b, flat_b)
    findings = []
    for path in sorted(flat_a.keys() | flat_b.keys()):
        va = flat_a.get(path, _ABSENT)
        vb = flat_b.get(path, _ABSENT)
        if va == vb:
            continue
        finding = _classify(path.lstrip("/"))
        finding["a"] = va
        finding["b"] = vb
        findings.append(finding)
    dropped = max(0, len(findings) - max_findings)
    return findings[:max_findings], dropped


# -- the full diff -------------------------------------------------------------


def _side_doc(side: _Side) -> dict:
    chain = side.chain
    return {
        "label": side.label,
        "config_hash": config_digest(side.config),
        "seed": side.config.seed,
        "entries": chain["entries"],
        "interval": chain["interval"],
        "stride": chain["stride"],
        "chain_head": chain["chain_head"],
        "reran": side.reran,
    }


def diff_runs(
    a,
    b,
    interval: int | None = None,
    max_findings: int = DEFAULT_MAX_FINDINGS,
    bisect: bool = True,
) -> dict:
    """The full divergence report between two runs.

    ``a``/``b`` are paths to JSON files (run documents, ledger records
    or bare config kwargs), already-loaded dicts of the same shapes, or
    :class:`~repro.sim.config.SimulationConfig` objects.  Sides without
    a recorded digest chain (or recorded at a different interval than
    requested) are re-run deterministically.

    Returns the outcome document; ``doc["identical"]`` is the verdict.
    """
    label_a = str(a) if isinstance(a, (str, pathlib.Path)) else "a"
    label_b = str(b) if isinstance(b, (str, pathlib.Path)) else "b"
    side_a = _resolve_side(a, label_a, interval)
    side_b = _resolve_side(b, label_b, interval)
    comparison = compare_chains(side_a.chain, side_b.chain)
    notes = []
    fields = _config_fields_differ(side_a.config, side_b.config)
    if fields:
        notes.append("configs differ: " + ", ".join(fields))
    if side_a.chain["entries"] != side_b.chain["entries"]:
        notes.append(
            f"chain lengths differ ({side_a.chain['entries']} vs "
            f"{side_b.chain['entries']} entries)"
        )
    doc = {
        "format": DIFF_FORMAT_VERSION,
        "a": _side_doc(side_a),
        "b": _side_doc(side_b),
        "config_fields_differ": fields,
        "identical": comparison["identical"],
        "compared_entries": len(comparison["common_cycles"]),
        "last_agreeing_cycle": comparison["last_agreeing_cycle"],
        "first_divergent_interval_cycle": comparison["first_divergent_cycle"],
        "subsystems_divergent": comparison["subsystems_divergent"],
        "bisection": None,
        "findings": [],
        "findings_dropped": 0,
        "notes": notes,
    }
    if comparison["identical"] or not bisect:
        if not comparison["identical"]:
            doc["bisection"] = {"status": "skipped", "cycle": None}
        return doc
    outcome = _bisect(
        side_a,
        side_b,
        comparison["last_agreeing_cycle"],
        comparison["first_divergent_cycle"],
    )
    engines = outcome.pop("engines", None)
    doc["bisection"] = outcome
    if outcome["status"] == "exact" and engines is not None:
        eng_a, eng_b = engines
        findings, dropped = snapshot_diff(
            state_snapshot(eng_a), state_snapshot(eng_b), max_findings
        )
        doc["findings"] = findings
        doc["findings_dropped"] = dropped
    elif outcome["status"] == "unreplayable":
        doc["notes"].append(
            "recorded runs used a state-perturbing probe (e.g. the reliable "
            "transport); bisection needs plain-config replays — divergence "
            "is reported at interval granularity only"
        )
    return doc


# -- rendering -----------------------------------------------------------------


def _finding_line(f: dict) -> str:
    where = f["subsystem"]
    if f["location"]:
        where += f" {f['location']}"
    if f["lane"]:
        where += f" {f['lane']}"
    return f"  {where}: {f['path']} = {f['a']!r} vs {f['b']!r}"


def describe_diff(doc: dict) -> str:
    """The human-readable report for ``repro diff`` text output."""
    a, b = doc["a"], doc["b"]
    lines = [
        f"a: {a['label']} (config {a['config_hash']}, seed {a['seed']}, "
        f"{a['entries']} samples @ stride {a['stride']})"
        + (" [re-run]" if a["reran"] else ""),
        f"b: {b['label']} (config {b['config_hash']}, seed {b['seed']}, "
        f"{b['entries']} samples @ stride {b['stride']})"
        + (" [re-run]" if b["reran"] else ""),
    ]
    for note in doc["notes"]:
        lines.append(f"note: {note}")
    if doc["identical"]:
        lines.append(
            f"IDENTICAL over {doc['compared_entries']} common sampled cycles "
            f"(last agreeing cycle {doc['last_agreeing_cycle']})"
        )
        return "\n".join(lines)
    last = doc["last_agreeing_cycle"]
    agree = f"cycle {last}" if last is not None else "none"
    lines.append(
        f"DIVERGED within interval ending cycle "
        f"{doc['first_divergent_interval_cycle']} "
        f"(last agreeing sample: {agree}); "
        "subsystems: " + (", ".join(doc["subsystems_divergent"]) or "?")
    )
    bisection = doc["bisection"] or {"status": "skipped"}
    status = bisection["status"]
    if status == "exact":
        lines.append(
            f"bisected: first divergent cycle {bisection['cycle']} "
            f"({', '.join(bisection.get('subsystems', [])) or 'root only'})"
        )
        for f in doc["findings"]:
            lines.append(_finding_line(f))
        if doc["findings_dropped"]:
            lines.append(f"  ... {doc['findings_dropped']} more differing fields")
    elif status == "unreplayable":
        faithful = bisection.get("replay_faithful", {})
        lines.append(
            "bisection unavailable: plain-config replay does not reproduce "
            f"the recorded chain (faithful: a={faithful.get('a')}, "
            f"b={faithful.get('b')})"
        )
    elif status == "not-reproduced":
        lines.append(
            "bisection found no divergence on replay: the recorded "
            "difference lives in probe-side state, not the engine"
        )
    elif status == "replay-failed":
        lines.append(f"bisection aborted: replay failed ({bisection.get('error')})")
    else:
        lines.append("bisection skipped")
    return "\n".join(lines)
