"""Stdlib-SVG rendering of forensics data: hotspot heatmaps, breakdowns.

Pure string assembly (same no-dependency policy as
:mod:`repro.obs.report`) turning the forensics document's sections into
standalone ``<svg>`` fragments:

* :func:`hotspot_heatmap_svg` — per-switch congestion heatmap from the
  per-physical-link hotspot records.  Layout follows the topology: a
  k-ary n-tree renders as *levels × switches-per-level* (level 0, the
  leaf row, at the bottom — congestion on the paper's tree lives in the
  upper levels), a k-ary 2-cube as its natural k × k grid (16 × 16 for
  the paper's network).  Cell colour encodes the switch's share of the
  run's worst blocked-cycle total; hovering a cell shows exact counts.
* :func:`latency_breakdown_svg` — one stacked bar of the four latency
  components' shares plus a per-component percentile table
  (mean/p50/p95/p99/max) from the attribution histograms.
* :func:`flight_timeline_svg` — stacked sparkline panels over one
  flight-recorder document (:mod:`repro.obs.flight`): injection vs
  delivery rates, fabric occupancy, transport and control dynamics,
  with annotation stripes (fault strikes, first mark/decrease,
  collapse onset).

Both are embedded in the ``repro-net report`` scorecard next to the CNF
panels and written standalone by ``repro-net analyze``.
"""

from __future__ import annotations

import html

from ..errors import AnalysisError
from .forensics import COMPONENTS

#: Okabe–Ito colours for the four latency components (+ the total)
COMPONENT_COLORS = {
    "source_wait": "#0072B2",
    "routing_stall": "#E69F00",
    "blocked": "#D55E00",
    "transfer": "#009E73",
    "network_latency": "#555555",
}

#: heat ramp endpoints: white (cold) to Okabe–Ito vermilion (hot)
_COLD = (255, 255, 255)
_HOT = (213, 94, 0)


def _heat_color(frac: float) -> str:
    """Linear white→vermilion ramp over ``frac`` in [0, 1]."""
    frac = min(1.0, max(0.0, frac))
    r, g, b = (round(c + (h - c) * frac) for c, h in zip(_COLD, _HOT))
    return f"#{r:02x}{g:02x}{b:02x}"


def _switch_totals(hotspots: dict) -> dict[int, dict]:
    """Aggregate the per-link records per switch (sum over directions)."""
    totals: dict[int, dict] = {}
    for rec in hotspots.get("links", ()):
        s = rec["switch"]
        entry = totals.setdefault(s, {"blocked_cycles": 0, "flits": 0})
        entry["blocked_cycles"] += rec["blocked_cycles"]
        entry["flits"] += rec["flits"]
    return totals


def _grid_geometry(hotspots: dict) -> tuple[int, int, list[tuple[int, int, int]]]:
    """(cols, rows, [(switch, col, row)]) for the network's natural grid."""
    network = hotspots.get("network")
    k = hotspots.get("k") or 1
    n = hotspots.get("n") or 1
    num_switches = hotspots.get("num_switches") or 0
    if not num_switches:
        raise AnalysisError("hotspot document carries no switches to draw")
    cells = []
    if network == "tree":
        # one row per level; level 0 (the leaf row) rendered at the bottom
        per_level = max(1, num_switches // max(1, n))
        cols, rows = per_level, n
        for s in range(num_switches):
            level = s // per_level
            cells.append((s, s % per_level, rows - 1 - level))
    else:
        # cube: k columns; n=2 gives the natural k x k grid, n=1 one row
        cols = k
        rows = (num_switches + cols - 1) // cols
        for s in range(num_switches):
            cells.append((s, s % cols, s // cols))
    return cols, rows, cells


def hotspot_heatmap_svg(
    hotspots: dict, metric: str = "blocked_cycles", title: str | None = None
) -> str:
    """The per-switch congestion heatmap as one standalone ``<svg>``.

    Args:
        hotspots: the ``hotspots`` section of a forensics document.
        metric: ``"blocked_cycles"`` (congestion, default) or
            ``"flits"`` (utilization).
        title: heading inside the SVG (defaults to a metric description).

    Raises:
        AnalysisError: when the document describes no switches.
    """
    cols, rows, cells = _grid_geometry(hotspots)
    totals = _switch_totals(hotspots)
    peak = max((t[metric] for t in totals.values()), default=0)

    cell = max(8, min(30, 640 // cols))
    pad, top = 34, 40
    width = pad + cols * cell + 14
    height = top + rows * cell + 16
    label = title or (
        f"{hotspots.get('network', '?')} link hotspots — {metric.replace('_', ' ')} "
        f"per switch (peak {peak})"
    )
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img">',
        f'<text x="{pad}" y="16" class="ptitle" text-anchor="start">'
        f"{html.escape(label)}</text>",
    ]
    if hotspots.get("network") == "tree":
        for row in range(rows):
            level = rows - 1 - row
            parts.append(
                f'<text x="{pad - 6}" y="{top + row * cell + cell / 2 + 3:.0f}" '
                f'class="tick ylab">lvl {level}</text>'
            )
    for s, col, row in cells:
        entry = totals.get(s, {"blocked_cycles": 0, "flits": 0})
        value = entry[metric]
        frac = value / peak if peak else 0.0
        x, y = pad + col * cell, top + row * cell
        tooltip = (
            f"switch {s}: {entry['blocked_cycles']} blocked cycles, "
            f"{entry['flits']} flits"
        )
        parts.append(
            f'<rect x="{x}" y="{y}" width="{cell - 1}" height="{cell - 1}" '
            f'fill="{_heat_color(frac)}" stroke="#ccc" stroke-width="0.5">'
            f"<title>{html.escape(tooltip)}</title></rect>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def latency_breakdown_svg(attribution: dict, title: str | None = None) -> str:
    """The latency-breakdown panel: stacked component bar + percentiles.

    Args:
        attribution: the ``attribution`` section of a forensics document.
        title: heading inside the SVG.

    Raises:
        AnalysisError: when the document recorded no packets.
    """
    packets = attribution.get("packets", 0)
    if not packets:
        raise AnalysisError("attribution document holds no delivered packets")
    shares = attribution.get("share", {})
    components = attribution.get("components", {})

    bar_x, bar_y, bar_w, bar_h = 20, 34, 560, 24
    row_h, table_y = 17, bar_y + bar_h + 24
    names = list(COMPONENTS) + ["network_latency"]
    width = bar_x + bar_w + 20
    height = table_y + (len(names) + 1) * row_h + 12
    label = title or (
        f"latency attribution — {packets} packets "
        f"({attribution.get('pattern', '?')} traffic)"
    )
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img">',
        f'<text x="{bar_x}" y="16" class="ptitle" text-anchor="start">'
        f"{html.escape(label)}</text>",
    ]
    x = float(bar_x)
    for name in COMPONENTS:
        share = shares.get(name, 0.0)
        w = share * bar_w
        if w > 0:
            parts.append(
                f'<rect x="{x:.1f}" y="{bar_y}" width="{w:.1f}" height="{bar_h}" '
                f'fill="{COMPONENT_COLORS[name]}">'
                f"<title>{html.escape(name)}: {share:.1%}</title></rect>"
            )
            if w > 46:
                parts.append(
                    f'<text x="{x + w / 2:.1f}" y="{bar_y + bar_h - 8}" '
                    f'class="barlabel">{share:.0%}</text>'
                )
        x += w
    cols = (160, 250, 320, 390, 460, 530)
    header = ("component", "mean", "p50", "p95", "p99", "max")
    parts += [
        f'<text x="{cx}" y="{table_y}" class="tick" text-anchor="end">'
        f"{html.escape(h)}</text>"
        for cx, h in zip(cols, header)
    ]
    for i, name in enumerate(names):
        hist = components.get(name, {})
        y = table_y + (i + 1) * row_h
        color = COMPONENT_COLORS.get(name, "#555")
        parts.append(
            f'<rect x="{bar_x}" y="{y - 9}" width="9" height="9" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{cols[0]}" y="{y}" class="tick" text-anchor="end">'
            f"{html.escape(name.replace('_', ' '))}</text>"
        )
        values = (
            f"{hist.get('mean', 0.0):.1f}",
            str(hist.get("p50", 0)),
            str(hist.get("p95", 0)),
            str(hist.get("p99", 0)),
            str(hist.get("max", 0)),
        )
        parts += [
            f'<text x="{cx}" y="{y}" class="tick" text-anchor="end">{v}</text>'
            for cx, v in zip(cols[1:], values)
        ]
    parts.append("</svg>")
    return "\n".join(parts)


#: annotation stripe colours by kind (anything else renders grey)
_ANNOTATION_COLORS = {
    "fault_strike": "#D55E00",
    "fault_repair": "#009E73",
    "first_mark": "#E69F00",
    "first_decrease": "#0072B2",
    "collapse_onset": "#000000",
    "stall": "#CC79A7",
}

#: flight timeline panels: (title, ((series key, colour, per-cycle), ...))
#: gated on the layer flags; per-cycle series are divided by the row span
_FLIGHT_PANELS = (
    (None, "rates (flits/cycle)", (
        ("offered", "#555555", True),
        ("injected", "#0072B2", True),
        ("delivered", "#009E73", True),
    )),
    (None, "fabric (occupancy, blocked)", (
        ("occupancy", "#E69F00", False),
        ("blocked", "#D55E00", True),
    )),
    ("transport", "transport (outstanding, retx)", (
        ("outstanding", "#0072B2", False),
        ("retx", "#D55E00", False),
    )),
    ("control", "control (cwnd, marks)", (
        ("cwnd_mean", "#0072B2", False),
        ("cwnd_min", "#56B4E9", False),
        ("marks", "#D55E00", False),
    )),
)


def flight_timeline_svg(doc: dict, title: str | None = None, width: int = 640) -> str:
    """A flight-recorder timeline as one standalone ``<svg>``.

    Stacked sparkline panels sharing the cycle axis — injection/delivery
    rates, fabric occupancy, and (when the run carried them) transport
    and control-loop dynamics.  Each series is normalized to its own
    peak (the hover tooltip carries the exact peak), so panels mixing
    units stay readable; annotations render as vertical stripes coloured
    by kind, with the collapse onset dashed.

    Args:
        doc: a flight document (``telemetry.flight`` /
            :meth:`~repro.obs.flight.FlightRecorder.document`).
        title: heading inside the SVG.

    Raises:
        AnalysisError: when the document holds no sampled intervals.
    """
    series = doc.get("series", {})
    cycles = series.get("cycle") or []
    if not cycles:
        raise AnalysisError("flight document holds no sampled intervals")
    spans = series.get("span") or [1] * len(cycles)
    layers = doc.get("layers", {})
    panels = [
        (heading, keys)
        for layer, heading, keys in _FLIGHT_PANELS
        if layer is None or layers.get(layer)
    ]

    pad, right, top = 40, 10, 24
    panel_h, head_h, gap = 52, 16, 12
    plot_w = width - pad - right
    xmax = max(cycles[-1], 1)
    height = top + len(panels) * (head_h + panel_h + gap) + 14
    label = title or (
        f"flight timeline — {doc.get('rows', len(cycles))} intervals, "
        f"stride {doc.get('stride', doc.get('interval', '?'))} cycles"
    )
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img">',
        f'<text x="{pad}" y="15" class="ptitle" text-anchor="start">'
        f"{html.escape(label)}</text>",
    ]

    def x_of(cycle: int) -> float:
        return pad + plot_w * cycle / xmax

    y = top
    for heading, keys in panels:
        y += head_h
        legend = []
        parts.append(
            f'<rect x="{pad}" y="{y}" width="{plot_w}" height="{panel_h}" '
            f'fill="none" stroke="#ddd" stroke-width="0.5"/>'
        )
        for key, color, per_cycle in keys:
            values = series.get(key)
            if values is None:
                continue
            points = [
                v / (spans[i] or 1) if per_cycle else float(v)
                for i, v in enumerate(values)
            ]
            peak = max(points)
            scale = peak if peak > 0 else 1.0
            coords = " ".join(
                f"{x_of(cycles[i]):.1f},{y + panel_h - panel_h * p / scale:.1f}"
                for i, p in enumerate(points)
            )
            parts.append(
                f'<polyline points="{coords}" fill="none" stroke="{color}" '
                f'stroke-width="1.3"><title>{html.escape(key)}: peak '
                f"{peak:.2f}{'/cycle' if per_cycle else ''}</title></polyline>"
            )
            legend.append(f'<tspan fill="{color}">{html.escape(key)}</tspan>')
        parts.append(
            f'<text x="{pad}" y="{y - 4}" class="tick" text-anchor="start">'
            f"{html.escape(heading)}   " + "  ".join(legend) + "</text>"
        )
        y += panel_h + gap

    plot_top, plot_bot = top + head_h, y - gap
    for ann in doc.get("annotations", ()):
        kind = ann.get("kind", "?")
        ax = x_of(min(ann.get("cycle", 0), xmax))
        color = _ANNOTATION_COLORS.get(kind, "#888888")
        dash = ' stroke-dasharray="4 3"' if kind == "collapse_onset" else ""
        tooltip = f"{kind} @ {ann.get('cycle', '?')}"
        if ann.get("detail"):
            tooltip += f": {ann['detail']}"
        parts.append(
            f'<line x1="{ax:.1f}" y1="{plot_top}" x2="{ax:.1f}" y2="{plot_bot}" '
            f'stroke="{color}" stroke-width="1" opacity="0.7"{dash}>'
            f"<title>{html.escape(tooltip)}</title></line>"
        )
    parts.append(
        f'<text x="{pad}" y="{height - 4}" class="tick" text-anchor="start">0</text>'
    )
    parts.append(
        f'<text x="{pad + plot_w}" y="{height - 4}" class="tick" '
        f'text-anchor="end">{xmax:,} cycles</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


#: minimal inline CSS for standalone SVG files (the scorecard's page CSS
#: covers these classes when embedded there)
_STANDALONE_CSS = (
    "<style>"
    ".ptitle { font: 600 12px system-ui, sans-serif; }"
    ".tick { font: 10px system-ui, sans-serif; fill: #444; }"
    ".ylab { text-anchor: end; }"
    ".barlabel { font: 600 10px system-ui, sans-serif; fill: #fff;"
    " text-anchor: middle; }"
    "</style>"
)


def standalone_svg(svg: str) -> str:
    """Inject the inline stylesheet so the SVG renders outside the
    scorecard page (e.g. the file ``repro-net analyze --heatmap``
    writes, viewed directly in a browser)."""
    head, sep, tail = svg.partition(">")
    return head + sep + _STANDALONE_CSS + tail
