"""Append-only JSONL metrics ledger: the durable store of run results.

PR 2 made every run emit a versioned document with telemetry; this module
gives those documents somewhere to live *across* campaigns.  A
:class:`Ledger` is one JSONL file — one self-describing record per line —
that every ``repro-net run/sweep/trace/faults --ledger`` invocation
appends to.  Appending is the only mutation, so concurrent campaigns can
share a ledger (each ``append`` is a single atomic ``write`` of one
line, flushed and fsynced before the call returns), a crashed run loses
at most its in-flight line, and the file diffs/merges cleanly under
version control.

Records wrap the run document of :mod:`repro.metrics.io` with query
metadata (config digest, seed, network/pattern/algorithm echo, a
wall-clock timestamp and a free-form ``kind`` tag), so common questions —
"every cube point of this campaign", "all runs of recipe ``ab12..``",
"what did we measure last week" — are answered by :meth:`Ledger.query`
without parsing the nested documents.  Re-appending a recipe that is
already on file (same config digest *and* seed) is a no-op by default:
sweeps replay cached points freely and the ledger stays deduplicated.

Example::

    from repro.obs.ledger import Ledger
    ledger = Ledger("runs.jsonl")
    ledger.append_run(simulate(config))
    for result in ledger.runs(network="tree", pattern="uniform"):
        print(result.summary())
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from collections.abc import Iterator

from ..errors import AnalysisError
from ..sim.results import RunResult
from .telemetry import config_digest

#: bump on breaking changes to the per-line record layout
LEDGER_FORMAT_VERSION = 1


def ledger_record(result: RunResult, kind: str = "run", recorded_at: float | None = None) -> dict:
    """Build one ledger line (a plain dict) for a finished run.

    Query metadata is lifted to the top level; the full versioned run
    document (config + counters + telemetry) nests under ``"run"``.
    Reliability accounting surfaces ``given_up`` (messages the transport
    abandoned) alongside it so give-ups are greppable straight off the
    JSONL without unpacking the nested document.
    """
    # local import: metrics.io imports the obs package for RunTelemetry
    from ..metrics.io import run_result_to_dict

    config = result.config
    digest = (
        result.telemetry.config_hash if result.telemetry else config_digest(config)
    )
    return {
        "format": LEDGER_FORMAT_VERSION,
        "kind": kind,
        "recorded_at": time.time() if recorded_at is None else recorded_at,
        "config_hash": digest,
        "seed": config.seed,
        "network": config.network,
        "pattern": config.pattern,
        "algorithm": config.algorithm,
        "k": config.k,
        "n": config.n,
        "vcs": config.vcs,
        "load": config.load,
        "given_up": result.given_up_packets,
        "run": run_result_to_dict(result),
    }


class Ledger:
    """One append-only JSONL results ledger on disk.

    Args:
        path: the ledger file; created (with parents) on first append.

    The file is re-read on demand and never held open, so long-lived
    processes see records appended by others, and a ledger object is
    cheap to construct wherever one is needed.
    """

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)
        #: (config_hash, seed) pairs known to be on file; lazily built,
        #: then maintained incrementally by append_run
        self._seen: set[tuple[str, int]] | None = None

    # -- writing ---------------------------------------------------------------

    def append_run(self, result: RunResult, kind: str = "run", dedup: bool = True) -> bool:
        """Append one run; returns False when deduplicated away.

        Dedup key is (config digest, seed): the digest already covers the
        seed, but keeping the seed explicit makes the key robust to
        digest-algorithm changes across code versions.
        """
        record = ledger_record(result, kind=kind)
        key = (record["config_hash"], record["seed"])
        if dedup and key in self._known_keys():
            return False
        self._append_line(record)
        if self._seen is not None:
            self._seen.add(key)
        return True

    def _append_line(self, record: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True) + "\n"
        # one write call per record: atomic on POSIX for these line sizes,
        # so concurrent appenders interleave whole lines, not fragments;
        # flush + fsync before close so a completed append survives a
        # crash/power cut — the ledger is the durable record of a
        # campaign, losing the line that was just acknowledged defeats it
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())

    def _known_keys(self) -> set[tuple[str, int]]:
        if self._seen is None:
            self._seen = {
                (rec["config_hash"], rec["seed"]) for rec in self.records()
            }
        return self._seen

    # -- reading ---------------------------------------------------------------

    def records(self) -> Iterator[dict]:
        """Yield every record on file, oldest first.

        Raises:
            AnalysisError: on an unparseable line or an incompatible
                record format (a ledger is data, not a log to skim past).
        """
        if not self.path.exists():
            return
        with self.path.open(encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                if not line.strip():
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise AnalysisError(
                        f"{self.path}:{lineno}: unparseable ledger line: {exc}"
                    ) from exc
                version = rec.get("format")
                if version != LEDGER_FORMAT_VERSION:
                    raise AnalysisError(
                        f"{self.path}:{lineno}: unsupported ledger format "
                        f"{version!r} (expected {LEDGER_FORMAT_VERSION})"
                    )
                yield rec

    def query(
        self,
        config_hash: str | None = None,
        network: str | None = None,
        pattern: str | None = None,
        algorithm: str | None = None,
        kind: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[dict]:
        """Records matching every given filter (None means "any").

        ``since``/``until`` bound the ``recorded_at`` timestamp
        (inclusive / exclusive), so a campaign window can be replayed
        without touching older archives in the same file.
        """
        out = []
        for rec in self.records():
            if config_hash is not None and rec["config_hash"] != config_hash:
                continue
            if network is not None and rec["network"] != network:
                continue
            if pattern is not None and rec["pattern"] != pattern:
                continue
            if algorithm is not None and rec["algorithm"] != algorithm:
                continue
            if kind is not None and rec["kind"] != kind:
                continue
            if since is not None and rec["recorded_at"] < since:
                continue
            if until is not None and rec["recorded_at"] >= until:
                continue
            out.append(rec)
        return out

    def runs(self, **filters) -> list[RunResult]:
        """The matching records rehydrated into :class:`RunResult`\\ s.

        Accepts the same keyword filters as :meth:`query`.
        """
        from ..metrics.io import run_result_from_dict

        return [run_result_from_dict(rec["run"]) for rec in self.query(**filters)]

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ledger({str(self.path)!r})"
