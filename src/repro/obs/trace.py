"""Packet-lifecycle event tracing.

A :class:`TraceProbe` records the life of every packet — generation,
injection, one routing event per hop, header delivery, tail delivery —
plus coalesced blocked intervals per link direction, and exports the
record two ways:

* **JSONL** (:meth:`TraceProbe.write_jsonl`) — one JSON object per
  event, trivially greppable/streamable (`jq 'select(.pid == 7)'`);
* **Chrome trace_event** (:meth:`TraceProbe.write_chrome_trace`) — a
  document loadable in ``chrome://tracing`` / Perfetto: each packet is a
  duration slice on its source node's track (cycle ≙ microsecond), hops
  are instant events on the slice, and blocked intervals appear as
  slices on a per-switch "fabric" track.

Tracing every event of a saturated 256-node run produces millions of
records, so the probe takes a ``max_events`` cap: past it, new events are
dropped and :attr:`TraceProbe.truncated` is set (blocked-interval
bookkeeping continues so intervals already open still close correctly).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass

from .probe import Probe

#: event kinds, in lifecycle order (drop ends a packet's life instead of
#: tail under fail-stop faults; blocked is fabric-side, unordered)
EVENT_KINDS = ("generate", "inject", "route", "head", "tail", "drop", "blocked")


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    ``cycle`` is the event time; ``dur`` is nonzero only for ``blocked``
    intervals.  Packet events carry ``pid/src/dst/size``; ``route`` and
    ``blocked`` events also locate the switch (and port/vc for routes).
    Unused fields hold ``None`` so JSONL lines stay self-describing.
    """

    cycle: int
    kind: str
    pid: int | None = None
    src: int | None = None
    dst: int | None = None
    size: int | None = None
    switch: int | None = None
    port: int | None = None
    vc: int | None = None
    count: int | None = None
    dur: int | None = None


class TraceProbe(Probe):
    """Record flit-level lifecycle events for export.

    Args:
        max_events: cap on stored events; exceeding it sets
            :attr:`truncated` instead of exhausting memory.
        record_blocked: also record per-direction blocked intervals
            (coalesced from per-cycle blocked callbacks).  Under deep
            saturation these dominate the trace; disable for
            packet-only traces.
    """

    def __init__(self, max_events: int = 1_000_000, record_blocked: bool = True):
        self.max_events = max_events
        self.record_blocked = record_blocked
        self.events: list[TraceEvent] = []
        self.truncated = False
        #: direction -> (interval start cycle, last blocked cycle)
        self._open_blocks: dict = {}
        self._last_cycle = 0

    # -- probe callbacks -----------------------------------------------------

    def bind(self, engine) -> None:
        self._engine = engine

    def _emit(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(event)

    def on_packets_generated(self, cycle: int, node: int, count: int) -> None:
        self._emit(TraceEvent(cycle=cycle, kind="generate", src=node, count=count))

    def on_packet_injected(self, cycle: int, packet) -> None:
        self._emit(
            TraceEvent(
                cycle=cycle, kind="inject", pid=packet.pid,
                src=packet.src, dst=packet.dst, size=packet.size,
            )
        )

    def on_header_routed(self, cycle: int, switch: int, in_lane, out_lane) -> None:
        pkt = in_lane.packet
        self._emit(
            TraceEvent(
                cycle=cycle, kind="route", pid=pkt.pid, src=pkt.src, dst=pkt.dst,
                switch=switch, port=out_lane.port, vc=out_lane.vc,
            )
        )

    def on_head_delivered(self, cycle: int, packet) -> None:
        self._emit(
            TraceEvent(
                cycle=cycle, kind="head", pid=packet.pid,
                src=packet.src, dst=packet.dst,
            )
        )

    def on_tail_delivered(self, cycle: int, packet) -> None:
        self._emit(
            TraceEvent(
                cycle=cycle, kind="tail", pid=packet.pid,
                src=packet.src, dst=packet.dst, size=packet.size,
            )
        )

    def on_packet_dropped(self, cycle: int, packet, reason: str) -> None:
        self._emit(
            TraceEvent(
                cycle=cycle, kind="drop", pid=packet.pid,
                src=packet.src, dst=packet.dst, size=packet.size,
            )
        )

    def on_direction_blocked(self, cycle: int, direction) -> None:
        if not self.record_blocked:
            return
        open_ = self._open_blocks.get(direction)
        if open_ is not None and open_[1] == cycle - 1:
            open_[1] = cycle  # extend the current interval
        else:
            if open_ is not None:
                self._close_block(direction, open_)
            self._open_blocks[direction] = [cycle, cycle]

    def on_cycle(self, cycle: int) -> None:
        self._last_cycle = cycle

    def on_run_end(self, engine) -> None:
        for direction, open_ in list(self._open_blocks.items()):
            self._close_block(direction, open_)
        self._open_blocks.clear()

    def _close_block(self, direction, open_) -> None:
        start, last = open_
        self._emit(
            TraceEvent(
                cycle=start, kind="blocked",
                switch=direction.switch, port=direction.port,
                dur=last - start + 1,
            )
        )

    # -- export --------------------------------------------------------------

    def write_jsonl(self, path: str | pathlib.Path) -> int:
        """Write one JSON object per event; returns the event count."""
        with open(path, "w") as fh:
            for ev in self.events:
                doc = {k: v for k, v in asdict(ev).items() if v is not None}
                fh.write(json.dumps(doc))
                fh.write("\n")
        return len(self.events)

    def chrome_trace_dict(self) -> dict:
        """Build the Chrome ``trace_event`` document as plain data.

        Packets become complete ("X") slices on track ``pid=0`` (one
        ``tid`` per source node); per-hop routes are instant ("i")
        events; blocked intervals are slices on track ``pid=1`` (one
        ``tid`` per switch).  One simulated cycle maps to one
        microsecond of trace time.
        """
        out: list[dict] = []
        inject: dict[int, TraceEvent] = {}
        for ev in self.events:
            if ev.kind == "inject":
                inject[ev.pid] = ev
            elif ev.kind == "route":
                out.append(
                    {
                        "name": f"route @sw{ev.switch}",
                        "ph": "i", "s": "t",
                        "ts": ev.cycle, "pid": 0, "tid": ev.src,
                        "args": {"packet": ev.pid, "port": ev.port, "vc": ev.vc},
                    }
                )
            elif ev.kind in ("tail", "drop"):
                start = inject.pop(ev.pid, None)
                ts = start.cycle if start is not None else ev.cycle
                delivered = ev.kind == "tail"
                name = f"pkt {ev.pid} {ev.src}->{ev.dst}"
                if not delivered:
                    name += " (dropped)"
                out.append(
                    {
                        "name": name,
                        "ph": "X", "ts": ts, "dur": max(ev.cycle - ts, 1),
                        "pid": 0, "tid": ev.src,
                        "args": {"packet": ev.pid, "dst": ev.dst,
                                 "size": ev.size, "delivered": delivered},
                    }
                )
            elif ev.kind == "blocked":
                out.append(
                    {
                        "name": f"blocked port {ev.port}",
                        "ph": "X", "ts": ev.cycle, "dur": ev.dur,
                        "pid": 1, "tid": ev.switch,
                        "args": {"port": ev.port, "cycles": ev.dur},
                    }
                )
        # packets still in flight at the end of the trace: open slices
        for pid, ev in inject.items():
            out.append(
                {
                    "name": f"pkt {pid} {ev.src}->{ev.dst} (in flight)",
                    "ph": "X", "ts": ev.cycle,
                    "dur": max(self._last_cycle - ev.cycle, 1),
                    "pid": 0, "tid": ev.src,
                    "args": {"packet": pid, "dst": ev.dst,
                             "size": ev.size, "delivered": False},
                }
            )
        meta = [
            {"name": "process_name", "ph": "M", "pid": 0,
             "args": {"name": "packets (tid = source node)"}},
            {"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": "fabric blocked intervals (tid = switch)"}},
        ]
        return {"traceEvents": meta + out, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | pathlib.Path) -> int:
        """Write the Chrome-loadable trace; returns the trace event count."""
        doc = self.chrome_trace_dict()
        pathlib.Path(path).write_text(json.dumps(doc))
        return len(doc["traceEvents"])

    def packet_events(self, pid: int) -> list[TraceEvent]:
        """All events of one packet, in emission order."""
        return [ev for ev in self.events if ev.pid == pid]
