"""Time-varying faults: fail at cycle T, optionally repair at cycle T'.

The static injectors in :mod:`repro.faults.tree` and
:mod:`repro.faults.cube` seize lanes before a run starts.  A
:class:`FaultSchedule` drives the same fault specs through the engine's
cycle hooks instead, so faults can strike and heal *mid-run*:

* **drain-then-seize** (:attr:`FaultPolicy.DRAIN`, the default) — a
  striking fault seizes every currently-free lane immediately and
  re-arms itself each cycle for the rest, seizing each remaining lane
  the moment its tail drains.  This models a channel that stops
  accepting *new* packets at failure time and lets in-flight worms
  finish — graceful link retirement; no packet is ever lost.
* **fail-stop** (:attr:`FaultPolicy.FAIL_STOP`) — the link dies
  abruptly: any worm occupying a struck lane is destroyed on the spot
  (:meth:`Engine.kill_packet` flushes all its lanes network-wide and
  emits ``on_packet_dropped``), then the lane is seized.  No deferral
  or re-arming is needed.  Loss-recovery lives above the engine, in
  :mod:`repro.traffic.transport`.
* **repair** — at the repair cycle every sentinel is lifted and any
  still-pending seizure is cancelled; routing rediscovers the lanes on
  its next decision, no other state needs touching.

Validation mirrors the static injectors and runs at :meth:`install`
time over the union of all scheduled faults (conservative: two faults
whose windows never overlap are still validated as if simultaneous).
Unsafe classes — cube ``full_channel`` faults — require an explicit
``validate=False``; note that a *transient* unsafe fault is survivable
when the repair lands before the watchdog gives up, which is exactly
the ride-through scenario worth simulating.

Example::

    schedule = FaultSchedule()
    schedule.add(CubeLinkFault(node=5, dim=0), fail_at=200, repair_at=800)
    schedule.add(TreeUplinkFault(switch=0, port=4), fail_at=100)
    engine = build_engine(config)
    schedule.install(engine)
    result = engine.run()
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..sim.engine import Engine
from ..sim.packet import FAULT_SENTINEL
from .cube import CubeLinkFault, validate_cube_link_faults
from .tree import TreeUplinkFault, validate_tree_uplink_faults


class FaultPolicy(enum.Enum):
    """What a striking fault does to a lane a worm still occupies."""

    #: wait for the worm's tail to drain, then seize (lossless default)
    DRAIN = "drain"
    #: kill the occupying worm immediately and seize (abrupt link death)
    FAIL_STOP = "fail_stop"


@dataclass(frozen=True)
class ScheduledFault:
    """One fault spec with its failure window and strike policy."""

    spec: TreeUplinkFault | CubeLinkFault
    fail_at: int
    repair_at: int | None = None
    policy: FaultPolicy = field(default=FaultPolicy.DRAIN)

    def __post_init__(self) -> None:
        if self.fail_at < 0:
            raise ConfigurationError(f"fail_at must be >= 0, got {self.fail_at}")
        if self.repair_at is not None and self.repair_at <= self.fail_at:
            raise ConfigurationError(
                f"repair_at {self.repair_at} must come after fail_at {self.fail_at}"
            )


class _ActiveFault:
    """Runtime state of one scheduled fault on a live engine."""

    __slots__ = ("lanes", "pending", "repaired", "policy")

    def __init__(self, lanes, policy: FaultPolicy = FaultPolicy.DRAIN):
        self.lanes = lanes
        self.pending = list(lanes)
        self.repaired = False
        self.policy = policy

    def strike(self, engine: Engine) -> None:
        if self.repaired:
            return
        fail_stop = self.policy is FaultPolicy.FAIL_STOP
        still_busy = []
        for lane in self.pending:
            occupant = lane.packet
            if occupant is not None and occupant is not FAULT_SENTINEL:
                if not fail_stop:
                    still_busy.append(lane)  # seize after its tail drains
                    continue
                # abrupt link death: destroy the worm, then take the lane
                # (kill_packet flushes every lane it holds, this one
                # included, so the seizure below lands on a free lane)
                engine.kill_packet(occupant, reason="fault")
                occupant = lane.packet
            if occupant is None:
                lane.packet = FAULT_SENTINEL
        self.pending = still_busy
        if still_busy:
            engine.add_cycle_hook(engine.cycle + 1, self.strike)

    def repair(self, engine: Engine) -> None:
        self.repaired = True
        self.pending = []
        for lane in self.lanes:
            if lane.packet is FAULT_SENTINEL:
                lane.packet = None


class FaultSchedule:
    """A set of scheduled faults installable onto one engine."""

    def __init__(self) -> None:
        self._entries: list[ScheduledFault] = []
        self._installed = False

    @property
    def entries(self) -> tuple[ScheduledFault, ...]:
        """The scheduled faults, in add order (read-only view)."""
        return tuple(self._entries)

    def add(
        self,
        spec: TreeUplinkFault | CubeLinkFault,
        fail_at: int,
        repair_at: int | None = None,
        policy: FaultPolicy = FaultPolicy.DRAIN,
    ) -> FaultSchedule:
        """Schedule ``spec`` to fail at ``fail_at`` (repairing at ``repair_at``).

        ``policy`` selects what happens to worms occupying the struck
        lanes: :attr:`FaultPolicy.DRAIN` (default) defers the seizure
        until each worm's tail drains; :attr:`FaultPolicy.FAIL_STOP`
        kills the occupants outright.  Returns ``self`` so calls chain.
        """
        if not isinstance(spec, (TreeUplinkFault, CubeLinkFault)):
            raise ConfigurationError(
                f"expected a TreeUplinkFault or CubeLinkFault spec, got {type(spec).__name__}"
            )
        if not isinstance(policy, FaultPolicy):
            raise ConfigurationError(
                f"expected a FaultPolicy, got {type(policy).__name__}"
            )
        self._entries.append(ScheduledFault(spec, fail_at, repair_at, policy))
        return self

    def __len__(self) -> int:
        return len(self._entries)

    def install(self, engine: Engine, validate: bool = True) -> None:
        """Validate the fault set and arm the engine's cycle hooks.

        A schedule instance binds to one engine; installing twice (or an
        empty schedule) is a configuration error.

        Raises:
            ConfigurationError: on validation failure, double install, or
                fail cycles already in the engine's past.
        """
        if self._installed:
            raise ConfigurationError("this FaultSchedule is already installed")
        if not self._entries:
            raise ConfigurationError("empty fault schedule")
        tree_specs = [e.spec for e in self._entries if isinstance(e.spec, TreeUplinkFault)]
        cube_specs = [e.spec for e in self._entries if isinstance(e.spec, CubeLinkFault)]
        if tree_specs and cube_specs:
            raise ConfigurationError("a schedule targets one network, not both")
        if tree_specs:
            if validate:
                validate_tree_uplink_faults(
                    engine.topology, [(s.switch, s.port) for s in tree_specs]
                )
        else:
            for full in (False, True):
                group = [s for s in cube_specs if s.full_channel == full]
                if group:
                    validate_cube_link_faults(
                        engine,
                        [(s.node, s.dim, s.direction) for s in group],
                        full_channel=full,
                        validate=validate,
                    )
        for entry in self._entries:
            active = _ActiveFault(entry.spec.lanes(engine), entry.policy)
            engine.add_cycle_hook(entry.fail_at, active.strike)
            if entry.repair_at is not None:
                engine.add_cycle_hook(entry.repair_at, active.repair)
        self._installed = True
