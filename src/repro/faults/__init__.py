"""Fault-tolerance subsystem: injection, schedules and safety validation.

The paper's §1–2 operational case for fat-trees is graceful degradation
under channel faults (CM-5 lineage); this package completes that story
across *both* evaluated networks and across *time*:

* :mod:`repro.faults.tree` — permanent ascending-channel faults on k-ary
  n-trees, masked by the adaptive up-phase (the deterministic baseline
  deadlocks — the asserted contrast);
* :mod:`repro.faults.cube` — lane-level link faults on k-ary n-cubes,
  masked by Duato's adaptive channels while the escape subnetwork stays
  connected (validated); full-channel faults as the unprotected contrast
  that wedges deterministic dimension-order routing;
* :mod:`repro.faults.schedule` — transient faults (fail at cycle T,
  optionally repair at T') driven by engine cycle hooks, so faults can
  strike mid-run instead of only before it; per-fault
  :class:`~repro.faults.schedule.FaultPolicy` selects drain-then-seize
  (lossless) or fail-stop (in-flight worms are destroyed) semantics.

Every fault works by allocating the target lanes to the
:data:`~repro.sim.packet.FAULT_SENTINEL` packet — permanently busy for
routing, invisible to the hot paths.
"""

from ..sim.packet import FAULT_SENTINEL
from .cube import (
    CubeLinkFault,
    adaptive_lane_count,
    inject_cube_link_faults,
    random_cube_link_faults,
    validate_escape_connectivity,
)
from .schedule import FaultPolicy, FaultSchedule, ScheduledFault
from .tree import (
    TreeUplinkFault,
    inject_tree_uplink_faults,
    random_uplink_faults,
    validate_tree_uplink_faults,
)

__all__ = [
    "FAULT_SENTINEL",
    "CubeLinkFault",
    "TreeUplinkFault",
    "FaultPolicy",
    "FaultSchedule",
    "ScheduledFault",
    "adaptive_lane_count",
    "inject_cube_link_faults",
    "inject_tree_uplink_faults",
    "random_cube_link_faults",
    "random_uplink_faults",
    "validate_escape_connectivity",
    "validate_tree_uplink_faults",
]
