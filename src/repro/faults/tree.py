"""Fault injection for fat-trees.

One of the operational arguments for fat-trees (CM-5 lineage, §1-2) is
graceful degradation: the ascending phase is adaptive, so a failed
ascending channel is simply never chosen and the network keeps working at
slightly reduced bandwidth.  This module injects exactly that fault
class:

* **what is modeled** — faults of individual *ascending* channel
  directions (switch up-port → parent).  The opposite (descending)
  direction of the physical channel is kept alive: killing a descending
  channel disconnects destinations on any up*/down* tree, which is a
  repair problem rather than a routing one.
* **safety argument** — up*/down* routing remains minimal, connected and
  deadlock-free under ascending faults as long as every non-root switch
  retains at least one live up port (any reachable ancestor set still
  contains a common ancestor of every destination);
  :func:`inject_tree_uplink_faults` enforces that invariant.
* **who masks it** — the adaptive algorithm routes around faults with no
  configuration; the deterministic source-digit baseline stalls forever
  when its fixed port dies (the engine's watchdog turns that into a
  :class:`~repro.errors.DeadlockError`), which the tests assert as the
  expected contrast.

Faults are injected into a built engine before (or between) runs by
allocating the faulty lanes to the :data:`~repro.sim.packet.FAULT_SENTINEL`
packet, making them permanently busy for routing without touching the hot
paths.  For faults that strike or repair *mid-run*, wrap the same
``(switch, up_port)`` targets in a
:class:`~repro.faults.schedule.FaultSchedule` instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigurationError, SimulationError
from ..sim.engine import Engine
from ..sim.packet import FAULT_SENTINEL
from ..topology.tree import KAryNTree


@dataclass(frozen=True)
class TreeUplinkFault:
    """One failed ascending channel direction: ``(switch, up_port)``."""

    switch: int
    port: int

    def lanes(self, engine: Engine):
        """The output lanes this fault disables."""
        return list(engine.out_lanes[self.switch][self.port])


def validate_tree_uplink_faults(
    topo: KAryNTree, faults
) -> list[tuple[int, int]]:
    """Validate a fault set against the tree safety invariants.

    Returns the normalized (unique, sorted) ``(switch, up_port)`` list.

    Raises:
        ConfigurationError: for non-tree topologies, non-up ports, root
            "external" ports, or fault sets that leave some switch with
            no live up port.
    """
    if not isinstance(topo, KAryNTree):
        raise ConfigurationError("up-link fault injection is defined for k-ary n-trees")
    up_ports = set(topo.up_ports())
    unique = sorted(set(map(tuple, faults)))
    per_switch: dict[int, int] = {}
    for switch, port in unique:
        if not 0 <= switch < topo.num_switches:
            raise ConfigurationError(f"switch {switch} out of range")
        if port not in up_ports:
            raise ConfigurationError(f"port {port} is not an up port (up: {sorted(up_ports)})")
        if topo.level_of(switch) == topo.n - 1:
            raise ConfigurationError(
                f"switch {switch} is a root; its up ports carry no traffic"
            )
        per_switch[switch] = per_switch.get(switch, 0) + 1
    for switch, count in per_switch.items():
        if count >= topo.k:
            raise ConfigurationError(
                f"switch {switch} would lose all {topo.k} up ports; "
                "the tree must keep at least one live ascent per switch"
            )
    return unique


def inject_tree_uplink_faults(
    engine: Engine, faults: list[tuple[int, int]] | tuple[tuple[int, int], ...]
) -> int:
    """Disable the ascending directions listed as ``(switch, up_port)``.

    Returns the number of channel directions disabled (duplicates are
    collapsed).

    Raises:
        ConfigurationError: for non-tree engines, non-up ports, root
            "external" ports, or fault sets that leave some switch with
            no live up port.
        SimulationError: when a targeted lane is already carrying traffic
            (inject faults before running; mid-run faults go through
            :class:`~repro.faults.schedule.FaultSchedule`).
    """
    topo = engine.topology
    unique = validate_tree_uplink_faults(topo, faults)
    for switch, port in unique:
        for lane in engine.out_lanes[switch][port]:
            if lane.packet is not None and lane.packet is not FAULT_SENTINEL:
                raise SimulationError(
                    f"lane {lane!r} is carrying traffic; inject faults before running"
                )
            lane.packet = FAULT_SENTINEL
    return len(unique)


def random_uplink_faults(
    topo: KAryNTree, count: int, seed: int = 0
) -> list[tuple[int, int]]:
    """Draw ``count`` distinct ascending-channel faults, safely spread.

    Guarantees the at-least-one-live-up-port invariant by never drawing
    more than ``k - 1`` faults on one switch.

    Raises:
        ConfigurationError: when ``count`` exceeds the safely failable
            channel population ``(n-1) · k**(n-1) · (k-1)``.
    """
    if not isinstance(topo, KAryNTree):
        raise ConfigurationError("expected a KAryNTree")
    candidates = [
        (s, p)
        for s in range(topo.num_switches)
        if topo.level_of(s) < topo.n - 1
        for p in topo.up_ports()
    ]
    max_safe = (topo.n - 1) * topo.switches_per_level * (topo.k - 1)
    if not 0 <= count <= max_safe:
        raise ConfigurationError(
            f"count {count} outside [0, {max_safe}] safely failable channels"
        )
    rng = random.Random(seed)
    rng.shuffle(candidates)
    chosen: list[tuple[int, int]] = []
    per_switch: dict[int, int] = {}
    for switch, port in candidates:
        if len(chosen) == count:
            break
        if per_switch.get(switch, 0) >= topo.k - 1:
            continue
        chosen.append((switch, port))
        per_switch[switch] = per_switch.get(switch, 0) + 1
    return chosen
