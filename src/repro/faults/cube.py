"""Fault injection for k-ary n-cubes (tori).

The cube analogue of the tree's "adaptive phase masks faults" story runs
through virtual-channel redundancy rather than port redundancy (compare
Stergiou's multi-lane MIN study): under Duato's methodology each physical
channel direction multiplexes ``V-2`` adaptive lanes plus two escape
lanes, and the adaptive lanes are precisely the expendable part —

* **lane-level fault (the default)** — the adaptive lanes of one channel
  direction die; the escape lanes survive.  Duato's algorithm needs no
  configuration to mask this: a header simply never finds a free adaptive
  lane on the dead link and either adapts onto another minimal direction
  or falls back to the (still connected, still cycle-free) escape
  subnetwork.  Deadlock freedom is untouched because Duato's theorem only
  requires the escape subnetwork, never the adaptive lanes.
* **full-channel fault** (``full_channel=True``) — the whole direction
  dies, escape lanes included.  Every physical direction of a torus
  carries escape/deterministic traffic for some source–destination pair,
  so this *always* disconnects the escape subnetwork: deterministic
  dimension-order routing wedges forever on its fixed path and the
  watchdog reports a :class:`~repro.errors.DeadlockError` (the
  unprotected contrast case the tests assert).  Injection therefore
  refuses ``full_channel`` faults unless ``validate=False`` is passed
  explicitly.

:func:`validate_escape_connectivity` is the safety check behind that
refusal, usable standalone: it verifies no escape lane is faulted and
that the live escape digraph remains strongly connected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigurationError, SimulationError
from ..router.lane import OutputLane
from ..routing.duato import DuatoAdaptiveRouting
from ..sim.engine import Engine
from ..sim.packet import FAULT_SENTINEL
from ..topology.cube import KAryNCube


@dataclass(frozen=True)
class CubeLinkFault:
    """One failed channel direction: node ``node``, dimension ``dim``,
    direction ``+1``/``-1`` (normalized to ``+1`` for hypercubes, whose
    two directions share one physical channel).

    ``full_channel=False`` kills only the adaptive lanes (lane-level
    redundancy fault); ``True`` kills the whole direction.
    """

    node: int
    dim: int
    direction: int = 1
    full_channel: bool = False

    def lanes(self, engine: Engine) -> list[OutputLane]:
        """The output lanes this fault disables."""
        port = engine.topology.port_for(self.dim, self.direction)
        outs = engine.out_lanes[self.node][port]
        if self.full_channel:
            return list(outs)
        return list(outs[: adaptive_lane_count(engine)])


def adaptive_lane_count(engine: Engine) -> int:
    """Adaptive lanes per channel direction of the attached algorithm.

    Raises:
        ConfigurationError: when the engine's routing has no
            adaptive/escape split (lane-level faults are only maskable by
            an adaptive algorithm with escape channels).
    """
    routing = engine.routing
    if isinstance(routing, DuatoAdaptiveRouting):
        return routing.n_adaptive
    raise ConfigurationError(
        f"lane-level cube faults need an adaptive algorithm with escape "
        f"channels (duato); {routing.name!r} has no expendable lanes — "
        f"use full_channel=True with validate=False for the unprotected case"
    )


def validate_cube_link_faults(
    engine: Engine, faults, full_channel: bool, validate: bool
) -> list[tuple[int, int, int]]:
    """Validate and normalize a cube fault set before any lane is touched.

    Returns the unique, sorted ``(node, dim, direction)`` list with
    hypercube directions normalized to ``+1``.

    Raises:
        ConfigurationError: for non-cube engines, out-of-range targets,
            or fault sets that would break the escape subnetwork while
            ``validate`` is on.
    """
    topo = engine.topology
    if not isinstance(topo, KAryNCube):
        raise ConfigurationError("link fault injection is defined for k-ary n-cubes")
    if full_channel and validate:
        raise ConfigurationError(
            "a full-channel fault always disconnects the escape subnetwork "
            "(every torus direction carries deterministic traffic for some "
            "pair); pass validate=False to model the unprotected contrast case"
        )
    if not full_channel:
        adaptive_lane_count(engine)  # raises unless the algorithm has escapes
    unique: set[tuple[int, int, int]] = set()
    for node, dim, direction in faults:
        if not 0 <= node < topo.num_nodes:
            raise ConfigurationError(f"node {node} out of range [0, {topo.num_nodes})")
        if not 0 <= dim < topo.n:
            raise ConfigurationError(f"dimension {dim} out of range [0, {topo.n})")
        if direction not in (1, -1):
            raise ConfigurationError(f"direction must be +1 or -1, got {direction}")
        if topo.k == 2:
            direction = 1  # one physical channel per dimension in a hypercube
        unique.add((node, dim, direction))
    return sorted(unique)


def inject_cube_link_faults(
    engine: Engine,
    faults,
    *,
    full_channel: bool = False,
    validate: bool = True,
) -> int:
    """Disable channel directions listed as ``(node, dim, direction)``.

    By default only the adaptive lanes of each direction die (the
    escape-protected lane-level fault class; see module docstring) and
    the escape subnetwork is re-verified after injection.  Returns the
    number of distinct channel directions disabled.

    Raises:
        ConfigurationError: for invalid targets, or unsafe fault classes
            without an explicit ``validate=False``.
        SimulationError: when a targeted lane is already carrying traffic
            (inject faults before running; mid-run faults go through
            :class:`~repro.faults.schedule.FaultSchedule`).
    """
    unique = validate_cube_link_faults(engine, faults, full_channel, validate)
    topo = engine.topology
    keep = 0 if full_channel else adaptive_lane_count(engine)
    disabled = 0
    for node, dim, direction in unique:
        port = topo.port_for(dim, direction)
        outs = engine.out_lanes[node][port]
        targets = outs if full_channel else outs[:keep]
        for lane in targets:
            if lane.packet is not None and lane.packet is not FAULT_SENTINEL:
                raise SimulationError(
                    f"lane {lane!r} is carrying traffic; inject faults before running"
                )
            lane.packet = FAULT_SENTINEL
        disabled += 1
    if validate:
        validate_escape_connectivity(engine)
    return disabled


def validate_escape_connectivity(engine: Engine) -> None:
    """Verify the escape subnetwork survived fault injection.

    Checks two properties of the attached cube engine:

    1. no escape lane (Duato: the last two lanes per direction; a
       deterministic algorithm owns every lane) is faulted;
    2. the digraph of channel directions with fully-live escape lanes is
       strongly connected over the routers.

    Raises:
        ConfigurationError: when either property is violated, naming the
            first offending lanes.
    """
    topo = engine.topology
    if not isinstance(topo, KAryNCube):
        raise ConfigurationError("escape connectivity is defined for k-ary n-cubes")
    routing = engine.routing
    if isinstance(routing, DuatoAdaptiveRouting):
        escape = range(routing.escape_base, engine.config.vcs)
    else:
        escape = range(engine.config.vcs)
    dead: list[OutputLane] = []
    succ: list[list[int]] = [[] for _ in range(topo.num_switches)]
    pred: list[list[int]] = [[] for _ in range(topo.num_switches)]
    for d in engine.dirs:
        if d.to_node or not d.lanes:
            continue
        lanes = d.lanes
        dead_here = [lanes[i] for i in escape if lanes[i].packet is FAULT_SENTINEL]
        if dead_here:
            dead.extend(dead_here)
            continue
        sink_switch = lanes[0].sink.switch
        succ[d.switch].append(sink_switch)
        pred[sink_switch].append(d.switch)
    if dead:
        shown = ", ".join(repr(lane) for lane in dead[:4])
        raise ConfigurationError(
            f"{len(dead)} escape lane(s) faulted ({shown}{', ...' if len(dead) > 4 else ''}); "
            "the escape subnetwork must stay fully live"
        )
    for adjacency in (succ, pred):
        seen = [False] * topo.num_switches
        seen[0] = True
        frontier = [0]
        while frontier:
            s = frontier.pop()
            for nxt in adjacency[s]:
                if not seen[nxt]:
                    seen[nxt] = True
                    frontier.append(nxt)
        if not all(seen):
            missing = seen.index(False)
            raise ConfigurationError(
                f"escape subnetwork is not strongly connected: switch {missing} "
                f"unreachable {'from' if adjacency is succ else 'towards'} switch 0"
            )


def random_cube_link_faults(
    topo: KAryNCube, count: int, seed: int = 0
) -> list[tuple[int, int, int]]:
    """Draw ``count`` distinct channel-direction faults, uniformly.

    Lane-level faults need no placement constraint — the escape lanes
    survive on every direction by construction — so this draws from the
    full direction population: ``N·2n`` directions for ``k > 2``, ``N·n``
    for the hypercube (whose ± directions share one channel).

    Raises:
        ConfigurationError: when ``count`` exceeds the direction population.
    """
    if not isinstance(topo, KAryNCube):
        raise ConfigurationError("expected a KAryNCube")
    directions = (1,) if topo.k == 2 else (1, -1)
    candidates = [
        (node, dim, direction)
        for node in range(topo.num_nodes)
        for dim in range(topo.n)
        for direction in directions
    ]
    if not 0 <= count <= len(candidates):
        raise ConfigurationError(
            f"count {count} outside [0, {len(candidates)}] channel directions"
        )
    rng = random.Random(seed)
    rng.shuffle(candidates)
    return candidates[:count]
