"""Simulation effort profiles.

The paper runs every data point for 20000 cycles (statistics collected after
a 2000-cycle warm-up) on 256-node networks.  That is expensive in pure
Python, so experiments and benchmarks select a *profile* that controls the
warm-up length, the measurement window and the offered-load grid density.
The default profile keeps the full 256-node networks — topology scale is
what the paper is about — and shortens only the time axis.

Profiles are chosen with the ``REPRO_PROFILE`` environment variable
(``fast``, ``default``, ``full``) or explicitly through
:func:`get_profile`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from .errors import ConfigurationError

_ENV_VAR = "REPRO_PROFILE"


@dataclass(frozen=True)
class Profile:
    """Effort knobs shared by all experiments.

    Attributes:
        name: profile identifier.
        warmup_cycles: cycles discarded before statistics collection
            (paper: 2000).
        total_cycles: cycle at which each simulation halts (paper: 20000).
        sweep_points: number of offered-load points per curve.
        drain_packets: minimum measured packets per point for latency
            statistics to be considered meaningful; points with fewer
            delivered packets are still reported but flagged.
    """

    name: str
    warmup_cycles: int
    total_cycles: int
    sweep_points: int
    drain_packets: int = 50

    @property
    def measure_cycles(self) -> int:
        """Length of the measurement window in cycles."""
        return self.total_cycles - self.warmup_cycles


#: Tiny profile for smoke tests: small time axis, coarse grid.
FAST = Profile(name="fast", warmup_cycles=100, total_cycles=500, sweep_points=4)

#: Default profile used by the benchmark harness: full-size networks,
#: shortened time axis.  Saturation estimates move by a few percent
#: relative to the paper's windows; curve shapes are unchanged.
DEFAULT = Profile(name="default", warmup_cycles=250, total_cycles=1450, sweep_points=7)

#: The paper's exact measurement windows (2000-cycle warm-up, halt at
#: 20000) and a dense load grid.  Expect hours of CPU time for the full
#: figure set.
FULL = Profile(name="full", warmup_cycles=2000, total_cycles=20000, sweep_points=10)

_PROFILES = {p.name: p for p in (FAST, DEFAULT, FULL)}


def get_profile(name: str | None = None) -> Profile:
    """Resolve a profile by name, falling back to ``REPRO_PROFILE`` then default.

    Args:
        name: explicit profile name; when ``None`` the ``REPRO_PROFILE``
            environment variable is consulted, and if that is unset the
            ``default`` profile is returned.

    Raises:
        ConfigurationError: if the name is not a known profile.
    """
    if name is None:
        name = os.environ.get(_ENV_VAR, "default")
    try:
        return _PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise ConfigurationError(
            f"unknown profile {name!r}; known profiles: {known}"
        ) from None
