"""Router cost model and physical-constraint normalization (paper §5).

* :mod:`repro.timing.chien` — Chien's 0.8 µm CMOS delay model: routing,
  crossbar and link delays as functions of routing freedom F, crossbar
  ports P and virtual channels V; reproduces the paper's Tables 1 and 2.
* :mod:`repro.timing.normalization` — flit widths, capacities and the
  cycles→nanoseconds / flits→bits conversions behind the §10 comparison.
"""

from .chien import (
    RouterDelays,
    WireLength,
    crossbar_delay_ns,
    cube_freedom_deterministic,
    cube_freedom_duato,
    link_delay_ns,
    router_delays,
    routing_delay_ns,
    table1_cube_delays,
    table2_tree_delays,
    tree_crossbar_ports,
    tree_freedom_adaptive,
)
from .normalization import (
    CUBE_FLIT_BYTES,
    PACKET_BYTES,
    TREE_FLIT_BYTES,
    NetworkScaling,
    cube_scaling,
    equal_cost_pairs,
    tree_scaling,
)

__all__ = [
    "RouterDelays",
    "WireLength",
    "crossbar_delay_ns",
    "cube_freedom_deterministic",
    "cube_freedom_duato",
    "link_delay_ns",
    "router_delays",
    "routing_delay_ns",
    "table1_cube_delays",
    "table2_tree_delays",
    "tree_crossbar_ports",
    "tree_freedom_adaptive",
    "CUBE_FLIT_BYTES",
    "PACKET_BYTES",
    "TREE_FLIT_BYTES",
    "NetworkScaling",
    "cube_scaling",
    "equal_cost_pairs",
    "tree_scaling",
]
