"""Chien's router cost and speed model (paper §5, eqs. 1–4).

The model assumes a 0.8 µm CMOS gate-array implementation of the routing
chip and expresses the three per-hop delays in nanoseconds:

* routing decision, logarithmic in the routing freedom F (eq. 1):
  ``T_routing = 4.7 + 1.2·log2(F)``
* crossbar traversal, logarithmic in the number of crossbar ports P
  (eq. 2): ``T_crossbar = 3.4 + 0.6·log2(P)``
* link traversal, logarithmic in the number of virtual channels V, with a
  wire-length dependent base — short wires for low-dimensional cubes
  embedded in 3-space with constant-length wires (eq. 3):
  ``T_link^s = 5.14 + 0.6·log2(V)``; medium wires for the 256-node fat-tree
  (eq. 4): ``T_link^m = 9.64 + 0.6·log2(V)``.

The router clock is set to the maximum of the three delays; in the
simulation every delay is then one clock, and the ns value only rescales
the results for the absolute comparison (§10).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import ConfigurationError


class WireLength(enum.Enum):
    """Wire-length class of the physical links (eqs. 3–4)."""

    SHORT = "short"  # constant-length wires: low-dimensional cubes
    MEDIUM = "medium"  # 256-node fat-tree embedded in 3-space


def routing_delay_ns(freedom: int) -> float:
    """Eq. 1 — address decode, routing decision and header selection.

    Args:
        freedom: F, the number of routing alternatives offered to a header.
    """
    if freedom < 1:
        raise ConfigurationError(f"routing freedom must be >= 1, got {freedom}")
    return 4.7 + 1.2 * math.log2(freedom)


def crossbar_delay_ns(ports: int) -> float:
    """Eq. 2 — internal flow control, crossbar and output latch.

    Args:
        ports: P, the number of crossbar input ports (lanes + injection).
    """
    if ports < 1:
        raise ConfigurationError(f"crossbar ports must be >= 1, got {ports}")
    return 3.4 + 0.6 * math.log2(ports)


def link_delay_ns(virtual_channels: int, wires: WireLength = WireLength.SHORT) -> float:
    """Eqs. 3–4 — wire delay, destination latch and VC controller.

    Args:
        virtual_channels: V, virtual channels multiplexed on the link.
        wires: wire-length class; ``SHORT`` uses the 5.14 ns base (cubes),
            ``MEDIUM`` the 9.64 ns base (the 256-node fat-tree).
    """
    if virtual_channels < 1:
        raise ConfigurationError(f"virtual channels must be >= 1, got {virtual_channels}")
    base = 5.14 if wires is WireLength.SHORT else 9.64
    return base + 0.6 * math.log2(virtual_channels)


@dataclass(frozen=True)
class RouterDelays:
    """The three per-hop delays and the clock they induce, in ns."""

    routing_ns: float
    crossbar_ns: float
    link_ns: float

    @property
    def clock_ns(self) -> float:
        """Clock period = max of the three delays (§5)."""
        return max(self.routing_ns, self.crossbar_ns, self.link_ns)

    def limiting_factor(self) -> str:
        """Which delay sets the clock: 'routing', 'crossbar' or 'link'."""
        if self.clock_ns == self.routing_ns:
            return "routing"
        if self.clock_ns == self.link_ns:
            return "link"
        return "crossbar"

    def rounded(self, digits: int = 2) -> tuple[float, float, float, float]:
        """(routing, crossbar, link, clock) rounded for table display."""
        return (
            round(self.routing_ns, digits),
            round(self.crossbar_ns, digits),
            round(self.link_ns, digits),
            round(self.clock_ns, digits),
        )


def router_delays(freedom: int, ports: int, virtual_channels: int, wires: WireLength) -> RouterDelays:
    """Evaluate the full model for one router configuration."""
    return RouterDelays(
        routing_ns=routing_delay_ns(freedom),
        crossbar_ns=crossbar_delay_ns(ports),
        link_ns=link_delay_ns(virtual_channels, wires),
    )


# -- per-algorithm parameters (paper §5) --------------------------------------


def cube_freedom_deterministic(virtual_channels: int = 4) -> int:
    """F for dimension-order routing with two virtual networks.

    Only the VCs of the current virtual network on the single allowed link
    are candidates: ``V/2`` of them — 2 for the paper's V=4.
    """
    if virtual_channels % 2:
        raise ConfigurationError("deterministic cube routing needs an even VC count")
    return virtual_channels // 2


def cube_freedom_duato(n: int = 2, virtual_channels: int = 4) -> int:
    """F for Duato's minimal adaptive algorithm on an n-cube.

    The paper's count for V=4, n=2: four adaptive channels (two adaptive
    VCs on each of up to n productive links) plus the two deterministic
    (escape) channels — F = 6.
    """
    adaptive_vcs = virtual_channels // 2
    return n * adaptive_vcs + 2


def tree_freedom_adaptive(k: int, virtual_channels: int) -> int:
    """F for the adaptive tree algorithm: ``(2k − 1)·V`` (§5).

    In the ascending phase a packet may take any of the 2k−1 other links
    (k up links or k−1 other down links are alternatives in the switch
    structure the paper counts), each with V virtual channels.
    """
    return (2 * k - 1) * virtual_channels


def tree_crossbar_ports(k: int, virtual_channels: int) -> int:
    """P for the tree switch: ``2k·V`` lanes (§5)."""
    return 2 * k * virtual_channels


def cube_crossbar_ports(n: int = 2, virtual_channels: int = 4) -> int:
    """P for the cube router: ``2n·V`` link lanes + 1 injection channel.

    For the paper's 16-ary 2-cube with V=4: 4·4 + 1 = 17.
    """
    return 2 * n * virtual_channels + 1


# -- the paper's tables -------------------------------------------------------


def table1_cube_delays(n: int = 2, virtual_channels: int = 4) -> dict[str, RouterDelays]:
    """Table 1 — delays of the two cube routing algorithms, in ns.

    Returns a dict with keys ``"deterministic"`` and ``"duato"``.  For the
    paper's parameters the rounded values are (5.9, 5.85, 6.34, 6.34) and
    (7.8, 5.85, 6.34, 7.8).
    """
    ports = cube_crossbar_ports(n, virtual_channels)
    return {
        "deterministic": router_delays(
            cube_freedom_deterministic(virtual_channels), ports, virtual_channels, WireLength.SHORT
        ),
        "duato": router_delays(
            cube_freedom_duato(n, virtual_channels), ports, virtual_channels, WireLength.SHORT
        ),
    }


def table2_tree_delays(k: int = 4, vc_variants: tuple[int, ...] = (1, 2, 4)) -> dict[int, RouterDelays]:
    """Table 2 — delays of the adaptive tree algorithm per VC count, in ns.

    For the paper's 4-ary 4-tree the rounded values are
    1 VC: (8.06, 5.2, 9.64, 9.64); 2 VC: (9.26, 5.8, 10.24, 10.24);
    4 VC: (10.46, 6.4, 10.84, 10.84) — wire-limited at 1–2 VCs, with the
    routing/link gap closing at 4 VCs.
    """
    return {
        v: router_delays(
            tree_freedom_adaptive(k, v), tree_crossbar_ports(k, v), v, WireLength.MEDIUM
        )
        for v in vc_variants
    }
