"""Performance normalization between the two networks (paper §5, §10).

To compare "apples with apples" the paper equalizes:

* **node and router counts** — a k-ary n-tree with ``k1 = n1`` has
  ``N = k1**k1`` nodes *and* N routing chips, matching any k-ary n-cube
  with ``k2**n2 = N`` (cubes always have one router per node).  The
  evaluated pair is the 4-ary 4-tree and the 16-ary 2-cube, both N = 256.
* **pin count / peak bandwidth** — the quaternary tree switch has arity 8,
  the 2-D cube router arity 4 (node interface excluded), so the cube's
  data paths are doubled: flits are 2 bytes on the tree, 4 bytes on the
  cube.  Both networks then offer the same peak bandwidth and the same
  theoretical upper bound under uniform traffic.
* **clock period** — from Chien's model (:mod:`repro.timing.chien`); used
  to convert cycles to nanoseconds for the absolute comparison of §10.

Packets are 64 bytes (§4): 32 flits on the tree, 16 on the cube.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..topology.properties import (
    cube_capacity_flits_per_cycle,
    tree_capacity_flits_per_cycle,
)

#: flit / data-path width on the fat-tree (§5)
TREE_FLIT_BYTES = 2
#: flit / data-path width on the cube (§5)
CUBE_FLIT_BYTES = 4
#: packet size used throughout the evaluation (§4)
PACKET_BYTES = 64


@dataclass(frozen=True)
class NetworkScaling:
    """Unit conversions for one network configuration.

    Attributes:
        flit_bytes: physical flit width.
        packet_flits: packet length in flits (= PACKET_BYTES / flit_bytes).
        capacity_flits_per_cycle: theoretical per-node injection limit
            under uniform traffic, in flits/cycle (§5).
        clock_ns: clock period from Chien's model; 0 disables absolute
            conversions (raises on use).
        num_nodes: network size, for aggregate figures.
    """

    flit_bytes: int
    packet_flits: int
    capacity_flits_per_cycle: float
    clock_ns: float
    num_nodes: int

    @property
    def flit_bits(self) -> int:
        return 8 * self.flit_bytes

    # -- offered-load conversions -------------------------------------------

    def load_to_flits_per_cycle(self, fraction_of_capacity: float) -> float:
        """Per-node offered load in flits/cycle for an x-axis fraction."""
        if fraction_of_capacity < 0:
            raise ConfigurationError(f"negative load {fraction_of_capacity}")
        return fraction_of_capacity * self.capacity_flits_per_cycle

    def flits_per_cycle_to_load(self, flits_per_cycle: float) -> float:
        """Inverse of :meth:`load_to_flits_per_cycle`."""
        return flits_per_cycle / self.capacity_flits_per_cycle

    # -- absolute units (§10) -------------------------------------------------

    def _require_clock(self) -> None:
        if self.clock_ns <= 0:
            raise ConfigurationError("no clock period configured for ns conversions")

    def aggregate_bits_per_ns(self, accepted_fraction: float) -> float:
        """Network-wide accepted traffic in bits/ns, as plotted in Fig. 7.

        ``accepted_fraction`` is the per-node accepted bandwidth as a
        fraction of capacity (the CNF y-axis).
        """
        self._require_clock()
        flits_per_cycle = accepted_fraction * self.capacity_flits_per_cycle * self.num_nodes
        return flits_per_cycle * self.flit_bits / self.clock_ns

    def cycles_to_ns(self, cycles: float) -> float:
        """Latency conversion for the Fig. 7 latency panels."""
        self._require_clock()
        return cycles * self.clock_ns

    def peak_bits_per_ns(self) -> float:
        """Aggregate theoretical upper bound in bits/ns (load fraction 1)."""
        return self.aggregate_bits_per_ns(1.0)


def tree_scaling(k: int, n: int, clock_ns: float = 0.0) -> NetworkScaling:
    """Scaling for a k-ary n-tree with the paper's 2-byte flits."""
    return NetworkScaling(
        flit_bytes=TREE_FLIT_BYTES,
        packet_flits=PACKET_BYTES // TREE_FLIT_BYTES,
        capacity_flits_per_cycle=tree_capacity_flits_per_cycle(k, n),
        clock_ns=clock_ns,
        num_nodes=k**n,
    )


def cube_scaling(k: int, n: int, clock_ns: float = 0.0) -> NetworkScaling:
    """Scaling for a k-ary n-cube with the paper's 4-byte flits."""
    return NetworkScaling(
        flit_bytes=CUBE_FLIT_BYTES,
        packet_flits=PACKET_BYTES // CUBE_FLIT_BYTES,
        capacity_flits_per_cycle=cube_capacity_flits_per_cycle(k, n),
        clock_ns=clock_ns,
        num_nodes=k**n,
    )


def equal_cost_pairs(max_nodes: int = 100_000) -> list[dict]:
    """Enumerate tree/cube pairs satisfying the §5 equal-cost conditions.

    Same node count (``k1**n1 == k2**n2``) and same router count
    (``n1·k1**(n1-1) == k2**n2``) force ``k1 == n1`` and ``N == k1**k1``.
    Returns, for each admissible N up to ``max_nodes``, the tree parameters
    and every integer cube shape of that size:

        [{"nodes": N, "tree": (k1, n1), "cubes": [(k2, n2), ...]}, ...]

    For N=256 the cubes are (256,1), (16,2), (4,4) and (2,8); the paper
    evaluates the 16-ary 2-cube.
    """
    out = []
    k1 = 2
    while k1**k1 <= max_nodes:
        n_nodes = k1**k1
        cubes = []
        for n2 in range(1, n_nodes.bit_length()):
            k2 = round(n_nodes ** (1.0 / n2))
            for cand in (k2 - 1, k2, k2 + 1):
                if cand >= 2 and cand**n2 == n_nodes and (cand, n2) not in cubes:
                    cubes.append((cand, n2))
        out.append({"nodes": n_nodes, "tree": (k1, k1), "cubes": sorted(cubes, reverse=True)})
        k1 += 1
    return out
