"""Performance metrics and presentation (paper §6).

* :mod:`repro.metrics.series` — a load-sweep curve: offered vs accepted
  bandwidth and latency for one network configuration.
* :mod:`repro.metrics.saturation` — the §6 saturation-point estimator.
* :mod:`repro.metrics.cnf` — Chaos Normal Form assembly: the two-graph
  (accepted bandwidth, network latency) presentation used by Figures 5–6,
  plus the absolute-unit conversion used by Figure 7.
"""

from .analytic import expected_zero_load_latency, path_channels, zero_load_latency
from .cnf import CNFResult, absolute_series, cnf_from_sweep
from .io import load_cnf, save_cnf
from .saturation import saturation_point, sustained_rate
from .series import LoadPoint, LoadSweepSeries
from .utilization import (
    channel_loads,
    cube_bisection_load,
    tree_level_loads,
    utilization_summary,
)

__all__ = [
    "expected_zero_load_latency",
    "path_channels",
    "zero_load_latency",
    "CNFResult",
    "absolute_series",
    "cnf_from_sweep",
    "load_cnf",
    "save_cnf",
    "saturation_point",
    "sustained_rate",
    "LoadPoint",
    "LoadSweepSeries",
    "channel_loads",
    "cube_bisection_load",
    "tree_level_loads",
    "utilization_summary",
]
