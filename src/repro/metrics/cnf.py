"""Chaos Normal Form assembly and absolute-unit conversion (paper §6, §10).

The CNF presents each experiment as two graphs over the same x-axis
(offered bandwidth normalized by the uniform-traffic capacity):

* accepted bandwidth (same normalization) — Figures 5/6 panels a, c, e, g;
* network latency in cycles — panels b, d, f, h.

For the final comparison (§10, Figure 7) the paper switches to absolute
units because the configurations have different clocks and flit widths:
traffic in bits/ns (aggregate over the whole network) and latency in ns.
:func:`absolute_series` applies exactly that rescaling using the
:class:`~repro.timing.normalization.NetworkScaling` of each configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..timing.normalization import NetworkScaling
from .saturation import saturation_point, sustained_rate
from .series import LoadSweepSeries


@dataclass
class CNFResult:
    """One experiment in Chaos Normal Form: the two graphs plus digests."""

    title: str
    series: list[LoadSweepSeries]

    def saturation_summary(self, tol: float = 0.05) -> dict[str, float]:
        """Label -> estimated saturation load, for report tables."""
        return {s.label: saturation_point(s, tol) for s in self.series}

    def sustained_summary(self, tol: float = 0.05) -> dict[str, float]:
        """Label -> mean accepted bandwidth beyond saturation."""
        return {s.label: sustained_rate(s, tol) for s in self.series}


def cnf_from_sweep(title: str, series: list[LoadSweepSeries]) -> CNFResult:
    """Bundle sweep series into a CNF experiment result."""
    return CNFResult(title=title, series=series)


@dataclass(frozen=True)
class AbsolutePoint:
    """One Figure-7 point: aggregate bits/ns and latency in ns."""

    offered_bits_per_ns: float
    accepted_bits_per_ns: float
    latency_ns: float | None


def absolute_series(series: LoadSweepSeries, scaling: NetworkScaling) -> list[AbsolutePoint]:
    """Convert a CNF sweep to the absolute units of Figure 7.

    Args:
        series: sweep in fractions of capacity / cycles.
        scaling: the configuration's flit width, capacity and clock (must
            carry a positive ``clock_ns``).
    """
    out = []
    for p in series.points:
        out.append(
            AbsolutePoint(
                offered_bits_per_ns=scaling.aggregate_bits_per_ns(p.offered),
                accepted_bits_per_ns=scaling.aggregate_bits_per_ns(p.accepted),
                latency_ns=(
                    scaling.cycles_to_ns(p.latency_cycles)
                    if p.latency_cycles is not None
                    else None
                ),
            )
        )
    return out


def saturation_bits_per_ns(
    series: LoadSweepSeries, scaling: NetworkScaling, tol: float = 0.05
) -> float:
    """Saturation throughput in bits/ns — the §10 headline numbers.

    This is the sustained accepted bandwidth beyond saturation, rescaled
    to absolute units (e.g. the paper's "440 bits/nsec" for Duato under
    uniform traffic).
    """
    return scaling.aggregate_bits_per_ns(sustained_rate(series, tol))
