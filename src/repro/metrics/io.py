"""Persistence of sweep results.

Sweeps are expensive (minutes to hours at the full profile); these
helpers serialize :class:`~repro.metrics.series.LoadSweepSeries` and
:class:`~repro.metrics.cnf.CNFResult` to a stable JSON document so runs
can be archived, diffed across code versions, and re-rendered without
resimulation::

    from repro.metrics.io import save_cnf, load_cnf
    save_cnf(cnf, "fig6_uniform.json")
    render_cnf(load_cnf("fig6_uniform.json"))

The format is versioned; loading rejects documents from incompatible
versions instead of misreading them.
"""

from __future__ import annotations

import json
import pathlib

from ..errors import AnalysisError
from .cnf import CNFResult
from .series import FailedPoint, LoadPoint, LoadSweepSeries

#: bump on breaking format changes
FORMAT_VERSION = 1


def series_to_dict(series: LoadSweepSeries) -> dict:
    """Plain-data form of one sweep series."""
    return {
        "label": series.label,
        "network": series.network,
        "algorithm": series.algorithm,
        "vcs": series.vcs,
        "pattern": series.pattern,
        "points": [
            {
                "offered": p.offered,
                "offered_measured": p.offered_measured,
                "accepted": p.accepted,
                "latency_cycles": p.latency_cycles,
                "delivered_packets": p.delivered_packets,
            }
            for p in series.points
        ],
        "failures": [
            {
                "offered": f.offered,
                "error": f.error,
                "message": f.message,
                "attempts": f.attempts,
                "seeds": list(f.seeds),
            }
            for f in series.failures
        ],
    }


def series_from_dict(doc: dict) -> LoadSweepSeries:
    """Inverse of :func:`series_to_dict` (validates field presence)."""
    try:
        series = LoadSweepSeries(
            label=doc["label"],
            network=doc["network"],
            algorithm=doc["algorithm"],
            vcs=doc["vcs"],
            pattern=doc["pattern"],
        )
        series.points = [
            LoadPoint(
                offered=p["offered"],
                offered_measured=p["offered_measured"],
                accepted=p["accepted"],
                latency_cycles=p["latency_cycles"],
                delivered_packets=p["delivered_packets"],
            )
            for p in doc["points"]
        ]
        # "failures" is absent from pre-resilience archives; default empty
        series.failures = [
            FailedPoint(
                offered=f["offered"],
                error=f["error"],
                message=f["message"],
                attempts=f["attempts"],
                seeds=tuple(f["seeds"]),
            )
            for f in doc.get("failures", [])
        ]
    except (KeyError, TypeError) as exc:
        raise AnalysisError(f"malformed series document: {exc}") from exc
    return series


def cnf_to_dict(result: CNFResult) -> dict:
    return {
        "format": FORMAT_VERSION,
        "title": result.title,
        "series": [series_to_dict(s) for s in result.series],
    }


def cnf_from_dict(doc: dict) -> CNFResult:
    version = doc.get("format")
    if version != FORMAT_VERSION:
        raise AnalysisError(
            f"unsupported result format {version!r} (expected {FORMAT_VERSION})"
        )
    try:
        return CNFResult(
            title=doc["title"],
            series=[series_from_dict(s) for s in doc["series"]],
        )
    except (KeyError, TypeError) as exc:
        raise AnalysisError(f"malformed CNF document: {exc}") from exc


def save_cnf(result: CNFResult, path: str | pathlib.Path) -> None:
    """Write one experiment's series to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(cnf_to_dict(result), indent=1))


def load_cnf(path: str | pathlib.Path) -> CNFResult:
    """Read an experiment back; raises AnalysisError on malformed input."""
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"cannot load CNF result from {path}: {exc}") from exc
    return cnf_from_dict(doc)
