"""Persistence of simulation and sweep results.

Sweeps are expensive (minutes to hours at the full profile); these
helpers serialize :class:`~repro.sim.results.RunResult` (with its
telemetry), :class:`~repro.metrics.series.LoadSweepSeries` and
:class:`~repro.metrics.cnf.CNFResult` to stable JSON documents so runs
can be archived, diffed across code versions, consumed by external
tooling (``repro-net run --json``) and re-rendered without
resimulation::

    from repro.metrics.io import save_cnf, load_cnf, save_run, load_run
    save_cnf(cnf, "fig6_uniform.json")
    render_cnf(load_cnf("fig6_uniform.json"))
    save_run(result, "point.json")

Every format is versioned; loading rejects documents from incompatible
versions instead of misreading them.  Observability documents ride the
telemetry section rather than defining their own formats here: the
forensics summary lands on ``telemetry.forensics``, transport
accounting on ``telemetry.reliability`` and the flight recorder's
timeline on ``telemetry.flight``, so instrumented runs round-trip
through ``save_run``/``load_run`` and the ledger unchanged.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from ..errors import AnalysisError
from ..obs.telemetry import RunTelemetry
from ..sim.config import SimulationConfig
from ..sim.results import RunResult
from .cnf import CNFResult
from .series import FailedPoint, LoadPoint, LoadSweepSeries

#: bump on breaking format changes
FORMAT_VERSION = 1

#: version of the single-run JSON document (``repro-net run --json``,
#: RunCache entries); bump on breaking changes
RUN_FORMAT_VERSION = 1

#: RunResult counter fields persisted in the run document (config and
#: telemetry travel in their own sections)
RUN_RESULT_FIELDS = (
    "measured_cycles",
    "generated_packets",
    "injected_packets",
    "delivered_packets",
    "delivered_flits",
    "latency_sum",
    "head_latency_sum",
    "latency_max",
    "latencies",
    "in_flight_at_end",
    "throughput_timeline",
    "dropped_packets",
    "dropped_flits",
    "retransmitted_packets",
    "duplicate_packets",
    "given_up_packets",
    "goodput_flits",
)

#: fields added after RUN_FORMAT_VERSION 1 shipped; absent from older
#: archives and RunCache entries, so loading defaults them instead of
#: rejecting the document
_OPTIONAL_RESULT_FIELDS = frozenset(
    {
        "dropped_packets",
        "dropped_flits",
        "retransmitted_packets",
        "duplicate_packets",
        "given_up_packets",
        "goodput_flits",
    }
)


def run_result_to_dict(result: RunResult) -> dict:
    """Versioned plain-data document for one run (the ``--json`` schema).

    Layout: ``format`` (int), ``config`` (every SimulationConfig field),
    ``result`` (the :data:`RUN_RESULT_FIELDS` counters), ``telemetry``
    (the :class:`~repro.obs.telemetry.RunTelemetry` record, or ``None``
    for results that never ran through the engine), and
    ``latency_percentiles`` (exact p50/p95/p99/max over the per-packet
    samples when ``config.collect_latencies`` gathered any, else
    ``None``; derived from ``result.latencies``, so loaders may ignore
    it).
    """
    return {
        "format": RUN_FORMAT_VERSION,
        "config": dataclasses.asdict(result.config),
        "result": {name: getattr(result, name) for name in RUN_RESULT_FIELDS},
        "telemetry": result.telemetry.to_dict() if result.telemetry else None,
        "latency_percentiles": result.latency_percentiles(),
    }


def run_result_from_dict(doc: dict) -> RunResult:
    """Inverse of :func:`run_result_to_dict`.

    Raises:
        AnalysisError: on a version mismatch or missing fields.
    """
    version = doc.get("format")
    if version != RUN_FORMAT_VERSION:
        raise AnalysisError(
            f"unsupported run format {version!r} (expected {RUN_FORMAT_VERSION})"
        )
    try:
        config = SimulationConfig(**doc["config"])
        fields = {
            name: (
                doc["result"].get(name, 0)
                if name in _OPTIONAL_RESULT_FIELDS
                else doc["result"][name]
            )
            for name in RUN_RESULT_FIELDS
        }
        telemetry_doc = doc.get("telemetry")
        telemetry = (
            RunTelemetry.from_dict(telemetry_doc) if telemetry_doc is not None else None
        )
    except (KeyError, TypeError) as exc:
        raise AnalysisError(f"malformed run document: {exc}") from exc
    return RunResult(config=config, telemetry=telemetry, **fields)


def save_run(result: RunResult, path: str | pathlib.Path) -> None:
    """Write one run (counters + telemetry) to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(run_result_to_dict(result), indent=1))


def load_run(path: str | pathlib.Path) -> RunResult:
    """Read a run document back; raises AnalysisError on malformed input."""
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"cannot load run result from {path}: {exc}") from exc
    return run_result_from_dict(doc)


def series_to_dict(series: LoadSweepSeries) -> dict:
    """Plain-data form of one sweep series."""
    return {
        "label": series.label,
        "network": series.network,
        "algorithm": series.algorithm,
        "vcs": series.vcs,
        "pattern": series.pattern,
        "points": [
            {
                "offered": p.offered,
                "offered_measured": p.offered_measured,
                "accepted": p.accepted,
                "latency_cycles": p.latency_cycles,
                "delivered_packets": p.delivered_packets,
            }
            for p in series.points
        ],
        "failures": [
            {
                "offered": f.offered,
                "error": f.error,
                "message": f.message,
                "attempts": f.attempts,
                "seeds": list(f.seeds),
            }
            for f in series.failures
        ],
    }


def series_from_dict(doc: dict) -> LoadSweepSeries:
    """Inverse of :func:`series_to_dict` (validates field presence)."""
    try:
        series = LoadSweepSeries(
            label=doc["label"],
            network=doc["network"],
            algorithm=doc["algorithm"],
            vcs=doc["vcs"],
            pattern=doc["pattern"],
        )
        series.points = [
            LoadPoint(
                offered=p["offered"],
                offered_measured=p["offered_measured"],
                accepted=p["accepted"],
                latency_cycles=p["latency_cycles"],
                delivered_packets=p["delivered_packets"],
            )
            for p in doc["points"]
        ]
        # "failures" is absent from pre-resilience archives; default empty
        series.failures = [
            FailedPoint(
                offered=f["offered"],
                error=f["error"],
                message=f["message"],
                attempts=f["attempts"],
                seeds=tuple(f["seeds"]),
            )
            for f in doc.get("failures", [])
        ]
    except (KeyError, TypeError) as exc:
        raise AnalysisError(f"malformed series document: {exc}") from exc
    return series


def sweep_document(series: LoadSweepSeries, point_rates: list[float] | None = None) -> dict:
    """Versioned machine document for one sweep (``repro-net sweep --json``).

    ``point_rates`` are the per-point engine cycles/sec figures collected
    from the campaign's live telemetry; the document summarizes them so a
    consumer can judge the measurement cost next to the measurement.
    """
    rates = point_rates or []
    return {
        "format": FORMAT_VERSION,
        "series": series_to_dict(series),
        "telemetry": {
            "points_simulated": len(rates),
            "mean_cycles_per_sec": sum(rates) / len(rates) if rates else None,
        },
    }


def cnf_to_dict(result: CNFResult) -> dict:
    return {
        "format": FORMAT_VERSION,
        "title": result.title,
        "series": [series_to_dict(s) for s in result.series],
    }


def cnf_from_dict(doc: dict) -> CNFResult:
    version = doc.get("format")
    if version != FORMAT_VERSION:
        raise AnalysisError(
            f"unsupported result format {version!r} (expected {FORMAT_VERSION})"
        )
    try:
        return CNFResult(
            title=doc["title"],
            series=[series_from_dict(s) for s in doc["series"]],
        )
    except (KeyError, TypeError) as exc:
        raise AnalysisError(f"malformed CNF document: {exc}") from exc


def save_cnf(result: CNFResult, path: str | pathlib.Path) -> None:
    """Write one experiment's series to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(cnf_to_dict(result), indent=1))


def load_cnf(path: str | pathlib.Path) -> CNFResult:
    """Read an experiment back; raises AnalysisError on malformed input."""
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"cannot load CNF result from {path}: {exc}") from exc
    return cnf_from_dict(doc)
