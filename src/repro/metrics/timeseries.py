"""Throughput time-series analysis (§6 stability, warm-up adequacy).

The paper collects statistics only after a 2000-cycle warm-up and argues
that throughput "remains stable after saturation".  With
``SimulationConfig.interval_cycles`` set, a run records delivered flits
per interval; these helpers quantify both properties:

* :func:`timeline_stability` — relative spread of the interval
  throughputs (0 = perfectly flat);
* :func:`warmup_adequate` — whether the first measured interval already
  matches the steady state (an inadequate warm-up shows up as a
  depressed or inflated leading interval while the pipeline fills).
"""

from __future__ import annotations

from ..errors import AnalysisError
from ..sim.results import RunResult


def interval_rates(result: RunResult) -> list[float]:
    """Per-interval accepted bandwidth in flits/cycle/node."""
    interval = result.config.interval_cycles
    if not interval or not result.throughput_timeline:
        raise AnalysisError(
            "run has no throughput timeline (set config.interval_cycles)"
        )
    nodes = result.config.num_nodes
    return [count / (interval * nodes) for count in result.throughput_timeline]


def timeline_stability(result: RunResult) -> float:
    """Relative spread (max-min)/mean of the interval throughputs.

    Values below ~0.1 mean the run is effectively stationary; large
    values flag either an inadequate warm-up or genuinely unstable
    post-saturation behavior (which the paper's source-throttled
    algorithms are designed to avoid).

    Raises:
        AnalysisError: without a timeline, or on an all-idle run.
    """
    rates = interval_rates(result)
    mean = sum(rates) / len(rates)
    if mean == 0:
        raise AnalysisError("no traffic delivered; stability undefined")
    return (max(rates) - min(rates)) / mean


def warmup_adequate(result: RunResult, tol: float = 0.1) -> bool:
    """True when the first interval is within ``tol`` of the rest's mean.

    With fewer than three intervals the comparison is meaningless and an
    AnalysisError is raised — use a longer window or shorter intervals.
    """
    rates = interval_rates(result)
    if len(rates) < 3:
        raise AnalysisError(
            f"need >= 3 intervals to judge warm-up, got {len(rates)}"
        )
    rest = sum(rates[1:]) / (len(rates) - 1)
    if rest == 0:
        raise AnalysisError("no steady-state traffic; warm-up check undefined")
    return abs(rates[0] - rest) <= tol * rest
