"""Closed-form zero-load latency model, validated against the simulator.

With the §5 normalization every pipeline stage is one clock, so an
uncontended packet crossing ``c`` channels (node links included) and
``c − 1`` switches has network latency

    L0(c, S) = c·T_link + (c−1)·(T_routing + T_crossbar) + (S−1)·T_link
             = 3c + S − 4            [cycles]

where S is the packet length in flits: the header pays one link stage per
channel plus routing and crossbar at every switch, and the tail trails the
header by S−1 cycles at one flit per cycle.  The engine reproduces this
exactly (see tests/test_engine.py::TestZeroLoadLatency), which pins down
the pipeline depth of the model.

The expected zero-load *average* latency under a traffic pattern follows
by averaging over the pattern's distance distribution.
"""

from __future__ import annotations

from collections.abc import Callable

from ..errors import AnalysisError
from ..topology.base import Topology
from ..topology.cube import KAryNCube
from ..topology.tree import KAryNTree


def zero_load_latency(channels: int, packet_flits: int) -> int:
    """Uncontended network latency in cycles for a path of ``channels`` hops.

    Args:
        channels: channels traversed, node links included (tree distance
            ``2l+2``; cube router hops plus the injection and ejection
            channels).
        packet_flits: packet length S.

    Raises:
        AnalysisError: for a zero-channel path (src == dst never enters
            the network).
    """
    if channels < 1:
        raise AnalysisError(f"a network path needs >= 1 channel, got {channels}")
    if packet_flits < 1:
        raise AnalysisError(f"packet needs >= 1 flit, got {packet_flits}")
    return 3 * channels + packet_flits - 4


def path_channels(topo: Topology, src: int, dst: int) -> int:
    """Channels (including node links) on a minimal path src→dst."""
    if isinstance(topo, KAryNTree):
        return topo.min_distance(src, dst)  # already counts node links
    if isinstance(topo, KAryNCube):
        return topo.min_distance(src, dst) + 2  # + injection and ejection
    raise AnalysisError(f"no channel model for {type(topo).__name__}")


def expected_zero_load_latency(
    topo: Topology,
    packet_flits: int,
    mapping: Callable[[int], int] | None = None,
) -> float:
    """Average L0 over a permutation (or all ordered pairs when None).

    Fixed points are excluded: they inject nothing.
    """
    total = 0.0
    count = 0
    if mapping is None:
        pairs = (
            (s, d)
            for s in range(topo.num_nodes)
            for d in range(topo.num_nodes)
            if s != d
        )
    else:
        pairs = ((s, mapping(s)) for s in range(topo.num_nodes) if mapping(s) != s)
    for s, d in pairs:
        total += zero_load_latency(path_channels(topo, s, d), packet_flits)
        count += 1
    if count == 0:
        raise AnalysisError("no communicating pairs under this mapping")
    return total / count
