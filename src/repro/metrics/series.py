"""Load-sweep series: the data behind one curve of Figures 5–7.

A :class:`LoadSweepSeries` collects one :class:`LoadPoint` per offered
load, in CNF units (fractions of network capacity on both axes, latency
in cycles).  Conversions to the absolute units of §10 are in
:mod:`repro.metrics.cnf`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError
from ..sim.results import RunResult


def latency_percentiles(
    result: RunResult, qs: Sequence[float] = (50.0, 95.0, 99.0)
) -> dict[float, float]:
    """Latency percentiles of a run (requires ``collect_latencies``).

    Averages hide the latency tail that matters for synchronization-bound
    applications; run the point with ``collect_latencies=True`` and read
    p50/p95/p99 here.

    Raises:
        AnalysisError: when the run kept no per-packet samples.
    """
    if not result.latencies:
        raise AnalysisError(
            "no latency samples; run with config.collect_latencies=True"
        )
    values = np.asarray(result.latencies, dtype=float)
    return {q: float(np.percentile(values, q)) for q in qs}


@dataclass(frozen=True)
class LoadPoint:
    """One sweep point of one configuration.

    Attributes:
        offered: nominal offered bandwidth (fraction of capacity; x-axis).
        offered_measured: realized offered bandwidth from the sources.
        accepted: accepted bandwidth (fraction of capacity; y-axis).
        latency_cycles: average network latency, or ``None`` when no
            packet completed inside the measurement window (deep
            saturation with short windows).
        delivered_packets: latency sample count, for error awareness.
    """

    offered: float
    offered_measured: float
    accepted: float
    latency_cycles: float | None
    delivered_packets: int

    @classmethod
    def from_result(cls, result: RunResult) -> LoadPoint:
        try:
            lat = result.avg_latency_cycles
        except AnalysisError:
            lat = None
        return cls(
            offered=result.config.load,
            offered_measured=result.offered_fraction,
            accepted=result.accepted_fraction,
            latency_cycles=lat,
            delivered_packets=result.delivered_packets,
        )


@dataclass(frozen=True)
class FailedPoint:
    """One sweep point that produced no result, recorded instead of aborting.

    The resilient sweep harness catches per-point failures (deadlocks,
    engine invariant violations, wall-clock timeouts), retries with fresh
    seeds up to its retry budget, and — when every attempt fails — files
    one of these so the campaign's remaining points still complete.

    Attributes:
        offered: the point's nominal offered load (its sweep x-position).
        error: exception class name, e.g. ``"DeadlockError"``.
        message: the final attempt's error message (includes the deadlock
            diagnostic snapshot text when the watchdog fired).
        attempts: how many simulation attempts were made.
        seeds: the seed used by each attempt, in order.
    """

    offered: float
    error: str
    message: str
    attempts: int
    seeds: tuple[int, ...]


@dataclass
class LoadSweepSeries:
    """All sweep points of one configuration, sorted by offered load.

    Attributes:
        label: legend label, e.g. ``"fat tree, 4 vc"`` or ``"cube, Duato"``.
        network: ``"tree"`` or ``"cube"``.
        algorithm / vcs / pattern: configuration echo for reports.
        points: the sweep data.
        failures: points that produced no result (resilient sweeps only).
    """

    label: str
    network: str
    algorithm: str
    vcs: int
    pattern: str
    points: list[LoadPoint] = field(default_factory=list)
    failures: list[FailedPoint] = field(default_factory=list)

    def add(self, result: RunResult) -> LoadPoint:
        point = LoadPoint.from_result(result)
        self.points.append(point)
        self.points.sort(key=lambda p: p.offered)
        return point

    def add_failure(self, failure: FailedPoint) -> FailedPoint:
        self.failures.append(failure)
        self.failures.sort(key=lambda f: f.offered)
        return failure

    @property
    def complete(self) -> bool:
        """True when every attempted point produced a result."""
        return not self.failures

    def offered(self) -> list[float]:
        return [p.offered for p in self.points]

    def accepted(self) -> list[float]:
        return [p.accepted for p in self.points]

    def latencies(self) -> list[float | None]:
        return [p.latency_cycles for p in self.points]

    def peak_accepted(self) -> float:
        """Highest accepted bandwidth anywhere on the curve."""
        if not self.points:
            raise AnalysisError(f"empty sweep series {self.label!r}")
        return max(p.accepted for p in self.points)

    def __len__(self) -> int:
        return len(self.points)
