"""Channel utilization analysis.

Every :class:`~repro.router.lane.LinkDirection` counts the flits it
carried; these helpers turn the raw counters of a finished engine into
the analyses behind the paper's arguments:

* the cube's bisection channels are the bottleneck under complement
  traffic (§5, §9) — :func:`cube_bisection_load` measures exactly the
  traffic over the cut;
* the tree spreads load across its levels (§8) — :func:`tree_level_loads`
  exposes the per-level aggregate;
* hot-channel statistics (:func:`channel_loads`, :func:`utilization_summary`)
  quantify the imbalance adaptive routing is supposed to smooth out.

All rates describe the **measurement window**: the engine snapshots the
per-direction flit counters at the warm-up boundary
(``LinkDirection.flits_at_warmup``), so warm-up transients never leak
into utilization numbers.  Pass ``window="total"`` to
:func:`channel_loads` for the raw whole-run counters when comparing
against cumulative engine statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError
from ..sim.engine import Engine
from ..topology.cube import KAryNCube
from ..topology.tree import KAryNTree


@dataclass(frozen=True)
class ChannelLoad:
    """Flits carried by one unidirectional channel."""

    switch: int
    port: int
    to_node: bool
    flits: int
    utilization: float  # flits per cycle of the window, in [0, 1]


def measured_cycles(engine: Engine) -> int:
    """Cycles covered by the measurement-window flit counters.

    The engine snapshots every direction's cumulative counter when it
    crosses the warm-up boundary; an engine stopped before that boundary
    never took the snapshot, so its "window" is the whole (short) run.
    """
    warmup = engine.config.warmup_cycles
    if engine.cycle > warmup:
        return engine.cycle - warmup
    return max(engine.cycle, 1)


def channel_loads(engine: Engine, window: str = "measured") -> list[ChannelLoad]:
    """Per-direction load snapshot, sorted hottest first.

    Args:
        engine: a finished (or at least advanced) engine.
        window: ``"measured"`` (default) reports measurement-window rates;
            ``"total"`` reports whole-run counters including warm-up.

    Raises:
        AnalysisError: on an unknown ``window`` selector.
    """
    if window == "measured":
        cycles = measured_cycles(engine)
        flits_of = lambda d: d.measured_flits  # noqa: E731 - tiny selector
    elif window == "total":
        cycles = max(engine.cycle, 1)
        flits_of = lambda d: d.flits  # noqa: E731
    else:
        raise AnalysisError(f"unknown window {window!r}; use 'measured' or 'total'")
    loads = [
        ChannelLoad(
            switch=d.switch,
            port=d.port,
            to_node=d.to_node,
            flits=flits_of(d),
            utilization=flits_of(d) / cycles,
        )
        for d in engine.dirs
    ]
    loads.sort(key=lambda c: c.flits, reverse=True)
    return loads


def utilization_summary(engine: Engine, window: str = "measured") -> dict[str, float]:
    """Aggregate utilization statistics over the internal channels.

    Returns mean, max and the max/mean imbalance ratio over the selected
    window (measurement window by default); node (ejection) channels are
    excluded so the numbers describe the fabric itself.
    """
    internal = [c for c in channel_loads(engine, window=window) if not c.to_node]
    if not internal:
        raise AnalysisError("network has no internal channels")
    values = [c.utilization for c in internal]
    mean = sum(values) / len(values)
    peak = max(values)
    return {
        "mean": mean,
        "max": peak,
        "imbalance": peak / mean if mean > 0 else float("inf"),
    }


def cube_bisection_load(engine: Engine, dim: int = 0) -> dict[str, float]:
    """Traffic across the bisection of a k-ary n-cube along ``dim``.

    The cut severs each ring of dimension ``dim`` between digits
    ``k/2 - 1 | k/2`` and at the wrap-around ``k-1 | 0``.  Returns the
    total crossing flits and the mean utilization of the crossing
    channels over the measurement window — under complement traffic
    these approach 1.0 while the fabric average stays far lower.
    """
    topo = engine.topology
    if not isinstance(topo, KAryNCube):
        raise AnalysisError("bisection load defined for cubes only")
    if topo.k % 2:
        raise AnalysisError("bisection needs an even radix")
    half = topo.k // 2
    crossing = []
    for d in engine.dirs:
        if d.to_node:
            continue
        port = d.port
        if port // 2 != dim:
            continue
        digit = topo.digit(d.switch, dim)
        direction = 1 if port % 2 == 0 else -1
        dest_digit = (digit + direction) % topo.k
        if (digit < half) != (dest_digit < half):
            crossing.append(d)
    if not crossing:
        raise AnalysisError(f"no crossing channels found for dim {dim}")
    cycles = measured_cycles(engine)
    total = sum(d.measured_flits for d in crossing)
    return {
        "channels": float(len(crossing)),
        "flits": float(total),
        "mean_utilization": total / (len(crossing) * cycles),
    }


def tree_level_loads(engine: Engine) -> dict[int, float]:
    """Mean measurement-window utilization of the tree's inter-level
    channels per level gap.

    Key ``l`` covers the channels between switch levels ``l`` and
    ``l+1``; key ``-1`` covers the node links.  On congestion-free
    permutations the profile is flat; congesting permutations pile up in
    the upper levels' descending channels.
    """
    topo = engine.topology
    if not isinstance(topo, KAryNTree):
        raise AnalysisError("level loads defined for trees only")
    cycles = measured_cycles(engine)
    sums: dict[int, list[int]] = {}
    for d in engine.dirs:
        if d.to_node:
            key = -1
        else:
            level = topo.level_of(d.switch)
            # a down-port direction descends from `level`; an up-port
            # direction ascends towards `level + 1`
            key = level - 1 if d.port < topo.k else level
            if key == -1:
                key = -1  # leaf down ports are node links (to_node) anyway
        sums.setdefault(key, []).append(d.measured_flits)
    return {
        key: sum(flits) / (len(flits) * cycles) for key, flits in sorted(sums.items())
    }
