"""Saturation-point estimation (paper §6).

"Saturation is defined as the minimum offered bandwidth where the accepted
bandwidth is lower than the global packet creation rate at the source
nodes.  It is worth noting that, before saturation, offered and accepted
bandwidth are the same."

On finite windows the two rates are equal only up to sampling noise, so
the estimator takes a relative tolerance: a point is saturated when
``accepted < (1 - tol) * offered``.  The saturation point is interpolated
between the last unsaturated and the first saturated sweep point, which
keeps the estimate stable under coarse load grids.
"""

from __future__ import annotations

from ..errors import AnalysisError
from .series import LoadSweepSeries

#: default relative tolerance absorbing Bernoulli noise on short windows
DEFAULT_TOLERANCE = 0.05


def saturation_point(series: LoadSweepSeries, tol: float = DEFAULT_TOLERANCE) -> float:
    """Estimated saturation load (fraction of capacity) of a sweep.

    Returns the interpolated offered load where accepted bandwidth first
    falls ``tol`` below offered.  When no sweep point is saturated the
    last offered load is returned (the curve saturates beyond the sweep;
    callers sweeping to 1.0 read this as "at or above capacity").

    Raises:
        AnalysisError: on an empty series or nonsensical tolerance.
    """
    if not series.points:
        raise AnalysisError(f"empty sweep series {series.label!r}")
    if not 0.0 <= tol < 1.0:
        raise AnalysisError(f"tolerance {tol} not in [0, 1)")
    prev = None
    for p in series.points:
        measured = p.offered_measured if p.offered_measured > 0 else p.offered
        if p.accepted < (1.0 - tol) * measured:
            if prev is None:
                return p.offered  # saturated from the first point
            # Linear interpolation on the deficit (offered - accepted).
            d0 = max(prev.offered_measured - prev.accepted, 0.0)
            d1 = measured - p.accepted
            thresh0 = tol * max(prev.offered_measured, 1e-12)
            thresh1 = tol * measured
            # deficit crosses tol*offered somewhere in (prev, p)
            f0 = d0 - thresh0
            f1 = d1 - thresh1
            if f1 == f0:
                return p.offered
            frac = -f0 / (f1 - f0)
            frac = min(max(frac, 0.0), 1.0)
            return prev.offered + frac * (p.offered - prev.offered)
        prev = p
    return series.points[-1].offered


def sustained_rate(series: LoadSweepSeries, tol: float = DEFAULT_TOLERANCE) -> float:
    """Average accepted bandwidth over the saturated sweep region (§6).

    The paper highlights post-saturation stability ("we usually expect the
    accepted bandwidth to remain stable after saturation"); this is the
    mean accepted fraction over points at or beyond the saturation load,
    falling back to the peak accepted value when nothing saturated.
    """
    sat = saturation_point(series, tol)
    post = [p.accepted for p in series.points if p.offered >= sat]
    if not post:
        return series.peak_accepted()
    return sum(post) / len(post)


def post_saturation_stability(series: LoadSweepSeries, tol: float = DEFAULT_TOLERANCE) -> float:
    """Relative spread of accepted bandwidth beyond saturation.

    0 means perfectly flat (stable); the paper's algorithms — all source
    throttled — are expected to stay within a few percent.  Returns 0 when
    fewer than two post-saturation points exist.
    """
    sat = saturation_point(series, tol)
    post = [p.accepted for p in series.points if p.offered >= sat]
    if len(post) < 2:
        return 0.0
    mean = sum(post) / len(post)
    if mean == 0:
        raise AnalysisError(f"zero accepted bandwidth beyond saturation in {series.label!r}")
    return (max(post) - min(post)) / mean
