"""Playing traces through the simulation engine.

:func:`run_trace` builds a paper-normalized network, substitutes a
:class:`~repro.workloads.trace.TraceInjector` for the stochastic sources
and drains the trace, returning completion-time statistics.  This is the
workload analogue of :func:`repro.experiments.drain.drain_permutation`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..routing.base import make_routing
from ..sim.config import SimulationConfig
from ..sim.engine import Engine
from ..topology.cube import KAryNCube
from ..topology.tree import KAryNTree
from .trace import Trace, TraceInjector


@dataclass(frozen=True)
class TraceResult:
    """Completion statistics of one trace run."""

    config: SimulationConfig
    messages: int
    total_flits: int
    makespan_cycles: int
    avg_latency_cycles: float
    max_latency_cycles: int

    @property
    def aggregate_flits_per_cycle(self) -> float:
        """Delivered flits per cycle over the whole drain."""
        return self.total_flits / self.makespan_cycles


def run_trace(
    config: SimulationConfig, trace: Trace, max_cycles: int = 2_000_000
) -> TraceResult:
    """Drain ``trace`` on the network described by ``config``.

    The config's traffic fields (pattern, load) are ignored — the trace
    *is* the workload; its topology, routing, VC and buffer settings
    apply unchanged.  Per-message sizes come from the trace, so
    ``config.packet_flits`` only caps nothing (it remains the default for
    entries without a size, which trace entries always carry).

    Raises:
        ConfigurationError: if the trace size does not match the network.
    """
    if trace.num_nodes != config.num_nodes:
        raise ConfigurationError(
            f"trace built for {trace.num_nodes} nodes, network has {config.num_nodes}"
        )
    if len(trace) == 0:
        raise ConfigurationError("empty trace")
    cfg = SimulationConfig(
        network=config.network,
        k=config.k,
        n=config.n,
        algorithm=config.algorithm,
        vcs=config.vcs,
        packet_flits=config.packet_flits,
        capacity_flits_per_cycle=config.capacity_flits_per_cycle,
        pattern="uniform",  # unused: the injector is replaced below
        load=0.0,
        buffer_flits=config.buffer_flits,
        warmup_cycles=0,
        total_cycles=max_cycles,
        seed=config.seed,
        collect_latencies=True,
        watchdog_cycles=config.watchdog_cycles,
    )
    if cfg.network == "tree":
        topo = KAryNTree(cfg.k, cfg.n)
    else:
        topo = KAryNCube(cfg.k, cfg.n)
    engine = Engine(topo, make_routing(cfg.algorithm), TraceInjector(trace), cfg)
    makespan = engine.run_until_drained(max_cycles)
    result = engine.result
    return TraceResult(
        config=cfg,
        messages=len(trace),
        total_flits=trace.total_flits(),
        makespan_cycles=makespan,
        avg_latency_cycles=result.latency_sum / result.delivered_packets,
        max_latency_cycles=result.latency_max,
    )
