"""Trace-driven workloads and collective-operation generators.

The paper motivates its synthetic benchmarks as "representative of shared
memory computation and common parallel algorithms" (§1); this package
closes the loop for *algorithm-shaped* traffic: explicit message traces
(each message is a ``(cycle, src, dst, flits)`` tuple) played through the
same engine, plus generators for the classic communication phases of
parallel algorithms:

* **all-to-all personalized exchange** — the kernel of sample sort and
  matrix transposition (the paper cites Helman/Bader/JáJá [35]);
* **butterfly barrier / allreduce rounds** — log₂N rounds of pairwise
  exchange at hypercube distances (bit-complement sub-permutations);
* **stencil halo exchange** — nearest-neighbor rounds per dimension;
* **broadcast** — a binomial tree from one root.

Use :func:`~repro.workloads.runner.run_trace` to play any trace on a
paper-normalized network and get the makespan plus per-message latency
statistics.
"""

from .collectives import (
    alltoall_trace,
    broadcast_trace,
    butterfly_barrier_trace,
    stencil_trace,
)
from .runner import TraceResult, run_trace
from .trace import Trace, TraceInjector, TraceMessage, TraceSource

__all__ = [
    "alltoall_trace",
    "broadcast_trace",
    "butterfly_barrier_trace",
    "stencil_trace",
    "TraceResult",
    "run_trace",
    "Trace",
    "TraceInjector",
    "TraceMessage",
    "TraceSource",
]
