"""Message traces and the trace-driven injector.

A :class:`Trace` is an explicit list of messages ``(cycle, src, dst,
flits)``.  :class:`TraceSource` plays one node's share of a trace through
the engine's normal single-injection-channel path, so trace-driven runs
obey exactly the same flow control, routing and source throttling as the
stochastic experiments.

Messages wider than one packet are *not* segmented automatically — real
systems make that a protocol decision.  :meth:`Trace.segmented` performs
the standard fixed-size segmentation when wanted.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True, order=True)
class TraceMessage:
    """One message: injected at ``time`` (or later, if the node is busy)."""

    time: int
    src: int
    dst: int
    flits: int

    def validate(self, num_nodes: int) -> None:
        if self.time < 0:
            raise ConfigurationError(f"negative message time {self.time}")
        if not (0 <= self.src < num_nodes and 0 <= self.dst < num_nodes):
            raise ConfigurationError(
                f"message endpoints {self.src}->{self.dst} out of range [0, {num_nodes})"
            )
        if self.src == self.dst:
            raise ConfigurationError(f"self-message at node {self.src}")
        if self.flits < 2:
            raise ConfigurationError(
                f"a wormhole message needs header and tail: flits >= 2, got {self.flits}"
            )


class Trace:
    """An ordered collection of messages for a ``num_nodes`` network."""

    def __init__(self, num_nodes: int, messages: list[TraceMessage] | None = None):
        if num_nodes < 2:
            raise ConfigurationError(f"need at least 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes
        self.messages: list[TraceMessage] = []
        for msg in messages or []:
            self.add(msg)

    def add(self, msg: TraceMessage) -> None:
        msg.validate(self.num_nodes)
        self.messages.append(msg)

    def send(self, time: int, src: int, dst: int, flits: int) -> None:
        """Convenience: append a message."""
        self.add(TraceMessage(time=time, src=src, dst=dst, flits=flits))

    def sorted(self) -> list[TraceMessage]:
        return sorted(self.messages)

    def total_flits(self) -> int:
        return sum(m.flits for m in self.messages)

    def duration_hint(self) -> int:
        """Last injection time — a lower bound on the makespan."""
        return max((m.time for m in self.messages), default=0)

    def segmented(self, max_flits: int) -> Trace:
        """Split every message into packets of at most ``max_flits``.

        Segments inherit the original injection time; the engine's
        single injection channel serializes them naturally.  A wormhole
        segment needs at least 2 flits (header + tail), so a split that
        would strand a single flit is rebalanced: the preceding segment
        shrinks by one when it can (``max_flits > 2``), otherwise the
        stray flit is folded in and that one segment carries
        ``max_flits + 1`` flits (only possible for ``max_flits == 2``
        and odd message sizes).
        """
        if max_flits < 2:
            raise ConfigurationError(f"segments need >= 2 flits, got {max_flits}")
        out = Trace(self.num_nodes)
        for m in self.messages:
            remaining = m.flits
            while remaining:
                chunk = min(remaining, max_flits)
                if remaining - chunk == 1:
                    if chunk > 2:
                        chunk -= 1  # leave a 2-flit tail segment
                    else:
                        chunk += 1  # fold the stray flit (chunk becomes 3)
                out.send(m.time, m.src, m.dst, chunk)
                remaining -= chunk
        return out

    # -- persistence -----------------------------------------------------------

    def to_json(self) -> str:
        """Serialize as a compact JSON document."""
        return json.dumps(
            {
                "num_nodes": self.num_nodes,
                "messages": [[m.time, m.src, m.dst, m.flits] for m in self.sorted()],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> Trace:
        """Inverse of :meth:`to_json` (validates every message)."""
        try:
            doc = json.loads(text)
            messages = [TraceMessage(*row) for row in doc["messages"]]
            return cls(doc["num_nodes"], messages)
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed trace document: {exc}") from exc

    def __len__(self) -> int:
        return len(self.messages)


class TraceSource:
    """Per-node message schedule, duck-compatible with ``PacketSource``.

    Queue entries carry an explicit flit count ``(time, dst, flits)``; the
    engine reads the third element when present.
    """

    __slots__ = ("node", "schedule", "_next_idx", "queue", "active")

    def __init__(self, node: int, schedule: list[TraceMessage]):
        self.node = node
        # stable sort by release time ONLY: same-time messages keep their
        # trace order (schedules encode intent in that order, e.g. the
        # shifted all-to-all)
        self.schedule = sorted(schedule, key=lambda m: m.time)
        self._next_idx = 0
        self.queue: deque[tuple[int, int, int]] = deque()
        self.active = bool(schedule)

    def advance(self, cycle: int) -> int:
        """Release every message scheduled at or before ``cycle``."""
        released = 0
        while self._next_idx < len(self.schedule):
            msg = self.schedule[self._next_idx]
            if msg.time > cycle:
                break
            self.queue.append((msg.time, msg.dst, msg.flits))
            self._next_idx += 1
            released += 1
        return released

    def done(self) -> bool:
        """Exhausted: nothing queued and nothing scheduled later."""
        return self._next_idx >= len(self.schedule) and not self.queue

    def pending(self) -> int:
        return len(self.queue)


class TraceInjector:
    """Wires one :class:`TraceSource` per node (engine-compatible)."""

    def __init__(self, trace: Trace):
        self.trace = trace
        self.num_nodes = trace.num_nodes
        per_node: list[list[TraceMessage]] = [[] for _ in range(trace.num_nodes)]
        for msg in trace.messages:
            per_node[msg.src].append(msg)
        self.sources = [
            TraceSource(node, schedule) for node, schedule in enumerate(per_node)
        ]
