"""Trace generators for the communication phases of parallel algorithms.

Every generator returns a :class:`~repro.workloads.trace.Trace` whose
messages are one packet long by default (``flits`` parameter); pass
larger sizes and :meth:`Trace.segmented` when modeling long messages.
Times are *earliest injection* times — the engine's single injection
channel serializes whatever a schedule packs together.
"""

from __future__ import annotations

import random

from ..errors import ConfigurationError
from .trace import Trace


def alltoall_trace(
    num_nodes: int,
    flits: int = 16,
    spacing: int = 0,
    schedule: str = "shifted",
    seed: int = 0,
) -> Trace:
    """All-to-all personalized exchange: every node sends to every other.

    Args:
        flits: message size per pair.
        spacing: cycles between a node's successive sends (0 = enqueue
            everything at cycle 0 and let the injection channel pace it).
        schedule: ``"shifted"`` — round r pairs i with (i + r) mod N, the
            classic linear-shift schedule that makes each round a
            contention-balanced permutation; ``"naive"`` — every node
            sends in destination order 0, 1, 2, ..., creating the
            serialized hot destinations the shifted schedule avoids;
            ``"random"`` — per-node random destination order.
    """
    if schedule not in ("shifted", "naive", "random"):
        raise ConfigurationError(f"unknown alltoall schedule {schedule!r}")
    rng = random.Random(seed)
    trace = Trace(num_nodes)
    for src in range(num_nodes):
        if schedule == "shifted":
            dests = [(src + r) % num_nodes for r in range(1, num_nodes)]
        elif schedule == "naive":
            dests = [d for d in range(num_nodes) if d != src]
        else:
            dests = [d for d in range(num_nodes) if d != src]
            rng.shuffle(dests)
        for r, dst in enumerate(dests):
            trace.send(r * spacing, src, dst, flits)
    return trace


def butterfly_barrier_trace(
    num_nodes: int, flits: int = 16, round_gap: int | None = None
) -> Trace:
    """Butterfly barrier / recursive-doubling allreduce: log2(N) rounds.

    Round r exchanges with the partner at XOR distance ``2**r``.  Rounds
    are separated by ``round_gap`` cycles (default: enough for one
    message to drain an uncontended path, ``3·flits``), approximating
    the data dependency between rounds without modeling replies.

    Raises:
        ConfigurationError: for non-power-of-two node counts.
    """
    if num_nodes & (num_nodes - 1):
        raise ConfigurationError(
            f"butterfly barrier needs a power-of-two node count, got {num_nodes}"
        )
    gap = round_gap if round_gap is not None else 3 * flits
    trace = Trace(num_nodes)
    rounds = num_nodes.bit_length() - 1
    for r in range(rounds):
        mask = 1 << r
        for src in range(num_nodes):
            trace.send(r * gap, src, src ^ mask, flits)
    return trace


def stencil_trace(
    k: int, n: int, flits: int = 16, rounds: int = 1, round_gap: int | None = None
) -> Trace:
    """Halo exchange on a k^n process grid: each round sends to both
    neighbors in every dimension (torus wrap included).

    Models the communication phase of iterative stencil solvers; one
    round is ``2n`` messages per node.
    """
    if k < 2 or n < 1:
        raise ConfigurationError(f"invalid grid k={k}, n={n}")
    if rounds < 1:
        raise ConfigurationError(f"need >= 1 round, got {rounds}")
    gap = round_gap if round_gap is not None else 3 * flits * 2 * n
    num_nodes = k**n
    weights = [k ** (n - 1 - i) for i in range(n)]
    trace = Trace(num_nodes)
    for r in range(rounds):
        for src in range(num_nodes):
            for dim in range(n):
                w = weights[dim]
                digit = (src // w) % k
                for direction in (1, -1):
                    peer = src + ((digit + direction) % k - digit) * w
                    if peer != src:
                        trace.send(r * gap, src, peer, flits)
    return trace


def broadcast_trace(num_nodes: int, root: int = 0, flits: int = 16) -> Trace:
    """Binomial-tree broadcast from ``root``: log2(N) rounds.

    In round r every node that already holds the data forwards it to the
    partner at XOR distance ``2**r`` (relative to the root's numbering).
    Message times chain the rounds by the uncontended forwarding delay.
    """
    if num_nodes & (num_nodes - 1):
        raise ConfigurationError(
            f"binomial broadcast needs a power-of-two node count, got {num_nodes}"
        )
    if not 0 <= root < num_nodes:
        raise ConfigurationError(f"root {root} out of range")
    trace = Trace(num_nodes)
    rounds = num_nodes.bit_length() - 1
    gap = 3 * flits
    for r in range(rounds):
        mask = 1 << r
        for rel in range(mask):
            src = rel ^ root
            dst = (rel | mask) ^ root
            if src != dst:
                trace.send(r * gap, src, dst, flits)
    return trace
