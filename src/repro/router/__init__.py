"""Routing-switch building blocks (paper §4, Fig. 4).

The modeled switch has, per bidirectional channel and direction, V virtual
channel *lanes* (input and output buffers), an internal crossbar binding
input lanes to output lanes for the duration of a packet (wormhole
switching), credit ("ack") counters that mirror the downstream input-lane
buffer space, and fair round-robin arbiters multiplexing lanes onto the
physical links.

Flits are never materialized as objects: wormhole allocation means a lane
holds flits of one packet at a time, so a lane is a handful of counters
(:class:`~repro.router.lane.InputLane`, :class:`~repro.router.lane.OutputLane`)
and flit movement is counter arithmetic.
"""

from .arbiter import RoundRobinArbiter, round_robin_pick
from .lane import EjectionLane, InputLane, LinkDirection, OutputLane

__all__ = [
    "RoundRobinArbiter",
    "round_robin_pick",
    "EjectionLane",
    "InputLane",
    "LinkDirection",
    "OutputLane",
]
