"""Virtual-channel lanes and link directions (paper §4, Fig. 4).

Wormhole switching allocates a virtual channel to one packet from header to
tail, so a lane never interleaves flits of different packets and can be
represented by counters instead of per-flit objects:

* an :class:`InputLane` tracks how many flits of its current packet it has
  ``received`` from the link and ``forwarded`` through the crossbar; the
  buffered amount is ``received - forwarded`` and is bounded by ``cap``;
* an :class:`OutputLane` tracks flits buffered after the crossbar and
  ``sent`` on the link, plus the credit counter of §4: initialized to the
  downstream input lane's buffer size, decremented per flit sent,
  incremented per acknowledgment (the downstream crossbar forwarding a
  flit).

A :class:`LinkDirection` groups the output lanes multiplexed on one
physical channel direction; the engine's link phase moves at most one flit
per direction per cycle, chosen by a round-robin arbiter among lanes that
have a flit and a credit.

One modeled simplification (see DESIGN.md): an output lane is allocatable
to a new packet only once its *downstream input lane* has fully drained the
previous packet, so the (output lane → input lane) pair always carries a
single packet.  With 4-flit buffers and 16/32-flit packets this removes an
overlap window of at most 4 flits per hop, identically for both networks.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..sim.packet import Packet


class InputLane:
    """Input buffer of one virtual channel at one switch port."""

    __slots__ = (
        "switch",
        "port",
        "vc",
        "cap",
        "packet",
        "received",
        "forwarded",
        "bound",
        "src_out",
        "last_arrival",
    )

    def __init__(self, switch: int, port: int, vc: int, cap: int):
        self.switch = switch
        self.port = port
        self.vc = vc
        self.cap = cap
        #: packet currently allocated to this lane (None = free)
        self.packet: Packet | None = None
        #: flits of the current packet received from the link so far
        self.received = 0
        #: flits forwarded through the crossbar so far
        self.forwarded = 0
        #: output lane this lane is bound to in the crossbar (None before
        #: the header is routed)
        self.bound: OutputLane | None = None
        #: upstream output lane feeding this lane (None for injection
        #: lanes, which are fed directly by the node)
        self.src_out: OutputLane | None = None
        #: cycle stamp of the most recent flit arrival, used to prevent a
        #: flit from crossing link and crossbar in the same cycle
        self.last_arrival = -1

    @property
    def buffered(self) -> int:
        return self.received - self.forwarded

    def has_space(self) -> bool:
        return self.buffered < self.cap

    def accept_flit(self, packet: Packet, cycle: int) -> bool:
        """Receive one flit from the link; returns True if it was the header."""
        if self.packet is None:
            if self.received or self.forwarded:
                raise SimulationError("free input lane with residual counters")
            self.packet = packet
            self.received = 1
            self.last_arrival = cycle
            return True
        if packet is not self.packet:
            raise SimulationError("flit of a different packet on an allocated lane")
        if self.buffered >= self.cap:
            raise SimulationError("input lane overflow (credit protocol violated)")
        self.received += 1
        self.last_arrival = cycle
        return False

    def release(self) -> None:
        """Free the lane after the tail flit has been forwarded."""
        if self.forwarded != (self.packet.size if self.packet else -1):
            raise SimulationError("releasing an input lane before the tail")
        self.packet = None
        self.received = 0
        self.forwarded = 0
        self.bound = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pid = self.packet.pid if self.packet else None
        return (
            f"InputLane(sw={self.switch}, port={self.port}, vc={self.vc}, "
            f"pkt={pid}, buf={self.buffered})"
        )


class OutputLane:
    """Output buffer of one virtual channel at one switch port."""

    __slots__ = (
        "switch",
        "port",
        "vc",
        "cap",
        "packet",
        "buffered",
        "sent",
        "credits",
        "sink",
        "direction",
    )

    def __init__(self, switch: int, port: int, vc: int, cap: int):
        self.switch = switch
        self.port = port
        self.vc = vc
        self.cap = cap
        #: packet owning this lane (None = unallocated)
        self.packet: Packet | None = None
        #: flits buffered, waiting for the link
        self.buffered = 0
        #: flits of the current packet already sent on the link
        self.sent = 0
        #: free buffer slots at the downstream input lane (§4 ack counter)
        self.credits = 0
        #: downstream input lane (or EjectionLane) across the link
        self.sink: InputLane | EjectionLane | None = None
        #: link direction this lane is multiplexed onto
        self.direction: LinkDirection | None = None

    def is_free(self) -> bool:
        """Allocatable to a new packet (see module docstring)."""
        if self.packet is not None:
            return False
        sink = self.sink
        return sink is None or sink.packet is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pid = self.packet.pid if self.packet else None
        return (
            f"OutputLane(sw={self.switch}, port={self.port}, vc={self.vc}, "
            f"pkt={pid}, buf={self.buffered}, cred={self.credits})"
        )


class EjectionLane:
    """Node-side sink of one virtual channel of the ejection channel.

    The node consumes arriving flits immediately (the physical bottleneck
    — one flit per cycle on the node link — is enforced by the link-phase
    arbiter), so the lane only tracks reassembly progress of the current
    packet.  Completion is reported to the engine via ``delivered``.
    """

    __slots__ = ("node", "packet", "received")

    def __init__(self, node: int):
        self.node = node
        self.packet: Packet | None = None
        self.received = 0

    def accept_flit(self, packet: Packet, cycle: int) -> bool:
        """Consume one flit; True when the tail arrives (packet complete)."""
        if self.packet is None:
            self.packet = packet
            self.received = 1
            packet.head_delivered = cycle
        else:
            if packet is not self.packet:
                raise SimulationError("interleaved packets at an ejection lane")
            self.received += 1
        if self.received == packet.size:
            if packet.head_delivered < 0:  # single-flit packets (tests)
                packet.head_delivered = cycle
            packet.delivered = cycle
            self.packet = None
            self.received = 0
            return True
        return False


class LinkDirection:
    """One direction of a physical channel: V output lanes, one flit/cycle.

    ``nbusy`` counts member lanes with buffered flits so the engine's link
    phase can skip idle directions with a single comparison; the engine
    maintains it on every buffered-count 0↔1 transition.
    """

    __slots__ = ("lanes", "rr", "nbusy", "to_node", "flits", "flits_at_warmup")

    def __init__(self, lanes: list[OutputLane], to_node: bool = False):
        self.lanes = lanes
        for lane in lanes:
            lane.direction = self
        #: round-robin pointer for the fair arbiter
        self.rr = 0
        #: number of lanes with buffered > 0
        self.nbusy = 0
        #: True for ejection channels (sinks are EjectionLanes)
        self.to_node = to_node
        #: flits transferred over this direction since cycle 0
        self.flits = 0
        #: snapshot of ``flits`` taken by the engine at the warm-up
        #: boundary, so utilization analyses can report measurement-window
        #: rates (``measured_flits``) instead of whole-run counts
        self.flits_at_warmup = 0

    @property
    def measured_flits(self) -> int:
        """Flits transferred during the measurement window only."""
        return self.flits - self.flits_at_warmup

    @property
    def switch(self) -> int:
        """Sending switch of this direction."""
        return self.lanes[0].switch

    @property
    def port(self) -> int:
        """Sending port of this direction."""
        return self.lanes[0].port
