"""Fair arbitration helpers (paper §4: "an arbiter picks one of them
according to a fair policy").

The engine inlines round-robin scans in its hot loops; these helpers give
the same policy a testable, reusable form and are used by the routing
algorithms and slow paths.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TypeVar

T = TypeVar("T")

#: arbitration policies selectable via ``SimulationConfig.arbiter``
ARBITER_POLICIES = ("round_robin", "age")


def round_robin_pick(
    items: Sequence[T], start: int, eligible: Callable[[T], bool]
) -> tuple[int, T | None]:
    """Pick the first eligible item scanning circularly from ``start``.

    Returns ``(next_start, item)`` where ``next_start`` is the position
    *after* the picked item (so consecutive calls rotate priority), or
    ``(start, None)`` when nothing is eligible.
    """
    n = len(items)
    if n == 0:
        return start, None
    start %= n
    for off in range(n):
        idx = (start + off) % n
        item = items[idx]
        if eligible(item):
            return (idx + 1) % n, item
    return start, None


class RoundRobinArbiter:
    """Stateful round-robin arbiter over a fixed population.

    Keeps the rotation pointer between grants so every requester is served
    within ``len(items)`` grants of becoming eligible (no starvation).
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"arbiter needs at least one input, got {size}")
        self.size = size
        self._next = 0

    def grant(self, requests: Sequence[bool]) -> int | None:
        """Index of the granted requester, or None if no requests.

        Args:
            requests: one flag per input; length must equal ``size``.
        """
        if len(requests) != self.size:
            raise ValueError(f"expected {self.size} request flags, got {len(requests)}")
        for off in range(self.size):
            idx = (self._next + off) % self.size
            if requests[idx]:
                self._next = (idx + 1) % self.size
                return idx
        return None


def oldest_pick(
    items: Sequence[T],
    eligible: Callable[[T], bool],
    age: Callable[[T], int],
) -> T | None:
    """Pick the eligible item with the smallest ``age`` key.

    Ties break on the lowest index so the scan is deterministic.  Unlike
    round-robin this needs no rotation state: priority follows the
    packets, not the ports.
    """
    best = None
    best_age = 0
    for item in items:
        if not eligible(item):
            continue
        key = age(item)
        if best is None or key < best_age:
            best = item
            best_age = key
    return best


class AgeArbiter:
    """Oldest-first arbiter over a fixed population.

    Grants the requesting input with the smallest age key (the packet's
    creation cycle in the engine), breaking ties on the lowest index.
    Age order is starvation-free under sustained overload: a waiting
    packet only grows older, so it can be bypassed at most by packets
    created earlier — a finite population — before it becomes the
    global minimum and wins.  This is the bounded-tail-latency
    alternative to :class:`RoundRobinArbiter` past saturation.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"arbiter needs at least one input, got {size}")
        self.size = size

    def grant(self, requests: Sequence[bool], ages: Sequence[int]) -> int | None:
        """Index of the oldest requester, or None if no requests.

        Args:
            requests: one flag per input; length must equal ``size``.
            ages: age key per input (smaller = older = higher priority);
                only inspected where the request flag is set.
        """
        if len(requests) != self.size or len(ages) != self.size:
            raise ValueError(
                f"expected {self.size} request/age entries, got "
                f"{len(requests)}/{len(ages)}"
            )
        best = None
        best_age = 0
        for idx in range(self.size):
            if requests[idx] and (best is None or ages[idx] < best_age):
                best = idx
                best_age = ages[idx]
        return best
