"""Routing algorithms (paper §2–§3).

Three algorithms cover the paper's five evaluated configurations:

* :class:`~repro.routing.tree_adaptive.TreeAdaptiveRouting` — minimal
  adaptive up*/down* routing on k-ary n-trees, run with 1, 2 and 4 virtual
  channels (the ascending phase picks the least-loaded up link);
* :class:`~repro.routing.dor.DimensionOrderRouting` — deterministic
  dimension-order routing on k-ary n-cubes with two virtual networks
  (Dally–Seitz wrap-around deadlock avoidance), 4 virtual channels;
* :class:`~repro.routing.duato.DuatoAdaptiveRouting` — minimal adaptive
  routing per Duato's methodology: two adaptive channels plus two escape
  channels per link, non-monotonic channel allocation.
"""

from .base import ROUTING_ALGORITHMS, RoutingAlgorithm, make_routing
from .dor import DimensionOrderRouting
from .duato import DuatoAdaptiveRouting
from .tree_adaptive import TreeAdaptiveRouting
from .tree_deterministic import TreeDeterministicRouting

__all__ = [
    "ROUTING_ALGORITHMS",
    "RoutingAlgorithm",
    "make_routing",
    "DimensionOrderRouting",
    "DuatoAdaptiveRouting",
    "TreeAdaptiveRouting",
    "TreeDeterministicRouting",
]
