"""Routing algorithm interface.

A routing algorithm is consulted by the engine's routing phase: given the
input lane whose head flit is an unrouted header, :meth:`select` must
return a *free* output lane on a minimal path to the packet's destination
(or the ejection channel when the packet has arrived), or ``None`` to
stall the header for this cycle.  The engine retries stalled headers every
cycle, so algorithms are stateless per attempt; adaptivity comes from
inspecting current lane occupancy.

Algorithms are bound to a live engine with :meth:`attach`, which hands
them direct references to the engine's lane arrays — ``select`` runs in
the hottest part of the simulation and must not go through indirection
layers.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..errors import ConfigurationError
from ..router.lane import InputLane, OutputLane
from ..sim.packet import Packet


class RoutingAlgorithm(ABC):
    """Per-hop output-lane selection policy."""

    #: registry identifier
    name: str = "abstract"
    #: network family the algorithm runs on: "tree" or "cube".  Consulted
    #: by SimulationConfig validation, so registering a subclass with this
    #: set makes the name usable in configs (and therefore in sweeps).
    network: str | None = None

    def __init__(self) -> None:
        self.engine = None
        self.rng = random.Random(0)

    def attach(self, engine) -> None:
        """Bind to a live engine (called once, before the first cycle).

        Stores the engine's output-lane table and a dedicated RNG stream
        for fair tie-breaking.  Subclasses extend this with precomputed
        per-switch tables.
        """
        self.engine = engine
        self.out = engine.out_lanes
        self.rng = random.Random(engine.config.seed ^ 0x9E3779B9)

    @abstractmethod
    def select(self, switch: int, inlane: InputLane, packet: Packet) -> OutputLane | None:
        """Return a free output lane for this header, or None to stall."""

    def candidates(
        self, switch: int, inlane: InputLane, packet: Packet
    ) -> list[OutputLane] | None:
        """Every output lane this header could legally take at ``switch``.

        A *read-only* companion to :meth:`select` for observability code
        (the wait-for graph sampler): it must enumerate the full
        candidate set without touching :attr:`rng` or any other mutable
        state, so sampling a live engine never perturbs the simulation.
        The base implementation returns ``None`` ("unknown"); callers
        must then over-approximate (e.g. treat every busy output lane at
        the switch as a potential wait target).  Concrete algorithms
        override this with their exact legal-lane sets.
        """
        return None

    # -- shared helpers --------------------------------------------------------

    def pick_free_lane(self, lanes: list[OutputLane]) -> OutputLane | None:
        """Fair choice among the free lanes of one port (uniform random)."""
        free = [lane for lane in lanes if lane.is_free()]
        if not free:
            return None
        if len(free) == 1:
            return free[0]
        return free[self.rng.randrange(len(free))]


#: name -> class registry, populated by the concrete modules' imports
ROUTING_ALGORITHMS: dict[str, type[RoutingAlgorithm]] = {}


def register(cls: type[RoutingAlgorithm]) -> type[RoutingAlgorithm]:
    """Class decorator adding an algorithm to the registry.

    Also announces the algorithm's network family to the config layer, so
    a registered name validates in :class:`~repro.sim.config.SimulationConfig`
    — this is how custom (including deliberately unsafe, for fault tests)
    algorithms become sweepable.
    """
    ROUTING_ALGORITHMS[cls.name] = cls
    if cls.network in ("tree", "cube"):
        from ..sim.config import register_algorithm_family

        register_algorithm_family(cls.name, cls.network)
    return cls


def make_routing(name: str, **kwargs) -> RoutingAlgorithm:
    """Instantiate a registered routing algorithm by name."""
    try:
        cls = ROUTING_ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ROUTING_ALGORITHMS))
        raise ConfigurationError(
            f"unknown routing algorithm {name!r}; known: {known}"
        ) from None
    return cls(**kwargs)
