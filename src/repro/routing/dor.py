"""Deterministic dimension-order routing on k-ary n-cubes (paper §3).

Packets correct one dimension at a time, in fixed order (dimension 0
first), always along a minimal direction (ties at exactly half the ring
take the positive direction, keeping the path unique).  The wrap-around
channels would close cyclic channel dependencies, so the classic
Dally–Seitz construction doubles the virtual channels into **two virtual
networks**: a packet uses the first virtual network until it crosses a
wrap-around connection (in the dimension it is currently correcting) and
the second afterwards.

We use the equivalent position-based formulation: the virtual network is
chosen from whether the *remaining* path in the current dimension still
crosses the wrap-around — "will cross" selects network 0, "will not"
network 1.  A minimal path crosses each wrap at most once, so this is
exactly "switch networks upon crossing", without per-packet state.  With
the paper's V = 4 each virtual network owns two virtual channels, giving
routing freedom F = 2 (the two channels of the current network on the
single allowed link).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..router.lane import InputLane, OutputLane
from ..sim.packet import Packet
from ..topology.cube import KAryNCube
from .base import RoutingAlgorithm, register


class _CubeRoutingBase(RoutingAlgorithm):
    """Shared cube helpers: coordinate math and the ejection channel."""

    network = "cube"

    def attach(self, engine) -> None:
        super().attach(engine)
        topo = engine.topology
        if not isinstance(topo, KAryNCube):
            raise ConfigurationError(f"{self.name} requires a KAryNCube topology")
        self.topo = topo
        self.k = topo.k
        self.n = topo.n
        self.eject_port = topo.ports_per_switch()
        self._weight = topo._weight

    def dor_hop(self, switch: int, dst: int) -> tuple[int, int, int] | None:
        """Deterministic next hop: ``(dim, direction, virtual_network)``.

        Returns None when ``switch == dst`` (time to eject).  The virtual
        network is 0 while the remaining path in ``dim`` crosses the
        wrap-around, 1 afterwards (see module docstring).
        """
        k = self.k
        for dim in range(self.n):
            w = self._weight[dim]
            a = (switch // w) % k
            b = (dst // w) % k
            if a == b:
                continue
            delta = (b - a) % k
            direction = 1 if delta * 2 <= k else -1
            if direction == 1:
                crosses = b < a
            else:
                crosses = b > a
            return dim, direction, 0 if crosses else 1
        return None

    def eject(self, switch: int) -> OutputLane | None:
        return self.pick_free_lane(self.out[switch][self.eject_port])


@register
class DimensionOrderRouting(_CubeRoutingBase):
    """Dally–Seitz deterministic routing, two virtual networks."""

    name = "dor"

    def attach(self, engine) -> None:
        super().attach(engine)
        if engine.config.vcs % 2:
            raise ConfigurationError("dor needs an even number of VCs")
        #: virtual channels per virtual network
        self.half = engine.config.vcs // 2

    def select(self, switch: int, inlane: InputLane, packet: Packet) -> OutputLane | None:
        hop = self.dor_hop(switch, packet.dst)
        if hop is None:
            return self.eject(switch)
        dim, direction, vn = hop
        port = self.topo.port_for(dim, direction)
        lanes = self.out[switch][port]
        base = vn * self.half
        return self.pick_free_lane(lanes[base : base + self.half])

    def candidates(self, switch: int, inlane: InputLane, packet: Packet) -> list[OutputLane]:
        hop = self.dor_hop(switch, packet.dst)
        if hop is None:
            return list(self.out[switch][self.eject_port])
        dim, direction, vn = hop
        lanes = self.out[switch][self.topo.port_for(dim, direction)]
        base = vn * self.half
        return list(lanes[base : base + self.half])
