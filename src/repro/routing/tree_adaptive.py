"""Minimal adaptive routing on k-ary n-trees (paper §2).

Every minimal path ascends to a nearest common ancestor of source and
destination, then descends.  The two phases are:

* **ascending (adaptive)** — while the current switch is *not* an ancestor
  of the destination, any of the k up ports is on a minimal path.  The
  paper's policy: "pick the less loaded link, that is the link that has
  the maximum number of free virtual channels (a fair choice is made when
  more links are in a similar state)".
* **descending (deterministic)** — once at an ancestor, exactly one down
  port leads towards the destination; only the virtual channel on that
  port is chosen (fairly, among the free ones).

Up*/down* routing induces no cyclic channel dependencies (every packet
makes all its up hops before any down hop, and levels strictly increase
then strictly decrease), so the algorithm is deadlock-free for any number
of virtual channels — which is why the paper can evaluate a 1-VC variant.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..router.lane import InputLane, OutputLane
from ..sim.packet import Packet
from ..topology.tree import KAryNTree
from .base import RoutingAlgorithm, register


@register
class TreeAdaptiveRouting(RoutingAlgorithm):
    """Adaptive ascend / deterministic descend with least-loaded up links."""

    name = "tree_adaptive"
    network = "tree"

    def attach(self, engine) -> None:
        super().attach(engine)
        topo = engine.topology
        if not isinstance(topo, KAryNTree):
            raise ConfigurationError("tree_adaptive requires a KAryNTree topology")
        self.topo = topo
        self.k = topo.k
        # Per-switch tables (indexed by switch id): subtree ranges for the
        # ancestor test and the digit weight k**level for the down port.
        self._lo = topo._range_lo
        self._hi = topo._range_hi
        self._weight = [self.k ** topo.level_of(s) for s in range(topo.num_switches)]
        self._up_ports = list(topo.up_ports())

    def select(self, switch: int, inlane: InputLane, packet: Packet) -> OutputLane | None:
        dst = packet.dst
        out_ports = self.out[switch]
        if self._lo[switch] <= dst < self._hi[switch]:
            # Descending phase: unique down port towards dst.  At a leaf
            # switch this is the ejection channel to the node itself.
            port = (dst // self._weight[switch]) % self.k
            return self.pick_free_lane(out_ports[port])
        # Ascending phase: least-loaded up link by free-VC count.
        best_count = 0
        best_ports: list[int] = []
        for port in self._up_ports:
            count = 0
            for lane in out_ports[port]:
                if lane.packet is None:
                    sink = lane.sink
                    if sink is None or sink.packet is None:
                        count += 1
            if count > best_count:
                best_count = count
                best_ports = [port]
            elif count and count == best_count:
                best_ports.append(port)
        if not best_ports:
            return None
        if len(best_ports) == 1:
            port = best_ports[0]
        else:
            port = best_ports[self.rng.randrange(len(best_ports))]
        return self.pick_free_lane(out_ports[port])

    def candidates(self, switch: int, inlane: InputLane, packet: Packet) -> list[OutputLane]:
        dst = packet.dst
        out_ports = self.out[switch]
        if self._lo[switch] <= dst < self._hi[switch]:
            return list(out_ports[(dst // self._weight[switch]) % self.k])
        # ascending: any up link is minimal, whatever the load ranking says
        return [lane for port in self._up_ports for lane in out_ports[port]]
