"""Deterministic (oblivious) routing on k-ary n-trees — a baseline.

The paper evaluates only the adaptive up*/down* algorithm; this module
adds the classic source-based deterministic baseline: during the
ascending phase at level ``l`` the packet *always* takes up port

    u_l = (src // k**l) mod k          — the source digit

so every source owns a dedicated ascent tree and each (src, dst) pair
uses exactly one path (source digits pick the NCA's butterfly identity).
The descending phase is the usual deterministic digit-steered descent.
Virtual channels on the chosen link are still picked fairly among the
free ones (pure VC choice does not change the path).

Source-based ascent is the strong oblivious choice: on subtree-preserving
permutations (complement and the §8.1 congestion-free class) the packets
entering any subtree come from one source subtree whose digits differ
pairwise, so they land on pairwise distinct switches at every level and
the pattern routes conflict-free even without adaptivity.  On uniform
traffic, however, ascents from unrelated sources converge and nothing
reroutes around the collision — the ablation benchmark
``benchmarks/test_ablation_tree_routing.py`` quantifies the adaptivity
gain over this baseline.

Up*/down* ordering makes this deadlock-free for any VC count, like the
adaptive variant.  Freedom for Chien's model is F = V (only the fixed
link's lanes are candidates), so this router would actually clock
*faster* than the adaptive one; the ablation accounts for that.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..router.lane import InputLane, OutputLane
from ..sim.packet import Packet
from ..topology.tree import KAryNTree
from .base import RoutingAlgorithm, register


@register
class TreeDeterministicRouting(RoutingAlgorithm):
    """Source-digit ascent, digit-steered descent."""

    name = "tree_deterministic"
    network = "tree"

    def attach(self, engine) -> None:
        super().attach(engine)
        topo = engine.topology
        if not isinstance(topo, KAryNTree):
            raise ConfigurationError("tree_deterministic requires a KAryNTree topology")
        self.topo = topo
        self.k = topo.k
        self._lo = topo._range_lo
        self._hi = topo._range_hi
        self._level = [topo.level_of(s) for s in range(topo.num_switches)]
        self._weight = [self.k**lvl for lvl in self._level]

    def select(self, switch: int, inlane: InputLane, packet: Packet) -> OutputLane | None:
        dst = packet.dst
        k = self.k
        if self._lo[switch] <= dst < self._hi[switch]:
            # descending: unique down port towards dst
            port = (dst // self._weight[switch]) % k
        else:
            # ascending: fixed up port from the source digit at this
            # level's weight — sources of one subtree fan out over
            # distinct switches at every level above
            port = k + (packet.src // self._weight[switch]) % k
        return self.pick_free_lane(self.out[switch][port])

    def candidates(self, switch: int, inlane: InputLane, packet: Packet) -> list[OutputLane]:
        dst = packet.dst
        if self._lo[switch] <= dst < self._hi[switch]:
            port = (dst // self._weight[switch]) % self.k
        else:
            port = self.k + (packet.src // self._weight[switch]) % self.k
        return list(self.out[switch][port])
