"""Minimal adaptive routing per Duato's methodology (paper §3).

Four virtual channels per link, split into:

* **adaptive channels** (the first ``V−2``; two for the paper's V=4) — a
  header may take any of them on *any* minimal direction: both productive
  dimensions, and both directions of a dimension when the offset is
  exactly half the ring.
* **escape (deterministic) channels** (the last two) — a connected,
  cycle-free subset: dimension-order routing with the Dally–Seitz
  two-virtual-network discipline (one escape channel per virtual network).
  A header falls back to the escape channel "when the adaptive choice is
  limited by network contention" — i.e. only when no adaptive candidate
  lane is free.

The channel allocation is **non monotonic**: routing is re-evaluated at
every switch, so a packet that took the escape channel at one hop competes
for adaptive channels again at the next — exactly the property the paper
highlights.  Duato's theorem gives deadlock freedom: the escape subnetwork
is deadlock-free by the Dally–Seitz argument and is reachable from every
adaptive channel at every hop.

Combined with the **source throttling** of §3 (a single injection channel
between processor and router, modeled by the engine for all algorithms),
this keeps throughput stable above saturation.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..router.lane import InputLane, OutputLane
from ..sim.packet import Packet
from .base import register
from .dor import _CubeRoutingBase


@register
class DuatoAdaptiveRouting(_CubeRoutingBase):
    """Minimal adaptive + escape channels (Duato 1993/1995)."""

    name = "duato"

    def attach(self, engine) -> None:
        super().attach(engine)
        vcs = engine.config.vcs
        if vcs < 3:
            raise ConfigurationError(
                f"duato needs >= 3 VCs (V-2 adaptive + 2 escape), got {vcs}"
            )
        #: number of adaptive channels per link direction
        self.n_adaptive = vcs - 2
        #: lane index of the escape channel of each virtual network
        self.escape_base = vcs - 2
        #: instrumentation: successful bindings by channel class
        self.adaptive_grants = 0
        self.escape_grants = 0

    def escape_fraction(self) -> float:
        """Share of routing decisions that fell back to escape channels.

        A direct measure of "the adaptive choice is limited by network
        contention": near 0 at light load, growing towards saturation.
        """
        total = self.adaptive_grants + self.escape_grants
        return self.escape_grants / total if total else 0.0

    def select(self, switch: int, inlane: InputLane, packet: Packet) -> OutputLane | None:
        dst = packet.dst
        if switch == dst:
            return self.eject(switch)
        out_ports = self.out[switch]
        k = self.k
        n_adaptive = self.n_adaptive
        # Least-loaded minimal link by free adaptive-lane count.
        best_count = 0
        best_lanes: list[OutputLane] | None = None
        n_best = 0
        for dim in range(self.n):
            w = self._weight[dim]
            a = (switch // w) % k
            b = (dst // w) % k
            if a == b:
                continue
            delta = (b - a) % k
            if delta * 2 < k:
                directions = (1,)
            elif delta * 2 == k:
                directions = (1, -1)
            else:
                directions = (-1,)
            for direction in directions:
                lanes = out_ports[self.topo.port_for(dim, direction)]
                count = 0
                for i in range(n_adaptive):
                    lane = lanes[i]
                    if lane.packet is None:
                        sink = lane.sink
                        if sink is None or sink.packet is None:
                            count += 1
                if count > best_count:
                    best_count = count
                    best_lanes = lanes
                    n_best = 1
                elif count and count == best_count:
                    # Reservoir-style fair choice among tied links.
                    n_best += 1
                    if self.rng.randrange(n_best) == 0:
                        best_lanes = lanes
        if best_lanes is not None:
            chosen = self.pick_free_lane(best_lanes[:n_adaptive])
            if chosen is not None:
                self.adaptive_grants += 1
                return chosen
        # Contention on all adaptive candidates: deterministic escape hop.
        dim, direction, vn = self.dor_hop(switch, dst)
        lane = out_ports[self.topo.port_for(dim, direction)][self.escape_base + vn]
        if lane.packet is None:
            sink = lane.sink
            if sink is None or sink.packet is None:
                self.escape_grants += 1
                return lane
        return None

    def candidates(self, switch: int, inlane: InputLane, packet: Packet) -> list[OutputLane]:
        dst = packet.dst
        if switch == dst:
            return list(self.out[switch][self.eject_port])
        out_ports = self.out[switch]
        k = self.k
        lanes: list[OutputLane] = []
        # adaptive channels of every minimal direction
        for dim in range(self.n):
            w = self._weight[dim]
            a = (switch // w) % k
            b = (dst // w) % k
            if a == b:
                continue
            delta = (b - a) % k
            if delta * 2 < k:
                directions = (1,)
            elif delta * 2 == k:
                directions = (1, -1)
            else:
                directions = (-1,)
            for direction in directions:
                lanes.extend(
                    out_ports[self.topo.port_for(dim, direction)][: self.n_adaptive]
                )
        # plus the escape channel of the DOR hop's virtual network
        dim, direction, vn = self.dor_hop(switch, dst)
        lanes.append(
            out_ports[self.topo.port_for(dim, direction)][self.escape_base + vn]
        )
        return lanes
