#!/usr/bin/env python3
"""Plugging a custom traffic pattern into the simulator.

Defines a new pattern — a block-cyclic "matrix redistribution" typical of
parallel linear algebra (each node sends to the owner of its block under
a different data layout) — registers it, and measures both networks'
response.  Demonstrates the public extension point used by all built-in
patterns.

Run:  python examples/custom_pattern.py
"""

import random

from repro.sim.run import cube_config, simulate, tree_config
from repro.traffic.patterns import PATTERNS, PermutationPattern


class BlockCyclicPattern(PermutationPattern):
    """Redistribution from block to cyclic layout over `workers` owners.

    Element i lives at node ``i // block`` under the block layout and at
    node ``i % workers`` under the cyclic layout; each node sends its
    block boundary element to the new owner.  With workers = sqrt(N) this
    produces a structured many-to-few-to-many permutation-like pattern
    with heavy overlap on a node subset — a classic redistribution storm.
    """

    name = "block_cyclic"

    def __init__(self, num_nodes: int, workers: int | None = None):
        super().__init__(num_nodes)
        self.workers = workers or max(2, int(num_nodes**0.5))

    def permute(self, source: int) -> int:
        return (source * self.workers) % self.num_nodes or source


def main() -> None:
    # registering makes the pattern available to configs and the sweep
    # machinery by name
    PATTERNS[BlockCyclicPattern.name] = BlockCyclicPattern
    windows = dict(warmup_cycles=250, total_cycles=1450, seed=7)

    print("Block-cyclic redistribution on both 256-node networks:\n")
    for load in (0.2, 0.4, 0.6):
        tree = simulate(tree_config(vcs=4, pattern="block_cyclic", load=load, **windows))
        cube = simulate(
            cube_config(algorithm="duato", pattern="block_cyclic", load=load, **windows)
        )
        print(
            f"  load {load:.1f}: tree accepted {tree.accepted_fraction:.3f}"
            f" ({tree.avg_latency_cycles:.0f} cyc) | "
            f"cube accepted {cube.accepted_fraction:.3f}"
            f" ({cube.avg_latency_cycles:.0f} cyc)"
        )

    # sanity: the destination map really is what we think it is
    pattern = BlockCyclicPattern(256)
    rng = random.Random(0)
    sample = [(s, pattern.destination(s, rng)) for s in (1, 2, 17)]
    print(f"\nsample mappings (workers={pattern.workers}): {sample}")


if __name__ == "__main__":
    main()
