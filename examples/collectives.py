#!/usr/bin/env python3
"""Parallel-algorithm communication phases on both networks.

The paper's benchmarks are synthetic; this example plays the *algorithm
shaped* counterparts — all-to-all personalized exchange (sample sort,
FFT transposition), a butterfly barrier, and a binomial broadcast —
through the same flit-level engine via the trace-driven workload layer,
on smaller 64-node instances of both network families.

Run:  python examples/collectives.py
"""

from repro.sim.run import cube_config, tree_config
from repro.workloads import (
    alltoall_trace,
    broadcast_trace,
    butterfly_barrier_trace,
    run_trace,
)

# 64-node siblings of the paper networks keep the example under a minute
TREE = tree_config(k=4, n=3, vcs=4)  # 64-node quaternary fat-tree
CUBE = cube_config(k=8, n=2, algorithm="duato")  # 64-node 2-D torus
N = 64


def show(name, trace_tree, trace_cube):
    tree = run_trace(TREE, trace_tree)
    cube = run_trace(CUBE, trace_cube)
    print(f"{name}:")
    print(
        f"  tree: {tree.makespan_cycles:>6} cycles makespan, "
        f"{tree.aggregate_flits_per_cycle:6.1f} flits/cycle, "
        f"avg msg latency {tree.avg_latency_cycles:6.1f}"
    )
    print(
        f"  cube: {cube.makespan_cycles:>6} cycles makespan, "
        f"{cube.aggregate_flits_per_cycle:6.1f} flits/cycle, "
        f"avg msg latency {cube.avg_latency_cycles:6.1f}\n"
    )


def main() -> None:
    print(f"Collective phases on 64-node networks ({N * (N - 1)} messages for all-to-all)\n")
    # message sizes follow the paper's normalization: 64-byte packets are
    # 32 flits on the tree, 16 on the cube
    show(
        "all-to-all (shifted schedule)",
        alltoall_trace(N, flits=32, schedule="shifted"),
        alltoall_trace(N, flits=16, schedule="shifted"),
    )
    show(
        "all-to-all (naive destination order)",
        alltoall_trace(N, flits=32, schedule="naive"),
        alltoall_trace(N, flits=16, schedule="naive"),
    )
    show(
        "butterfly barrier (6 rounds)",
        butterfly_barrier_trace(N, flits=32),
        butterfly_barrier_trace(N, flits=16),
    )
    show(
        "binomial broadcast",
        broadcast_trace(N, flits=32),
        broadcast_trace(N, flits=16),
    )
    print("Note how the schedule matters as much as the topology: the")
    print("shifted all-to-all turns each round into a permutation and")
    print("drains markedly faster than the naive destination order.")


if __name__ == "__main__":
    main()
