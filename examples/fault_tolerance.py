#!/usr/bin/env python3
"""Fat-tree graceful degradation under channel faults.

Injects growing numbers of failed ascending channels into the paper's
4-ary 4-tree and measures uniform-traffic throughput with the adaptive
algorithm — the CM-5-style operational argument for fat-trees.  Also
shows the contrast: the deterministic source-digit baseline strands the
traffic of any node whose fixed ascent dies.

Run:  python examples/fault_tolerance.py
"""

from repro.errors import DeadlockError
from repro.faults import inject_tree_uplink_faults, random_uplink_faults
from repro.sim.run import build_engine, tree_config

WINDOWS = dict(warmup_cycles=250, total_cycles=1450, seed=59)


def main() -> None:
    print("Adaptive routing under ascending-channel faults (4-ary 4-tree, 768 channels):\n")
    print("  failed  accepted (frac. of capacity)  latency (cycles)")
    for count in (0, 19, 38, 77, 154):
        eng = build_engine(tree_config(vcs=4, load=1.0, **WINDOWS))
        inject_tree_uplink_faults(eng, random_uplink_faults(eng.topology, count, seed=5))
        res = eng.run()
        pct = 100 * count / 768
        print(
            f"  {count:>4} ({pct:4.1f}%)   {res.accepted_fraction:20.3f}"
            f"   {res.avg_latency_cycles:12.1f}"
        )

    print("\nSame fault, oblivious baseline, only node 0 sending:")
    eng = build_engine(
        tree_config(
            vcs=4, algorithm="tree_deterministic", load=0.0,
            warmup_cycles=0, total_cycles=4000, watchdog_cycles=800,
        )
    )
    inject_tree_uplink_faults(eng, [(0, 4)])  # node 0's fixed ascent channel
    eng.preload_packet(0, 255)
    try:
        eng.run()
        print("  unexpectedly delivered!")
    except DeadlockError:
        print("  packet stranded forever -> watchdog raised DeadlockError, as expected.")
    print("\nAdaptivity masks ascent faults for free; oblivious routing needs")
    print("rerouting tables or spares.")


if __name__ == "__main__":
    main()
