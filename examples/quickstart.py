#!/usr/bin/env python3
"""Quickstart — simulate both paper networks at one offered load.

Builds the paper's two 256-node networks (4-ary 4-tree and 16-ary
2-cube), runs each at 50% of its normalized capacity under uniform
traffic, and prints the §6 metrics.  Runtime: a few seconds.

Run:  python examples/quickstart.py
"""

from repro import cube_config, simulate, tree_config

# Short windows keep the example snappy; drop the overrides (paper
# defaults: warm-up 2000, halt at 20000) for publication-grade numbers.
WINDOWS = dict(warmup_cycles=250, total_cycles=1450)


def main() -> None:
    print("Simulating the paper's two 256-node networks at 50% load...\n")

    tree = simulate(tree_config(vcs=4, pattern="uniform", load=0.5, **WINDOWS))
    print("4-ary 4-tree, adaptive routing, 4 virtual channels:")
    print(f"  offered  bandwidth: {tree.offered_fraction:.3f} of capacity")
    print(f"  accepted bandwidth: {tree.accepted_fraction:.3f} of capacity")
    print(f"  network latency:    {tree.avg_latency_cycles:.1f} cycles")
    print(f"  delivered packets:  {tree.delivered_packets}\n")

    cube = simulate(cube_config(algorithm="duato", pattern="uniform", load=0.5, **WINDOWS))
    print("16-ary 2-cube, Duato minimal adaptive routing:")
    print(f"  offered  bandwidth: {cube.offered_fraction:.3f} of capacity")
    print(f"  accepted bandwidth: {cube.accepted_fraction:.3f} of capacity")
    print(f"  network latency:    {cube.avg_latency_cycles:.1f} cycles")
    print(f"  delivered packets:  {cube.delivered_packets}\n")

    # The §5 normalization makes "fraction of capacity" directly
    # comparable: both networks offer the same peak bandwidth.
    print("Below saturation offered == accepted (§6); compare latencies in")
    print("absolute time by scaling with each configuration's clock —")
    print("see examples/compare_networks.py.")


if __name__ == "__main__":
    main()
