#!/usr/bin/env python3
"""Finding a network's saturation point (paper §6 methodology).

Sweeps the offered load on one configuration, prints the CNF columns
(offered, accepted, latency) and estimates the saturation point — "the
minimum offered bandwidth where the accepted bandwidth is lower than the
global packet creation rate".  Also demonstrates post-saturation
stability, the property source throttling buys (§3).

Run:  python examples/saturation_study.py [tree|cube]
"""

import sys

from repro.experiments.report import render_table
from repro.experiments.sweep import run_sweep
from repro.metrics.saturation import (
    post_saturation_stability,
    saturation_point,
    sustained_rate,
)
from repro.sim.run import cube_config, tree_config

WINDOWS = dict(warmup_cycles=250, total_cycles=1450, seed=29)
LOADS = [0.1, 0.3, 0.5, 0.65, 0.8, 1.0]


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "cube"
    if network == "tree":
        factory = lambda load: tree_config(vcs=4, load=load, **WINDOWS)  # noqa: E731
        title = "4-ary 4-tree, adaptive routing, 4 VCs, uniform traffic"
    else:
        factory = lambda load: cube_config(algorithm="duato", load=load, **WINDOWS)  # noqa: E731
        title = "16-ary 2-cube, Duato adaptive routing, uniform traffic"

    print(f"Sweeping offered load: {title}\n")
    series = run_sweep(factory, LOADS, label=network)

    rows = [
        [p.offered, p.offered_measured, p.accepted, p.latency_cycles]
        for p in series.points
    ]
    print(render_table(["offered", "measured", "accepted", "latency (cyc)"], rows))
    print()
    print(f"saturation point:        {saturation_point(series):.3f} of capacity")
    print(f"sustained rate beyond:   {sustained_rate(series):.3f} of capacity")
    print(f"post-saturation spread:  {post_saturation_stability(series):.1%}")
    print()
    print("Note how accepted == offered below saturation and stays flat above")
    print("it — the stability §6 attributes to source throttling.")


if __name__ == "__main__":
    main()
