#!/usr/bin/env python3
"""The paper's headline experiment in miniature (§10, Figure 7).

Runs all five routing configurations — cube deterministic, cube Duato,
and the fat-tree with 1/2/4 virtual channels — under a chosen traffic
pattern, then converts to absolute units (bits/ns, ns) with each
configuration's own clock period from Chien's cost model.

Run:  python examples/compare_networks.py [uniform|complement|transpose|bitrev]

Expected shapes (paper §10): the cube wins uniform traffic; the tree wins
complement; transpose/bitrev split the configurations into a fast class
{cube Duato, tree 2vc, tree 4vc} and a slow class {cube deterministic,
tree 1vc}.  Runtime: about a minute with the default profile.
"""

import sys

from repro.experiments.fig7 import fig7_experiment
from repro.experiments.report import render_comparison
from repro.profiles import Profile

# an example-sized profile: 5 loads, short windows
PROFILE = Profile(name="example", warmup_cycles=200, total_cycles=1200, sweep_points=5)


def main() -> None:
    pattern = sys.argv[1] if len(sys.argv) > 1 else "uniform"
    print(f"Running the five-configuration comparison on {pattern!r} traffic...")
    print("(one 256-node flit-level simulation per configuration per load)\n")
    result = fig7_experiment(pattern, PROFILE)
    print(render_comparison(result))
    print()
    winner = max(result.saturation_summary().items(), key=lambda kv: kv[1])
    print(f"highest saturation throughput: {winner[0]} at {winner[1]:.0f} bits/ns")


if __name__ == "__main__":
    main()
