#!/usr/bin/env python3
"""Congestion-free permutations on fat-trees (paper §8.1).

The complement pattern saturates a k-ary n-tree near capacity with even a
single virtual channel because it is *subtree preserving*: at every level
each subtree maps into exactly one other subtree, so descending packets
never compete for a down channel.  This example:

1. classifies the paper's four patterns with
   ``KAryNTree.is_congestion_free``;
2. simulates a congestion-free and a congesting permutation with 1 VC and
   shows the throughput gap the classification predicts.

Run:  python examples/congestion_free.py
"""

from repro.sim.run import simulate, tree_config
from repro.topology.tree import KAryNTree
from repro.traffic.address import bit_complement, bit_reverse, bit_transpose

WINDOWS = dict(warmup_cycles=250, total_cycles=1450, seed=31)


def main() -> None:
    topo = KAryNTree(4, 4)
    nbits = 8
    perms = {
        "complement": [bit_complement(s, nbits) for s in range(256)],
        "bitrev": [bit_reverse(s, nbits) for s in range(256)],
        "transpose": [bit_transpose(s, nbits) for s in range(256)],
        "identity": list(range(256)),
    }
    print("Subtree-preservation classification on the 4-ary 4-tree:")
    for name, perm in perms.items():
        print(f"  {name:<11}: congestion-free = {topo.is_congestion_free(perm)}")

    print("\nSimulated with ONE virtual channel at 80% offered load:")
    for pattern in ("complement", "bitrev"):
        res = simulate(tree_config(vcs=1, pattern=pattern, load=0.8, **WINDOWS))
        print(
            f"  {pattern:<11}: accepted {res.accepted_fraction:.3f} of capacity, "
            f"latency {res.avg_latency_cycles:.0f} cycles"
        )
    print("\nThe congestion-free pattern runs ~2-3x faster with the same")
    print("hardware — the §8.1 argument for mapping regular communication")
    print("onto subtree-preserving permutations.")


if __name__ == "__main__":
    main()
