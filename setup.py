"""Legacy setup shim.

This environment has no `wheel` package and no network access, so PEP 660
editable installs (pip install -e .) cannot build; `python setup.py develop`
still works and is what the Makefile-style instructions fall back to.
All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
