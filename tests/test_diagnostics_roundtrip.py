"""Deadlock diagnostics across process boundaries, and tracing a wedge.

A parallel sweep ships worker exceptions back through pickling, so
:class:`DeadlockError` and its :class:`DeadlockSnapshot` payload must
survive a pickle round-trip intact.  And the observability probes must
keep working when a run *fails*: a forced deadlock still finalizes the
trace, so the stuck worms are inspectable after the fact.

The forced deadlock reuses the deliberately unsafe ring routing
registered by ``test_sweep_resilient`` (all-clockwise ring, no lane
discipline: a textbook cyclic channel dependency).
"""

import pickle

import pytest

from repro.errors import DeadlockError
from repro.obs import TraceProbe, WindowedCounterProbe
from repro.sim.diagnostics import BlockedPacket, DeadlockSnapshot
from repro.sim.run import build_engine, simulate

from .test_sweep_resilient import ring_config


def force_deadlock(probe=None):
    """Run the wedging ring config to its watchdog; return the error."""
    cfg = ring_config(load=0.8)
    with pytest.raises(DeadlockError) as excinfo:
        simulate(cfg, probe=probe)
    return excinfo.value


class TestSnapshotPickleRoundTrip:
    def test_snapshot_survives_pickling(self):
        err = force_deadlock()
        snap = err.snapshot
        assert isinstance(snap, DeadlockSnapshot)
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        assert clone.describe() == snap.describe()

    def test_error_carries_snapshot_through_pickle(self):
        # parallel sweep workers return exceptions by pickling: the
        # snapshot must still be attached and readable on the far side
        err = force_deadlock()
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, DeadlockError)
        assert str(clone) == str(err)
        assert clone.snapshot == err.snapshot
        assert clone.snapshot.in_flight > 0

    def test_snapshot_contents_describe_the_wedge(self):
        snap = force_deadlock().snapshot
        assert snap.cycle > snap.last_progress_cycle
        assert snap.held_lanes > 0
        assert snap.blocked  # at least one observed stuck worm
        for b in snap.blocked:
            assert isinstance(b, BlockedPacket)
            assert b.received >= b.forwarded
        # every reported packet is a real in-flight one
        assert len({b.pid for b in snap.blocked}) <= snap.in_flight

    def test_hand_built_snapshot_round_trips(self):
        snap = DeadlockSnapshot(
            cycle=500,
            last_progress_cycle=180,
            in_flight=3,
            blocked=(
                BlockedPacket(
                    pid=7, src=0, dst=4, size=32, switch=2, port=1, vc=0,
                    received=5, forwarded=2, routed=True,
                ),
            ),
            truncated=True,
            held_lanes=6,
            pending_headers=1,
            faulted_lanes=0,
        )
        assert pickle.loads(pickle.dumps(snap)) == snap


class TestTracingAForcedDeadlock:
    def test_trace_finalizes_despite_the_deadlock(self):
        probe = TraceProbe()
        err = force_deadlock(probe)
        kinds = {e.kind for e in probe.events}
        # traffic flowed before the wedge ...
        assert {"inject", "route", "tail"} <= kinds
        # ... and the stall itself is visible as blocked intervals
        assert "blocked" in kinds
        # on_run_end ran even though run() raised: every open blocked
        # interval was closed with a duration
        blocked = [e for e in probe.events if e.kind == "blocked"]
        assert all(e.dur >= 1 for e in blocked)
        # the wedge shows up as intervals still open at watchdog time
        watchdog_open = [
            e for e in blocked if e.cycle + e.dur >= err.snapshot.cycle
        ]
        assert watchdog_open

    def test_stuck_packets_render_as_open_chrome_slices(self):
        probe = TraceProbe()
        err = force_deadlock(probe)
        doc = probe.chrome_trace_dict()
        open_slices = [
            e
            for e in doc["traceEvents"]
            if e.get("ph") == "X" and e.get("args", {}).get("delivered") is False
        ]
        stuck_pids = {b.pid for b in err.snapshot.blocked}
        rendered_pids = {e["args"]["packet"] for e in open_slices}
        assert stuck_pids & rendered_pids

    def test_counters_flush_despite_the_deadlock(self):
        probe = WindowedCounterProbe(window_cycles=100)
        force_deadlock(probe)
        assert probe.windows
        # once wedged, whole windows are pure blocking: the most blocked
        # direction accumulated a large share of its cycles
        (_, top) = probe.most_blocked(1)[0]
        assert top["blocked_cycles"] > top["cycles"] // 4
