"""Tests for time-varying faults (repro.faults.schedule) and engine hooks."""

import pytest

from repro.errors import ConfigurationError, DeadlockError
from repro.faults import CubeLinkFault, FaultSchedule, ScheduledFault, TreeUplinkFault
from repro.sim.packet import FAULT_SENTINEL, Packet
from repro.sim.run import build_engine, cube_config, tree_config


def make_tree(**overrides):
    defaults = dict(
        k=4, n=2, vcs=2, load=0.3, seed=9, warmup_cycles=100, total_cycles=1100
    )
    defaults.update(overrides)
    return build_engine(tree_config(**defaults))


def make_cube(**overrides):
    defaults = dict(
        k=4, n=2, vcs=4, load=0.3, seed=9, warmup_cycles=100, total_cycles=1100
    )
    defaults.update(overrides)
    return build_engine(cube_config(**defaults))


class TestCycleHooks:
    def test_hook_fires_at_cycle(self):
        eng = make_tree(load=0.0, total_cycles=400)
        fired = []
        eng.add_cycle_hook(7, lambda e: fired.append(e.cycle))
        eng.run()
        assert fired == [7]

    def test_hooks_fire_in_insertion_order(self):
        eng = make_tree(load=0.0, total_cycles=400)
        fired = []
        eng.add_cycle_hook(5, lambda e: fired.append("a"))
        eng.add_cycle_hook(3, lambda e: fired.append("b"))
        eng.add_cycle_hook(5, lambda e: fired.append("c"))
        eng.run()
        assert fired == ["b", "a", "c"]

    def test_hook_added_during_hook_same_cycle_fires(self):
        eng = make_tree(load=0.0, total_cycles=400)
        fired = []
        eng.add_cycle_hook(4, lambda e: e.add_cycle_hook(4, lambda e2: fired.append("x")))
        eng.run()
        assert fired == ["x"]

    def test_rejects_past_cycle(self):
        eng = make_tree(load=0.0, total_cycles=400)
        eng.run()
        with pytest.raises(ConfigurationError, match="already at"):
            eng.add_cycle_hook(0, lambda e: None)


class TestScheduledFaultValidation:
    def test_rejects_negative_fail_cycle(self):
        with pytest.raises(ConfigurationError, match="fail_at"):
            ScheduledFault(TreeUplinkFault(0, 4), fail_at=-1)

    def test_rejects_repair_before_failure(self):
        with pytest.raises(ConfigurationError, match="repair_at"):
            ScheduledFault(TreeUplinkFault(0, 4), fail_at=10, repair_at=10)

    def test_add_rejects_bare_tuples(self):
        with pytest.raises(ConfigurationError, match="spec"):
            FaultSchedule().add((0, 4), fail_at=10)

    def test_install_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="empty"):
            FaultSchedule().install(make_tree())

    def test_install_rejects_double_install(self):
        schedule = FaultSchedule().add(TreeUplinkFault(0, 4), fail_at=10)
        schedule.install(make_tree())
        with pytest.raises(ConfigurationError, match="already installed"):
            schedule.install(make_tree())

    def test_install_rejects_mixed_networks(self):
        schedule = (
            FaultSchedule()
            .add(TreeUplinkFault(0, 4), fail_at=10)
            .add(CubeLinkFault(0, 0), fail_at=10)
        )
        with pytest.raises(ConfigurationError, match="one network"):
            schedule.install(make_tree())

    def test_install_validates_fault_set(self):
        # all four ascent channels of switch 0: rejected even though the
        # windows might never overlap in practice (conservative union)
        schedule = FaultSchedule()
        for port in (4, 5, 6, 7):
            schedule.add(TreeUplinkFault(0, port), fail_at=10 * port)
        with pytest.raises(ConfigurationError, match="live ascent"):
            schedule.install(make_tree())

    def test_install_rejects_unsafe_full_channel(self):
        schedule = FaultSchedule().add(CubeLinkFault(0, 0, full_channel=True), fail_at=10)
        with pytest.raises(ConfigurationError, match="escape subnetwork"):
            schedule.install(make_cube())


class TestStrikeAndRepair:
    def test_free_lanes_seized_at_fail_cycle(self):
        eng = make_tree(load=0.0, total_cycles=400)
        FaultSchedule().add(TreeUplinkFault(0, 4), fail_at=50).install(eng)
        states = {}
        eng.add_cycle_hook(49, lambda e: states.update(before=[l.packet for l in e.out_lanes[0][4]]))
        eng.add_cycle_hook(51, lambda e: states.update(after=[l.packet for l in e.out_lanes[0][4]]))
        eng.run()
        assert all(p is None for p in states["before"])
        assert all(p is FAULT_SENTINEL for p in states["after"])

    def test_repair_lifts_sentinels(self):
        eng = make_tree(load=0.0, total_cycles=400)
        FaultSchedule().add(TreeUplinkFault(0, 4), fail_at=50, repair_at=80).install(eng)
        states = {}
        eng.add_cycle_hook(81, lambda e: states.update(after=[l.packet for l in e.out_lanes[0][4]]))
        eng.run()
        assert all(p is None for p in states["after"])

    def test_busy_lane_seized_only_after_drain(self):
        # drive _ActiveFault's deferred-seizure path directly: a lane
        # carrying a worm at strike time must not be clobbered
        eng = make_tree(load=0.0, total_cycles=400)
        schedule = FaultSchedule().add(TreeUplinkFault(0, 4), fail_at=50)
        schedule.install(eng)
        worm = Packet(pid=1, src=0, dst=5, size=4, created=0)
        lanes = eng.out_lanes[0][4]
        lanes[0].packet = worm
        active = eng._cycle_hooks[50][0].__self__
        active.strike(eng)
        assert lanes[0].packet is worm  # occupied: left alone
        assert all(lane.packet is FAULT_SENTINEL for lane in lanes[1:])
        lanes[0].packet = None  # tail drains
        active.strike(eng)
        assert lanes[0].packet is FAULT_SENTINEL

    def test_repair_cancels_pending_seizure(self):
        eng = make_tree(load=0.0, total_cycles=400)
        schedule = FaultSchedule().add(TreeUplinkFault(0, 4), fail_at=50)
        schedule.install(eng)
        worm = Packet(pid=1, src=0, dst=5, size=4, created=0)
        lanes = eng.out_lanes[0][4]
        lanes[0].packet = worm
        active = eng._cycle_hooks[50][0].__self__
        active.strike(eng)
        active.repair(eng)
        lanes[0].packet = None
        active.strike(eng)  # a late re-armed strike must be a no-op
        assert all(lane.packet is None for lane in lanes)

    def test_midrun_strike_under_load_seizes_eventually(self):
        eng = make_tree(load=0.8, total_cycles=1100)
        FaultSchedule().add(TreeUplinkFault(0, 4), fail_at=200).install(eng)
        res = eng.run()
        eng.audit()
        # every lane drained its last pre-fault worm and was then seized
        assert all(lane.packet is FAULT_SENTINEL for lane in eng.out_lanes[0][4])
        assert res.delivered_packets > 0


class TestRideThrough:
    def test_transient_unsafe_fault_survived_when_repaired(self):
        # the full-channel fault would deadlock DOR permanently, but the
        # repair lands before the watchdog gives up: the wedged packet
        # rides the window out and delivers
        eng = make_cube(
            algorithm="dor", load=0.0, total_cycles=4000, watchdog_cycles=1000
        )
        schedule = FaultSchedule().add(
            CubeLinkFault(0, 0, full_channel=True), fail_at=0, repair_at=300
        )
        schedule.install(eng, validate=False)
        eng.preload_packet(0, eng.topology.neighbor(0, 0, 1))
        eng.run()
        assert eng.delivered_packets_total == 1

    def test_same_fault_without_repair_deadlocks(self):
        eng = make_cube(
            algorithm="dor", load=0.0, total_cycles=4000, watchdog_cycles=600
        )
        schedule = FaultSchedule().add(CubeLinkFault(0, 0, full_channel=True), fail_at=0)
        schedule.install(eng, validate=False)
        eng.preload_packet(0, eng.topology.neighbor(0, 0, 1))
        with pytest.raises(DeadlockError):
            eng.run()

    def test_scheduled_cube_run_stays_audit_clean(self):
        eng = make_cube(load=0.5)
        schedule = FaultSchedule()
        schedule.add(CubeLinkFault(1, 0, 1), fail_at=150, repair_at=600)
        schedule.add(CubeLinkFault(2, 1, -1), fail_at=300)
        schedule.install(eng)
        res = eng.run()
        eng.audit()
        assert res.delivered_packets > 0
