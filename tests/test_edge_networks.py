"""Edge-case network shapes end-to-end through the engine."""

import pytest

from repro.sim.run import build_engine, cube_config, simulate, tree_config


class TestDegenerateShapes:
    def test_single_level_tree(self):
        # 4-ary 1-tree: one switch, four nodes, descent-only routing
        res = simulate(
            tree_config(k=4, n=1, vcs=2, load=0.5, warmup_cycles=100, total_cycles=1100, seed=3)
        )
        assert res.delivered_packets > 20
        assert res.accepted_fraction == pytest.approx(res.offered_fraction, rel=0.1)

    def test_two_node_ring(self):
        res = simulate(
            cube_config(
                k=2, n=1, algorithm="dor", load=0.3,
                warmup_cycles=100, total_cycles=1100, seed=3,
            )
        )
        assert res.delivered_packets > 10

    def test_hypercube_q4_duato(self):
        eng = build_engine(
            cube_config(
                k=2, n=4, algorithm="duato", load=0.6,
                warmup_cycles=100, total_cycles=1500, seed=3,
            )
        )
        res = eng.run()
        eng.audit()
        assert res.delivered_packets > 100

    def test_hypercube_q4_dor(self):
        eng = build_engine(
            cube_config(
                k=2, n=4, algorithm="dor", load=0.6,
                warmup_cycles=100, total_cycles=1500, seed=3,
            )
        )
        res = eng.run()
        eng.audit()
        assert res.delivered_packets > 100

    def test_tall_binary_tree(self):
        eng = build_engine(
            tree_config(k=2, n=4, vcs=1, load=0.4, warmup_cycles=100, total_cycles=1500, seed=3)
        )
        res = eng.run()
        eng.audit()
        assert res.delivered_packets > 50

    def test_odd_radix_cube_uniform(self):
        # odd k: no bisection formula, but direct simulation must work
        # (capacity supplied explicitly)
        from repro.sim.config import SimulationConfig

        cfg = SimulationConfig(
            network="cube", k=3, n=2, algorithm="duato", vcs=4,
            packet_flits=16, capacity_flits_per_cycle=0.5, load=0.4,
            warmup_cycles=100, total_cycles=1100, seed=3,
        )
        from repro.sim.run import simulate as sim

        res = sim(cfg)
        assert res.delivered_packets > 10

    def test_minimum_packet(self):
        # two flits: header and tail only
        res = simulate(
            cube_config(
                k=4, n=2, algorithm="dor", load=0.3, packet_flits=2,
                warmup_cycles=100, total_cycles=1100, seed=3,
            )
        )
        assert res.delivered_packets > 50

    def test_single_flit_buffers(self):
        eng = build_engine(
            tree_config(
                k=2, n=2, vcs=2, load=0.5, buffer_flits=1,
                warmup_cycles=100, total_cycles=1600, seed=3,
            )
        )
        res = eng.run()
        eng.audit()
        assert res.delivered_packets > 10


class TestCliDimensions:
    def test_dimensions_command(self, capsys):
        from repro.cli import main

        assert main(["dimensions", "--profile", "fast"]) == 0
        out = capsys.readouterr().out
        assert "16-ary 2-cube" in out
        assert "2-ary 8-cube" in out