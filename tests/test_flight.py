"""Flight recorder: the bounded cross-layer timeline (PR 7).

Unit coverage for :mod:`repro.obs.flight` — document shape, the
O(max_intervals) cardinality bound under decimation, live sampling
hooks, the JSONL event stream, annotations — plus the slow-marked
acceptance regression: on the reference overload campaign the recorder
stamps collapse onset for the open loop but *not* the closed loop, the
closed loop's first window decrease lands within one interval of the
first ECN mark, and the serialized timeline is byte-identical across
reruns.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.experiments.congestion import (
    DEFAULT_CONTROL,
    OverloadSpec,
    run_overload_point,
)
from repro.obs.flight import (
    FlightConfig,
    FlightRecorder,
    describe_flight,
    simulate_with_flight,
)
from repro.obs.heatmap import flight_timeline_svg
from repro.sim.run import simulate, tree_config
from repro.traffic.transport import TransportConfig, simulate_reliable

from .conftest import small_tree_config

# engine-layer columns every document carries
ENGINE_KEYS = (
    "cycle", "span", "generated", "injected", "delivered", "dropped",
    "offered", "backlog", "in_flight", "occupancy", "blocked",
)


class TestFlightConfig:
    def test_defaults_valid(self):
        cfg = FlightConfig()
        assert cfg.interval_cycles == 128
        assert cfg.max_intervals == 512

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(interval_cycles=0),
            dict(max_intervals=6),     # even but below the floor
            dict(max_intervals=9),     # odd: coalescing halves pairs
            dict(top_links=-1),
            dict(collapse_ratio=0.0),
            dict(collapse_ratio=1.0),
            dict(collapse_intervals=0),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            FlightConfig(**kwargs)


class TestDocumentShape:
    def test_engine_only_document(self):
        config = small_tree_config()
        result = simulate_with_flight(config, FlightConfig(interval_cycles=64))
        doc = result.telemetry.flight
        assert doc["format"] == 1
        assert doc["interval"] == 64
        assert doc["decimations"] == 0
        assert doc["stride"] == 64
        assert doc["layers"] == {"transport": False, "control": False}
        assert set(doc["series"]) == set(ENGINE_KEYS)
        rows = doc["rows"]
        assert rows == len(doc["hot"])
        for key in ENGINE_KEYS:
            assert len(doc["series"][key]) == rows
        # the timeline tiles the whole run: spans sum to total_cycles and
        # the sampled cycles are strictly increasing
        assert sum(doc["series"]["span"]) == config.total_cycles
        cycles = doc["series"]["cycle"]
        assert cycles == sorted(cycles)
        assert cycles[-1] == config.total_cycles - 1

    def test_transport_layer_discovered(self):
        result = simulate_reliable(
            small_tree_config(),
            TransportConfig(base_timeout=200, max_retries=2),
            probe=FlightRecorder(FlightConfig(interval_cycles=128)),
        )
        doc = result.telemetry.flight
        assert doc["layers"] == {"transport": True, "control": False}
        for key in ("outstanding", "retx", "gave_up", "rtt"):
            assert len(doc["series"][key]) == doc["rows"]
        assert "cwnd_mean" not in doc["series"]

    def test_control_layer_via_overload_point(self):
        spec = OverloadSpec(
            closed_loop=True,
            saturation=0.5,
            control=DEFAULT_CONTROL,
            flight=FlightConfig(interval_cycles=128),
        )
        result = run_overload_point(small_tree_config(load=0.6), spec)
        doc = result.telemetry.flight
        assert doc["layers"] == {"transport": True, "control": True}
        for key in ("held", "marks", "cwnd_mean", "cwnd_p50", "cwnd_min"):
            assert len(doc["series"][key]) == doc["rows"]
        # windows exist from the first sample on: means are positive
        assert all(v > 0 for v in doc["series"]["cwnd_mean"])

    def test_describe_flight_digest(self):
        result = simulate_with_flight(
            small_tree_config(), FlightConfig(interval_cycles=128)
        )
        text = describe_flight(result.telemetry.flight)
        assert "flight timeline:" in text
        assert "delivered" in text and "offered" in text


class TestCardinalityBound:
    def test_rows_stay_bounded_and_spans_conserved(self):
        # 600 cycles at a 4-cycle interval is 150 raw samples; an
        # 8-row buffer must absorb them via pair-coalescing decimation
        cfg = FlightConfig(interval_cycles=4, max_intervals=8)
        config = small_tree_config()
        result = simulate_with_flight(config, cfg)
        doc = result.telemetry.flight
        assert doc["rows"] <= cfg.max_intervals
        assert doc["decimations"] > 0
        assert doc["stride"] == cfg.interval_cycles * 2 ** doc["decimations"]
        # decimation sums rates and keeps gauges: nothing is lost
        assert sum(doc["series"]["span"]) == config.total_cycles
        assert len(doc["hot"]) == doc["rows"]

    def test_decimated_totals_match_undecimated(self):
        config = small_tree_config()
        fine = simulate_with_flight(
            config, FlightConfig(interval_cycles=4, max_intervals=8)
        ).telemetry.flight
        coarse = simulate_with_flight(
            config, FlightConfig(interval_cycles=300)
        ).telemetry.flight
        for key in ("injected", "delivered", "dropped", "generated"):
            assert sum(fine["series"][key]) == sum(coarse["series"][key])


class TestLiveHooks:
    def test_on_sample_sees_raw_rows(self):
        seen = []
        config = small_tree_config()
        recorder = FlightRecorder(
            FlightConfig(interval_cycles=4, max_intervals=8),
            on_sample=seen.append,
        )
        simulate(config, probe=recorder)
        # the callback fires per raw interval, decimation notwithstanding
        assert len(seen) == config.total_cycles // 4
        assert all(row["span"] == 4 for row in seen)

    def test_events_jsonl_stream(self, tmp_path):
        path = tmp_path / "events.jsonl"
        result = simulate_with_flight(
            small_tree_config(),
            FlightConfig(interval_cycles=128),
            events=path,
        )
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[0]["type"] == "start"
        assert records[-1]["type"] == "end"
        samples = [r for r in records if r["type"] == "sample"]
        doc = result.telemetry.flight
        assert len(samples) == doc["rows"]  # no decimation at this interval
        assert records[-1]["rows"] == doc["rows"]
        assert records[-1]["collapse_onset"] == doc["collapse_onset"]

    def test_broken_event_sink_does_not_kill_the_run(self):
        class Broken:
            def write(self, _):
                raise OSError("disk gone")

        result = simulate_with_flight(
            small_tree_config(), FlightConfig(interval_cycles=128),
            events=Broken(),
        )
        assert result.telemetry.flight["rows"] > 0


class TestAnnotations:
    def _run_with(self, recorder):
        simulate(small_tree_config(), probe=recorder)
        return recorder

    def test_pre_run_annotations_survive_run_start(self):
        # a fault schedule is annotated right after build_engine, before
        # the engine runs; run start must replay, not reset, those stamps
        recorder = FlightRecorder(FlightConfig(interval_cycles=128))
        recorder.annotate(250, "fault_strike", "s0p1")
        recorder.annotate(400, "fault_repair", "s0p1")
        self._run_with(recorder)
        doc = recorder.document()
        assert [(a["cycle"], a["kind"]) for a in doc["annotations"]] == [
            (250, "fault_strike"), (400, "fault_repair"),
        ]

    def test_cap_drops_overflow(self):
        recorder = FlightRecorder(FlightConfig(interval_cycles=128))
        for i in range(70):
            recorder.annotate(i, "fault_strike", f"link {i}")
        self._run_with(recorder)
        doc = recorder.document()
        assert len(doc["annotations"]) == 64
        assert doc["annotations_dropped"] == 6

    def test_annotations_sorted_by_cycle_then_kind(self):
        recorder = FlightRecorder(FlightConfig(interval_cycles=128))
        recorder.annotate(500, "fault_strike")
        recorder.annotate(100, "stall")
        recorder.annotate(100, "collapse_onset")
        self._run_with(recorder)
        doc = recorder.document()
        assert [(a["cycle"], a["kind"]) for a in doc["annotations"]] == [
            (100, "collapse_onset"), (100, "stall"), (500, "fault_strike"),
        ]

    def test_chaos_point_stamps_strikes_on_the_timeline(self):
        from repro.experiments.chaos import StormSpec, run_chaos_point

        storm = StormSpec(fault_rate=0.5, storm_seed=9)
        result = run_chaos_point(
            small_tree_config(load=0.5),
            storm,
            flight=FlightConfig(interval_cycles=64),
        )
        doc = result.telemetry.flight
        struck = result.telemetry.reliability["storm"]["faults"]
        assert struck > 0
        strikes = [a for a in doc["annotations"] if a["kind"] == "fault_strike"]
        assert len(strikes) == struck


class TestTimelineSvg:
    def test_renders_engine_only_panels(self):
        result = simulate_with_flight(
            small_tree_config(), FlightConfig(interval_cycles=64)
        )
        svg = flight_timeline_svg(result.telemetry.flight, title="smoke")
        assert svg.startswith("<svg") or "<svg" in svg
        assert "offered" in svg and "delivered" in svg

    def test_empty_document_rejected(self):
        doc = FlightRecorder().document()
        with pytest.raises(AnalysisError):
            flight_timeline_svg(doc)


# -- acceptance regression: the PR 6 overload campaign under the recorder --

ACCEPTANCE_SATURATION = 0.78
ACCEPTANCE_TRANSPORT = TransportConfig(
    base_timeout=220, backoff=1.0, jitter=4, max_retries=8
)
ACCEPTANCE_FLIGHT = FlightConfig(interval_cycles=128)


def _acceptance_point(closed_loop: bool):
    """One 1.5x-saturation point of the reference campaign (4-ary
    4-tree, transpose), flight-instrumented — the PR 6 acceptance shape."""
    config = tree_config(
        k=4, n=4, vcs=4, pattern="transpose",
        load=round(ACCEPTANCE_SATURATION * 1.5, 9), seed=29,
        warmup_cycles=250, total_cycles=1450,
    )
    spec = OverloadSpec(
        closed_loop=closed_loop,
        saturation=ACCEPTANCE_SATURATION,
        transport=ACCEPTANCE_TRANSPORT,
        control=DEFAULT_CONTROL,
        flight=ACCEPTANCE_FLIGHT,
    )
    return run_overload_point(config, spec)


@pytest.mark.slow
class TestOverloadAcceptance:
    """The committed form of the PR 7 acceptance criteria."""

    def test_collapse_onset_separates_the_loops(self):
        open_doc = _acceptance_point(closed_loop=False).telemetry.flight
        closed_doc = _acceptance_point(closed_loop=True).telemetry.flight

        # open loop: retransmissions pile into the source queues, offered
        # load diverges from goodput, and the recorder stamps the onset
        assert open_doc["collapse_onset"] is not None
        kinds = {a["kind"] for a in open_doc["annotations"]}
        assert "collapse_onset" in kinds

        # closed loop: held messages are not offered; no onset stamped
        assert closed_doc["collapse_onset"] is None

        # the control plane reacts within one interval of the first mark
        notes = {a["kind"]: a["cycle"] for a in closed_doc["annotations"]}
        assert "first_mark" in notes and "first_decrease" in notes
        assert abs(notes["first_mark"] - notes["first_decrease"]) <= (
            closed_doc["interval"]
        )

    def test_timeline_serialization_is_byte_identical(self):
        first = _acceptance_point(closed_loop=True).telemetry.flight
        second = _acceptance_point(closed_loop=True).telemetry.flight
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
