"""Unit tests for metrics (series, saturation, CNF, analytic model)."""

import pytest

from repro.errors import AnalysisError
from repro.metrics.analytic import (
    expected_zero_load_latency,
    path_channels,
    zero_load_latency,
)
from repro.metrics.cnf import CNFResult, absolute_series, saturation_bits_per_ns
from repro.metrics.saturation import (
    post_saturation_stability,
    saturation_point,
    sustained_rate,
)
from repro.metrics.series import LoadPoint, LoadSweepSeries
from repro.timing.normalization import cube_scaling
from repro.topology.cube import KAryNCube
from repro.topology.tree import KAryNTree


def series(points, label="x"):
    """Build a series from (offered, accepted, latency) triples."""
    s = LoadSweepSeries(label=label, network="cube", algorithm="dor", vcs=4, pattern="uniform")
    s.points = [
        LoadPoint(
            offered=o,
            offered_measured=o,
            accepted=a,
            latency_cycles=l,
            delivered_packets=100,
        )
        for o, a, l in points
    ]
    return s


SATURATING = [
    (0.2, 0.2, 40.0),
    (0.4, 0.4, 50.0),
    (0.6, 0.55, 80.0),
    (0.8, 0.56, 120.0),
    (1.0, 0.55, 150.0),
]


class TestSeries:
    def test_points_sorted_on_add(self):
        from repro.sim.results import RunResult
        from .test_packet_results import cfg

        s = LoadSweepSeries(label="t", network="cube", algorithm="dor", vcs=4, pattern="uniform")
        for load in (0.5, 0.1, 0.3):
            r = RunResult(config=cfg(load=load), measured_cycles=1000, delivered_flits=100)
            s.add(r)
        assert s.offered() == [0.1, 0.3, 0.5]

    def test_peak_accepted(self):
        assert series(SATURATING).peak_accepted() == pytest.approx(0.56)

    def test_peak_requires_points(self):
        with pytest.raises(AnalysisError):
            series([]).peak_accepted()

    def test_accessors(self):
        s = series(SATURATING)
        assert len(s) == 5
        assert s.accepted()[0] == 0.2
        assert s.latencies()[-1] == 150.0


class TestSaturation:
    def test_unsaturated_returns_last_load(self):
        s = series([(0.2, 0.2, 40.0), (0.5, 0.5, 45.0)])
        assert saturation_point(s) == 0.5

    def test_interpolates_crossing(self):
        sat = saturation_point(series(SATURATING))
        assert 0.4 < sat < 0.62

    def test_saturated_from_start(self):
        s = series([(0.5, 0.2, 99.0), (1.0, 0.2, 200.0)])
        assert saturation_point(s) == 0.5

    def test_tolerance_effect(self):
        s = series(SATURATING)
        loose = saturation_point(s, tol=0.2)
        tight = saturation_point(s, tol=0.01)
        assert loose >= tight

    def test_empty_series_rejected(self):
        with pytest.raises(AnalysisError):
            saturation_point(series([]))
        with pytest.raises(AnalysisError):
            saturation_point(series(SATURATING), tol=1.5)

    def test_sustained_rate(self):
        rate = sustained_rate(series(SATURATING))
        assert rate == pytest.approx(0.5533, abs=0.02)

    def test_stability_flat_curve(self):
        s = series(SATURATING)
        assert post_saturation_stability(s) < 0.05

    def test_stability_degrading_curve(self):
        s = series(
            [(0.2, 0.2, 40.0), (0.5, 0.45, 60.0), (0.8, 0.30, 100.0), (1.0, 0.2, 150.0)]
        )
        assert post_saturation_stability(s) > 0.3


class TestCNF:
    def test_summaries(self):
        cnf = CNFResult(title="t", series=[series(SATURATING, "a"), series(SATURATING, "b")])
        sat = cnf.saturation_summary()
        assert set(sat) == {"a", "b"}
        sus = cnf.sustained_summary()
        assert all(0.5 < v < 0.6 for v in sus.values())

    def test_absolute_conversion(self):
        scaling = cube_scaling(16, 2, clock_ns=7.8)
        pts = absolute_series(series(SATURATING), scaling)
        assert len(pts) == 5
        # accepted 0.55 of capacity -> 0.55 * 0.5 * 256 * 32 bits / 7.8 ns
        assert pts[-1].accepted_bits_per_ns == pytest.approx(0.55 * 0.5 * 256 * 32 / 7.8)
        assert pts[0].latency_ns == pytest.approx(40 * 7.8)

    def test_absolute_handles_missing_latency(self):
        scaling = cube_scaling(16, 2, clock_ns=7.8)
        s = series([(1.0, 0.5, None)])
        assert absolute_series(s, scaling)[0].latency_ns is None

    def test_saturation_bits_per_ns(self):
        scaling = cube_scaling(16, 2, clock_ns=7.8)
        bits = saturation_bits_per_ns(series(SATURATING), scaling)
        assert bits == pytest.approx(scaling.aggregate_bits_per_ns(0.5533), rel=0.05)


class TestAnalytic:
    def test_zero_load_formula(self):
        assert zero_load_latency(2, 32) == 34
        assert zero_load_latency(3, 16) == 21

    def test_validation(self):
        with pytest.raises(AnalysisError):
            zero_load_latency(0, 16)
        with pytest.raises(AnalysisError):
            zero_load_latency(2, 0)

    def test_path_channels_tree_vs_cube(self):
        tree = KAryNTree(2, 2)
        cube = KAryNCube(4, 2)
        assert path_channels(tree, 0, 1) == 2
        assert path_channels(cube, 0, 1) == 3

    def test_path_channels_unknown_topology(self):
        with pytest.raises(AnalysisError):
            path_channels(object(), 0, 1)

    def test_expected_latency_uniform(self):
        cube = KAryNCube(4, 2)
        val = expected_zero_load_latency(cube, 16)
        # avg distance = 2*16/15 ... enumerated independently:
        from repro.topology.properties import exact_average_distance

        avg_hops = exact_average_distance(cube)
        assert val == pytest.approx(3 * (avg_hops + 2) + 16 - 4)

    def test_expected_latency_excludes_fixed_points(self):
        tree = KAryNTree(2, 2)
        with pytest.raises(AnalysisError):
            expected_zero_load_latency(tree, 8, mapping=lambda s: s)


class TestLatencyPercentiles:
    def make_result(self, latencies):
        from repro.sim.results import RunResult
        from .test_packet_results import cfg

        return RunResult(
            config=cfg(collect_latencies=True),
            measured_cycles=1000,
            delivered_packets=len(latencies),
            latencies=list(latencies),
        )

    def test_known_percentiles(self):
        from repro.metrics.series import latency_percentiles

        result = self.make_result(range(1, 101))
        pcts = latency_percentiles(result, (50, 99))
        assert pcts[50] == pytest.approx(50.5)
        assert pcts[99] > 99

    def test_requires_samples(self):
        from repro.metrics.series import latency_percentiles

        with pytest.raises(AnalysisError, match="collect_latencies"):
            latency_percentiles(self.make_result([]))

    def test_from_live_run(self):
        from repro.metrics.series import latency_percentiles
        from repro.sim.run import cube_config, simulate

        res = simulate(
            cube_config(
                k=4, n=2, algorithm="dor", load=0.4, seed=5,
                warmup_cycles=100, total_cycles=1100, collect_latencies=True,
            )
        )
        pcts = latency_percentiles(res)
        assert pcts[50] <= pcts[95] <= pcts[99]
        assert pcts[50] >= res.config.packet_flits
