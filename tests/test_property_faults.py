"""Property-based tests for random fault drawing (repro.faults)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.faults import random_cube_link_faults, random_uplink_faults
from repro.topology.cube import KAryNCube
from repro.topology.tree import KAryNTree

tree_shapes = st.sampled_from([(2, 2), (2, 3), (3, 2), (4, 2), (2, 4), (3, 3), (4, 3)])
cube_shapes = st.sampled_from([(2, 2), (2, 3), (3, 2), (4, 2), (5, 2), (4, 3)])


def tree_max_safe(topo: KAryNTree) -> int:
    return (topo.n - 1) * topo.switches_per_level * (topo.k - 1)


@st.composite
def tree_draw(draw):
    k, n = draw(tree_shapes)
    topo = KAryNTree(k, n)
    count = draw(st.integers(0, tree_max_safe(topo)))
    seed = draw(st.integers(0, 2**16))
    return topo, count, seed


@st.composite
def cube_draw(draw):
    k, n = draw(cube_shapes)
    topo = KAryNCube(k, n)
    per_node = topo.n if topo.k == 2 else 2 * topo.n
    count = draw(st.integers(0, topo.num_nodes * per_node))
    seed = draw(st.integers(0, 2**16))
    return topo, count, seed


class TestTreeRandomFaults:
    @given(tree_draw())
    def test_never_exhausts_a_switch(self, case):
        # the invariant behind fault masking: every non-root switch keeps
        # at least one live ascent channel, whatever the draw
        topo, count, seed = case
        per_switch: dict[int, int] = {}
        for switch, port in random_uplink_faults(topo, count, seed=seed):
            assert port in topo.up_ports()
            assert topo.level_of(switch) < topo.n - 1
            per_switch[switch] = per_switch.get(switch, 0) + 1
        assert all(c <= topo.k - 1 for c in per_switch.values())

    @given(tree_draw())
    def test_exact_count_and_distinct(self, case):
        topo, count, seed = case
        faults = random_uplink_faults(topo, count, seed=seed)
        assert len(faults) == count
        assert len(set(faults)) == count

    @given(tree_draw())
    def test_deterministic_under_fixed_seed(self, case):
        topo, count, seed = case
        assert random_uplink_faults(topo, count, seed=seed) == random_uplink_faults(
            topo, count, seed=seed
        )

    @given(tree_shapes)
    def test_rejects_beyond_max_safe(self, shape):
        topo = KAryNTree(*shape)
        max_safe = tree_max_safe(topo)
        assert len(random_uplink_faults(topo, max_safe, seed=1)) == max_safe
        with pytest.raises(ConfigurationError):
            random_uplink_faults(topo, max_safe + 1, seed=1)


class TestCubeRandomFaults:
    @given(cube_draw())
    def test_exact_count_distinct_and_in_range(self, case):
        topo, count, seed = case
        faults = random_cube_link_faults(topo, count, seed=seed)
        assert len(faults) == count
        assert len(set(faults)) == count
        for node, dim, direction in faults:
            assert 0 <= node < topo.num_nodes
            assert 0 <= dim < topo.n
            assert direction == 1 if topo.k == 2 else direction in (1, -1)

    @given(cube_draw())
    def test_deterministic_under_fixed_seed(self, case):
        topo, count, seed = case
        assert random_cube_link_faults(topo, count, seed=seed) == random_cube_link_faults(
            topo, count, seed=seed
        )

    @given(cube_shapes)
    def test_rejects_beyond_population(self, shape):
        topo = KAryNCube(*shape)
        per_node = topo.n if topo.k == 2 else 2 * topo.n
        population = topo.num_nodes * per_node
        assert len(random_cube_link_faults(topo, population, seed=1)) == population
        with pytest.raises(ConfigurationError):
            random_cube_link_faults(topo, population + 1, seed=1)
