"""Unit and behavioral tests for trace-driven workloads (repro.workloads)."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.analytic import path_channels, zero_load_latency
from repro.sim.run import cube_config, tree_config
from repro.workloads.collectives import (
    alltoall_trace,
    broadcast_trace,
    butterfly_barrier_trace,
    stencil_trace,
)
from repro.workloads.runner import run_trace
from repro.workloads.trace import Trace, TraceInjector, TraceMessage, TraceSource


class TestTrace:
    def test_add_and_count(self):
        t = Trace(8)
        t.send(0, 0, 1, 16)
        t.send(5, 2, 3, 8)
        assert len(t) == 2
        assert t.total_flits() == 24
        assert t.duration_hint() == 5

    def test_validation(self):
        t = Trace(8)
        with pytest.raises(ConfigurationError):
            t.send(-1, 0, 1, 16)
        with pytest.raises(ConfigurationError):
            t.send(0, 0, 8, 16)  # dst out of range
        with pytest.raises(ConfigurationError):
            t.send(0, 3, 3, 16)  # self message
        with pytest.raises(ConfigurationError):
            t.send(0, 0, 1, 1)  # no tail flit

    def test_sorted(self):
        t = Trace(4)
        t.send(9, 0, 1, 4)
        t.send(2, 1, 2, 4)
        assert [m.time for m in t.sorted()] == [2, 9]

    def test_json_round_trip(self):
        t = Trace(8)
        t.send(3, 1, 2, 16)
        t.send(0, 4, 5, 8)
        again = Trace.from_json(t.to_json())
        assert again.num_nodes == 8
        assert again.sorted() == t.sorted()

    def test_json_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            Trace.from_json("{}")
        with pytest.raises(ConfigurationError):
            Trace.from_json('{"num_nodes": 4, "messages": [[0, 0, 0, 4]]}')

    def test_segmented(self):
        t = Trace(4)
        t.send(0, 0, 1, 40)
        seg = t.segmented(16)
        assert seg.total_flits() == 40
        assert [m.flits for m in seg.messages] == [16, 16, 8]

    def test_segmented_never_leaves_one_flit_tail(self):
        t = Trace(4)
        t.send(0, 0, 1, 17)
        seg = t.segmented(16)
        assert sorted(m.flits for m in seg.messages) == [2, 15]

    def test_segmented_validation(self):
        with pytest.raises(ConfigurationError):
            Trace(4).segmented(1)


class TestTraceSource:
    def test_release_schedule(self):
        src = TraceSource(0, [TraceMessage(5, 0, 1, 4), TraceMessage(2, 0, 2, 4)])
        assert src.active
        assert src.advance(1) == 0
        assert src.advance(2) == 1
        assert src.queue[0] == (2, 2, 4)  # sorted by time
        assert not src.done()
        src.advance(10)
        assert src.pending() == 2
        src.queue.clear()
        assert src.done()

    def test_empty_schedule_inactive(self):
        src = TraceSource(0, [])
        assert not src.active
        assert src.done()


class TestTraceInjector:
    def test_per_node_split(self):
        t = Trace(4)
        t.send(0, 0, 1, 4)
        t.send(0, 0, 2, 4)
        t.send(1, 3, 0, 4)
        inj = TraceInjector(t)
        assert inj.num_nodes == 4
        assert len(inj.sources[0].schedule) == 2
        assert len(inj.sources[3].schedule) == 1
        assert not inj.sources[1].active


class TestCollectives:
    def test_alltoall_counts(self):
        t = alltoall_trace(8, flits=16)
        assert len(t) == 8 * 7
        assert t.total_flits() == 56 * 16

    def test_alltoall_shifted_rounds_are_permutations(self):
        t = alltoall_trace(8, flits=16, spacing=10, schedule="shifted")
        by_round = {}
        for m in t.messages:
            by_round.setdefault(m.time, []).append(m)
        for msgs in by_round.values():
            assert sorted(m.src for m in msgs) == list(range(8))
            assert sorted(m.dst for m in msgs) == list(range(8))

    def test_alltoall_schedules(self):
        naive = alltoall_trace(8, schedule="naive")
        rand = alltoall_trace(8, schedule="random", seed=3)
        assert len(naive) == len(rand) == 56
        with pytest.raises(ConfigurationError):
            alltoall_trace(8, schedule="greedy")

    def test_barrier_rounds(self):
        t = butterfly_barrier_trace(16, flits=8, round_gap=100)
        assert len(t) == 16 * 4  # log2(16) rounds
        times = {m.time for m in t.messages}
        assert times == {0, 100, 200, 300}
        # every round pairs each node with its XOR partner
        for m in t.messages:
            assert m.dst == m.src ^ (1 << (m.time // 100))

    def test_barrier_needs_power_of_two(self):
        with pytest.raises(ConfigurationError):
            butterfly_barrier_trace(12)

    def test_broadcast_coverage(self):
        t = broadcast_trace(16, root=5, flits=8)
        assert len(t) == 15  # N-1 transfers
        reached = {5}
        for m in t.sorted():
            assert m.src in reached
            reached.add(m.dst)
        assert reached == set(range(16))

    def test_stencil_counts(self):
        t = stencil_trace(4, 2, flits=8, rounds=2)
        assert len(t) == 2 * 16 * 4  # rounds * nodes * 2 dims * 2 dirs
        # every message is a grid neighbor
        from repro.topology.cube import KAryNCube

        cube = KAryNCube(4, 2)
        assert all(cube.min_distance(m.src, m.dst) == 1 for m in t.messages)

    def test_stencil_k2_skips_duplicate_direction(self):
        t = stencil_trace(2, 2, flits=8)
        # on a 2-ring, +1 and -1 reach the same peer: one message per dim
        assert len(t) == 4 * 2 * 2


class TestRunTrace:
    def test_single_message_matches_model(self):
        t = Trace(16)
        t.send(0, 0, 5, 16)
        cfg = cube_config(k=4, n=2, algorithm="dor")
        result = run_trace(cfg, t)
        expect = zero_load_latency(2 + 2, 16)
        assert result.avg_latency_cycles == expect
        assert result.max_latency_cycles == expect
        # injected at cycle 0, delivered at the end of cycle `expect`:
        # `expect + 1` cycles elapse before the network is seen empty
        assert result.makespan_cycles == expect + 1

    def test_variable_message_sizes(self):
        t = Trace(16)
        t.send(0, 0, 1, 4)
        t.send(0, 5, 6, 64)
        result = run_trace(cube_config(k=4, n=2, algorithm="duato"), t)
        assert result.total_flits == 68
        assert result.messages == 2

    def test_respects_injection_serialization(self):
        # two same-source messages share the single injection channel:
        # the makespan must exceed their combined serialization time
        t = Trace(16)
        t.send(0, 0, 1, 16)
        t.send(0, 0, 2, 16)
        result = run_trace(cube_config(k=4, n=2, algorithm="dor"), t)
        assert result.makespan_cycles >= 32

    def test_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="nodes"):
            run_trace(cube_config(k=4, n=2), Trace(8, [TraceMessage(0, 0, 1, 4)]))

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            run_trace(cube_config(k=4, n=2), Trace(16))

    def test_shifted_alltoall_beats_naive(self):
        # the linear-shift schedule avoids the hot-destination convoy of
        # the naive destination order
        cfg = tree_config(k=2, n=3, vcs=2)
        naive = run_trace(cfg, alltoall_trace(8, flits=32, schedule="naive"))
        shifted = run_trace(cfg, alltoall_trace(8, flits=32, schedule="shifted"))
        assert shifted.makespan_cycles <= naive.makespan_cycles

    def test_barrier_makespan_scales_with_rounds(self):
        cfg = cube_config(k=4, n=2, algorithm="duato")
        one = run_trace(cfg, butterfly_barrier_trace(16, flits=16, round_gap=200))
        assert one.makespan_cycles >= 3 * 200  # last round starts at 600