"""Determinism regression: identical recipes produce byte-identical run
documents.

Every random element in a run — traffic draws, routing tie-breaks,
retry jitter, storm draws — comes from a seeded stream, so two runs of
the same config must agree on every counter, not just the aggregates.
Only wall-clock telemetry (``wall_clock_s``, ``cycles_per_sec``,
``phase_seconds``) is allowed to differ; the comparison nulls those
fields and demands byte equality on the serialized rest."""

import json

from repro.experiments.chaos import StormSpec, run_chaos_point
from repro.experiments.congestion import OverloadSpec, run_overload_point
from repro.metrics.io import run_result_to_dict
from repro.obs.flight import FlightConfig, simulate_with_flight
from repro.obs.forensics import simulate_with_forensics
from repro.sim.run import simulate
from repro.traffic.congestion import CongestionConfig, simulate_congested
from repro.traffic.transport import TransportConfig, simulate_reliable

from .conftest import small_cube_config, small_tree_config
from .test_property_forensics import _build

#: telemetry fields measuring the host machine, not the simulation
_TIMING_FIELDS = ("wall_clock_s", "cycles_per_sec", "phase_seconds")


def _canonical(result) -> str:
    doc = run_result_to_dict(result)
    if doc["telemetry"] is not None:
        for field in _TIMING_FIELDS:
            doc["telemetry"][field] = None
    return json.dumps(doc, sort_keys=True)


def _assert_identical(make):
    assert _canonical(make()) == _canonical(make())


class TestRunDocumentDeterminism:
    def test_plain_tree_run(self):
        _assert_identical(lambda: simulate(small_tree_config(load=0.5)))

    def test_plain_cube_run(self):
        _assert_identical(lambda: simulate(small_cube_config(load=0.5)))

    def test_forensics_run(self):
        # the forensics document rides on telemetry, so the instrumented
        # run must be deterministic including its histograms and samples
        _assert_identical(
            lambda: simulate_with_forensics(small_cube_config(load=0.5))
        )

    def test_reliable_transport_run(self):
        # retry jitter comes from the transport's dedicated stream
        _assert_identical(
            lambda: simulate_reliable(
                small_tree_config(load=0.6),
                TransportConfig(base_timeout=16, jitter=8, seed=3),
            )
        )

    def test_closed_congestion_loop_run(self):
        # marking windows, AIMD arithmetic and hold-queue pumping on top
        # of the transport's jitter stream — all seeded, so byte-stable
        _assert_identical(
            lambda: simulate_congested(
                small_tree_config(load=0.8),
                TransportConfig(base_timeout=32, jitter=8, seed=3),
                CongestionConfig(window_cycles=32, hot_fraction=0.3),
            )
        )

    def test_overload_point(self):
        # the campaign path: arbiter override + forced latency samples +
        # the overload document on telemetry
        spec = OverloadSpec(
            closed_loop=True,
            saturation=0.4,
            arbiter="age",
            transport=TransportConfig(base_timeout=32, jitter=4),
            control=CongestionConfig(window_cycles=32),
        )
        _assert_identical(
            lambda: run_overload_point(small_tree_config(load=0.6), spec)
        )

    def test_flight_instrumented_run(self):
        # the flight timeline rides on telemetry.flight; its columnar
        # series, hot-link rankings and annotations must be byte-stable
        _assert_identical(
            lambda: simulate_with_flight(
                small_tree_config(load=0.5), FlightConfig(interval_cycles=64)
            )
        )

    def test_statehash_instrumented_run(self):
        # the digest chain rides on telemetry.statehash; every root,
        # chain link and subsystem digest must be byte-stable or the
        # divergence debugger would bisect noise
        from repro.obs.statehash import StateDigestConfig, simulate_with_statehash

        _assert_identical(
            lambda: simulate_with_statehash(
                small_cube_config(load=0.5), StateDigestConfig(interval_cycles=64)
            )
        )

    def test_statehash_instrumented_run_with_decimation(self):
        # pair-coalescing drops the same rows in the same order, and the
        # chain head still commits to every root ever sampled
        from repro.obs.statehash import StateDigestConfig, simulate_with_statehash

        _assert_identical(
            lambda: simulate_with_statehash(
                small_tree_config(load=0.5),
                StateDigestConfig(interval_cycles=4, max_intervals=8),
            )
        )

    def test_flight_instrumented_run_with_decimation(self):
        # pair-coalescing must be deterministic too: same rows merge in
        # the same order, hot-link ties break on the label
        _assert_identical(
            lambda: simulate_with_flight(
                small_tree_config(load=0.5),
                FlightConfig(interval_cycles=4, max_intervals=8),
            )
        )

    def test_flight_instrumented_overload_point(self):
        # recorder + transport + control loop: annotations (first mark,
        # first decrease) and the control-plane columns, end to end
        spec = OverloadSpec(
            closed_loop=True,
            saturation=0.4,
            transport=TransportConfig(base_timeout=32, jitter=4),
            control=CongestionConfig(window_cycles=32),
            flight=FlightConfig(interval_cycles=64),
        )
        _assert_identical(
            lambda: run_overload_point(small_tree_config(load=0.6), spec)
        )

    def test_chaos_point(self):
        # fault draw + strike times + kills + retransmissions, end to end
        storm = StormSpec(fault_rate=0.2, storm_seed=9)
        _assert_identical(
            lambda: run_chaos_point(
                _build(dict(network="tree", vcs=2), load=0.6), storm
            )
        )

    def test_different_seeds_actually_differ(self):
        # guard the guard: the canonicalization must not be so lossy
        # that any two runs compare equal
        a = _canonical(simulate(small_tree_config(load=0.5, seed=7)))
        b = _canonical(simulate(small_tree_config(load=0.5, seed=8)))
        assert a != b
