"""Unit tests for packet generation (repro.traffic.generator)."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.traffic.generator import BernoulliInjector, PacketSource
from repro.traffic.patterns import (
    BitReversalPattern,
    TransposePattern,
    UniformPattern,
)


def make_source(prob, node=0, num_nodes=16, seed=1):
    return PacketSource(node, UniformPattern(num_nodes), prob, random.Random(seed))


class TestPacketSource:
    def test_zero_probability_inactive(self):
        src = make_source(0.0)
        assert not src.active
        assert src.advance(10_000) == 0
        assert src.pending() == 0

    def test_rate_matches_probability(self):
        src = make_source(0.05)
        cycles = 50_000
        total = sum(src.advance(t) for t in range(cycles))
        assert 0.9 * 0.05 * cycles < total < 1.1 * 0.05 * cycles

    def test_at_most_one_per_cycle(self):
        src = make_source(1.0)
        for t in range(100):
            assert src.advance(t) <= 1
        assert src.pending() == 100

    def test_creation_times_recorded(self):
        src = make_source(0.2)
        src.advance(500)
        times = [t for t, _ in src.queue]
        assert times == sorted(times)
        assert all(0 <= t <= 500 for t in times)

    def test_inter_arrival_geometric_mean(self):
        src = make_source(0.1, seed=3)
        src.advance(200_000)
        times = [t for t, _ in src.queue]
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        assert 9.0 < mean < 11.0  # 1/p = 10

    def test_permutation_fixed_point_inactive(self):
        # node 0 is a palindrome under bit reversal: never injects
        pattern = BitReversalPattern(256)
        src = PacketSource(0, pattern, 0.5, random.Random(1))
        assert not src.active

    def test_permutation_moving_point_active(self):
        pattern = BitReversalPattern(256)
        src = PacketSource(1, pattern, 0.5, random.Random(1))
        assert src.active
        src.advance(100)
        assert all(dst == 128 for _, dst in src.queue)  # reverse of 00000001

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            make_source(1.5)
        with pytest.raises(ConfigurationError):
            make_source(-0.1)


class TestBernoulliInjector:
    def test_per_node_sources(self):
        inj = BernoulliInjector(UniformPattern(8), 0.25, packet_flits=16, seed=5)
        assert len(inj.sources) == 8
        assert inj.offered_flits_per_cycle() == pytest.approx(0.25)

    def test_probability_derivation(self):
        inj = BernoulliInjector(UniformPattern(8), 0.5, packet_flits=16, seed=5)
        assert inj.prob == pytest.approx(0.5 / 16)

    def test_independent_streams(self):
        inj = BernoulliInjector(UniformPattern(8), 0.5, packet_flits=4, seed=5)
        for s in inj.sources:
            s.advance(2000)
        queues = [tuple(s.queue) for s in inj.sources]
        assert len(set(queues)) == len(queues)  # no two nodes identical

    def test_seed_reproducibility(self):
        a = BernoulliInjector(UniformPattern(8), 0.5, packet_flits=4, seed=9)
        b = BernoulliInjector(UniformPattern(8), 0.5, packet_flits=4, seed=9)
        for sa, sb in zip(a.sources, b.sources):
            sa.advance(1000)
            sb.advance(1000)
            assert list(sa.queue) == list(sb.queue)

    def test_seed_sensitivity(self):
        a = BernoulliInjector(UniformPattern(8), 0.5, packet_flits=4, seed=9)
        b = BernoulliInjector(UniformPattern(8), 0.5, packet_flits=4, seed=10)
        a.sources[0].advance(1000)
        b.sources[0].advance(1000)
        assert list(a.sources[0].queue) != list(b.sources[0].queue)

    def test_overload_rejected(self):
        with pytest.raises(ConfigurationError, match="exceeds one"):
            BernoulliInjector(UniformPattern(8), 20.0, packet_flits=16)

    def test_negative_load_rejected(self):
        with pytest.raises(ConfigurationError):
            BernoulliInjector(UniformPattern(8), -1.0, packet_flits=16)

    def test_fixed_points_do_not_inject(self):
        inj = BernoulliInjector(TransposePattern(256), 0.5, packet_flits=16, seed=2)
        active = sum(1 for s in inj.sources if s.active)
        assert active == 240  # 256 - 16 diagonal nodes
