"""Integration tests: cross-module behaviors the paper's analysis relies on.

These use reduced network sizes and windows (seconds, not minutes); the
full 256-node reproductions live in benchmarks/.
"""

import pytest

from repro.metrics.analytic import expected_zero_load_latency
from repro.metrics.saturation import saturation_point
from repro.experiments.sweep import clear_cache, run_sweep
from repro.sim.run import build_engine, cube_config, simulate, tree_config
from repro.traffic.address import bit_complement


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestAnalyticAgreement:
    """At light load the measured latency must approach the zero-load model."""

    def test_tree_uniform(self):
        cfg = tree_config(
            k=2, n=3, vcs=2, load=0.04, seed=5,
            warmup_cycles=300, total_cycles=5300,
        )
        res = simulate(cfg)
        from repro.topology.tree import KAryNTree

        expect = expected_zero_load_latency(KAryNTree(2, 3), cfg.packet_flits)
        assert res.avg_latency_cycles == pytest.approx(expect, rel=0.06)

    def test_cube_complement(self):
        cfg = cube_config(
            k=4, n=2, algorithm="dor", pattern="complement", load=0.04,
            seed=5, warmup_cycles=300, total_cycles=5300,
        )
        res = simulate(cfg)
        from repro.topology.cube import KAryNCube

        expect = expected_zero_load_latency(
            KAryNCube(4, 2), cfg.packet_flits, mapping=lambda s: bit_complement(s, 4)
        )
        # deterministic routing on a fixed permutation at light load: the
        # average should be within a couple of cycles of the model
        assert res.avg_latency_cycles == pytest.approx(expect, rel=0.06)


class TestVirtualChannelScaling:
    """§8: more VCs raise the fat-tree's saturation point monotonically."""

    def test_tree_uniform_vc_ordering(self):
        sats = {}
        for vcs in (1, 2, 4):
            series = run_sweep(
                lambda load, v=vcs: tree_config(
                    k=2, n=3, vcs=v, load=load, seed=3,
                    warmup_cycles=200, total_cycles=1500,
                ),
                [0.2, 0.4, 0.6, 0.8, 1.0],
                label=f"{vcs}vc",
            )
            sats[vcs] = series.peak_accepted()
        assert sats[1] < sats[2] < sats[4]


class TestCongestionFreedom:
    """§8.1: congestion-free permutations reach near-capacity throughput
    even with a single virtual channel, unlike congesting permutations."""

    def test_complement_beats_bitrev_on_tree(self):
        results = {}
        for pattern in ("complement", "bitrev"):
            series = run_sweep(
                lambda load, p=pattern: tree_config(
                    k=4, n=2, vcs=1, pattern=p, load=load, seed=3,
                    warmup_cycles=200, total_cycles=1700,
                ),
                [0.3, 0.6, 0.9],
                label=pattern,
            )
            results[pattern] = series.peak_accepted()
        assert results["complement"] > 1.4 * results["bitrev"]

    def test_predictor_matches_simulation(self):
        # is_congestion_free (subtree preservation) agrees with the
        # measured gap on a 4-ary 2-tree
        from repro.topology.tree import KAryNTree
        from repro.traffic.address import bit_reverse

        topo = KAryNTree(4, 2)
        comp = [bit_complement(s, 4) for s in range(16)]
        rev = [bit_reverse(s, 4) for s in range(16)]
        assert topo.is_congestion_free(comp)
        assert not topo.is_congestion_free(rev)


class TestCongestionFreeScaling:
    """§8.1: complement results "are expected to scale with the number of
    nodes with an accepted bandwidth that approximates the network
    capacity", and latency "can be deterministically estimated with tight
    upper bounds"."""

    @pytest.mark.parametrize("k,n", [(2, 2), (2, 3), (4, 2), (2, 4)])
    def test_near_capacity_at_any_size(self, k, n):
        res = simulate(
            tree_config(
                k=k, n=n, vcs=1, pattern="complement", load=0.85,
                seed=5, warmup_cycles=300, total_cycles=2300,
            )
        )
        assert res.accepted_fraction > 0.7

    def test_latency_tightly_bounded_by_zero_load_model(self):
        from repro.metrics.analytic import zero_load_latency
        from repro.traffic.address import bit_complement

        k, n = 4, 2
        cfg = tree_config(
            k=k, n=n, vcs=1, pattern="complement", load=0.85,
            seed=5, warmup_cycles=300, total_cycles=2300,
        )
        res = simulate(cfg)
        # complement on a k-ary n-tree: every pair meets at the roots
        channels = 2 * n
        bound = zero_load_latency(channels, cfg.packet_flits)
        assert res.avg_latency_cycles >= bound
        assert res.avg_latency_cycles <= 1.2 * bound  # tight even at 85% load


class TestCubeAlgorithmContrast:
    """§9 at reduced scale: adaptivity helps uniform, hurts complement."""

    def test_uniform_duato_beats_dor(self):
        peaks = {}
        for algorithm in ("dor", "duato"):
            series = run_sweep(
                lambda load, a=algorithm: cube_config(
                    k=8, n=2, algorithm=a, load=load, seed=3,
                    warmup_cycles=200, total_cycles=1500,
                ),
                [0.4, 0.7, 1.0],
                label=algorithm,
            )
            peaks[algorithm] = series.peak_accepted()
        assert peaks["duato"] > peaks["dor"]

    def test_complement_dor_beats_duato(self):
        peaks = {}
        for algorithm in ("dor", "duato"):
            series = run_sweep(
                lambda load, a=algorithm: cube_config(
                    k=8, n=2, algorithm=a, pattern="complement", load=load,
                    seed=3, warmup_cycles=200, total_cycles=1500,
                ),
                [0.3, 0.5, 0.7, 1.0],
                label=algorithm,
            )
            peaks[algorithm] = series.peak_accepted()
        assert peaks["dor"] > peaks["duato"]


class TestSaturationDefinition:
    """§6: offered == accepted before saturation; estimator consistency."""

    def test_saturation_point_bounds_unsaturated_region(self):
        series = run_sweep(
            lambda load: cube_config(
                k=4, n=2, algorithm="dor", load=load, seed=3,
                warmup_cycles=200, total_cycles=2200,
            ),
            [0.1, 0.2, 0.3, 0.5, 0.7, 1.0],
            label="dor",
        )
        sat = saturation_point(series)
        for p in series.points:
            if p.offered < sat - 0.05:
                assert p.accepted == pytest.approx(p.offered_measured, rel=0.07)


class TestEjectionFairness:
    def test_hotspot_node_accepts_at_link_rate(self):
        # a 100% hotspot cannot deliver more than 1 flit/cycle to the hot
        # node; the run must stay stable and conserve flits
        cfg = cube_config(
            k=4, n=2, algorithm="duato", pattern="hotspot",
            pattern_kwargs={"hotspots": (0,), "fraction": 1.0},
            load=1.0, seed=3, warmup_cycles=200, total_cycles=1500,
        )
        eng = build_engine(cfg)
        res = eng.run()
        eng.audit()
        hot_rate = eng.delivered_flits_per_node[0] / res.measured_cycles
        assert hot_rate <= 1.0 + 1e-9  # physical ejection channel limit
        assert hot_rate > 0.5  # and the channel is well utilized
