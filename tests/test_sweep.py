"""Unit tests for sweep orchestration (repro.experiments.sweep)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.sweep import (
    _CACHE,
    clear_cache,
    default_loads,
    run_point,
    run_sweep,
)

from .conftest import small_cube_config


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestDefaultLoads:
    def test_grid_shape(self):
        loads = default_loads(7)
        assert len(loads) == 7
        assert loads[0] == pytest.approx(0.1)
        assert loads[-1] == pytest.approx(1.0)
        assert loads == sorted(loads)

    def test_custom_range(self):
        loads = default_loads(3, lo=0.2, hi=0.8)
        assert loads == [0.2, 0.5, 0.8]

    def test_too_few_points(self):
        with pytest.raises(ConfigurationError):
            default_loads(1)


class TestRunPoint:
    def test_caches(self):
        cfg = small_cube_config(load=0.2)
        a = run_point(cfg)
        assert len(_CACHE) == 1
        b = run_point(small_cube_config(load=0.2))
        assert b is a  # identical recipe -> same object

    def test_cache_key_sensitivity(self):
        run_point(small_cube_config(load=0.2))
        run_point(small_cube_config(load=0.2, seed=99))
        run_point(small_cube_config(load=0.3))
        assert len(_CACHE) == 3

    def test_cache_opt_out(self):
        cfg = small_cube_config(load=0.2)
        run_point(cfg, use_cache=False)
        assert len(_CACHE) == 0

    def test_clear_cache_reports_count(self):
        run_point(small_cube_config(load=0.2))
        assert clear_cache() == 1
        assert clear_cache() == 0


class TestRunSweep:
    def test_series_assembled_in_order(self):
        series = run_sweep(
            lambda load: small_cube_config(load=load),
            [0.3, 0.1, 0.2],
            label="test",
        )
        assert series.offered() == [0.1, 0.2, 0.3]
        assert series.label == "test"
        assert series.network == "cube"

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep(lambda load: small_cube_config(load=load), [], label="x")

    def test_sweep_reuses_cache(self):
        run_point(small_cube_config(load=0.1))
        run_sweep(lambda load: small_cube_config(load=load), [0.1, 0.2], label="x")
        assert len(_CACHE) == 2

    def test_parallel_matches_serial(self):
        loads = [0.1, 0.3]
        serial = run_sweep(
            lambda load: small_cube_config(load=load), loads, label="s"
        )
        clear_cache()
        parallel = run_sweep(
            lambda load: small_cube_config(load=load),
            loads,
            label="p",
            parallel=True,
            max_workers=2,
        )
        assert [p.accepted for p in serial.points] == [
            p.accepted for p in parallel.points
        ]
        assert [p.latency_cycles for p in serial.points] == [
            p.latency_cycles for p in parallel.points
        ]
