"""Unit tests for the deterministic tree baseline (repro.routing.tree_deterministic)."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.analytic import path_channels, zero_load_latency
from repro.routing.base import make_routing
from repro.sim.packet import Packet
from repro.sim.run import build_engine, tree_config


def pkt(dst, src=0, size=8):
    return Packet(pid=0, src=src, dst=dst, size=size, created=0)


@pytest.fixture
def engine():
    return build_engine(
        tree_config(
            k=4, n=2, vcs=2, algorithm="tree_deterministic", load=0.0,
            warmup_cycles=0, total_cycles=10,
        )
    )


def inlane(engine, switch):
    for port_lanes in engine.in_lanes[switch]:
        if port_lanes:
            return port_lanes[0]
    raise AssertionError


class TestSelect:
    def test_ascent_fixed_by_source_digit(self, engine):
        topo = engine.topology
        leaf = topo.leaf_switch(5)  # node 5 = digits (1, 1): within-leaf digit 1
        ports = {
            engine.routing.select(leaf, inlane(engine, leaf), pkt(15, src=5)).port
            for _ in range(30)
        }
        assert ports == {topo.k + 5 % 4}  # up port k + (src mod k)

    def test_different_sources_spread(self, engine):
        topo = engine.topology
        leaf = topo.leaf_switch(0)
        lanes = [
            engine.routing.select(leaf, inlane(engine, leaf), pkt(15, src=s))
            for s in range(4)
        ]
        assert {lane.port for lane in lanes} == set(topo.up_ports())

    def test_descent_matches_adaptive_geometry(self, engine):
        topo = engine.topology
        root = topo.switch_id(1, (), (2,))
        lane = engine.routing.select(root, inlane(engine, root), pkt(14, src=0))
        assert lane.port == 3  # digit p0 of 14

    def test_stalls_when_fixed_port_busy(self, engine):
        topo = engine.topology
        leaf = topo.leaf_switch(0)
        fixed_port = topo.k + 0
        blocker = pkt(15)
        for lane in engine.out_lanes[leaf][fixed_port]:
            lane.packet = blocker
        # other up ports are free, but the deterministic router cannot use them
        assert engine.routing.select(leaf, inlane(engine, leaf), pkt(15, src=0)) is None

    def test_requires_tree(self, cube_engine_dor):
        algo = make_routing("tree_deterministic")
        with pytest.raises(ConfigurationError, match="KAryNTree"):
            algo.attach(cube_engine_dor)


class TestEndToEnd:
    @pytest.mark.parametrize("dst", [1, 7, 15])
    def test_zero_load_latency_matches_model(self, dst):
        cfg = tree_config(
            k=4, n=2, vcs=2, algorithm="tree_deterministic", load=0.0,
            warmup_cycles=0, total_cycles=300,
        )
        eng = build_engine(cfg)
        eng.preload_packet(0, dst)
        res = eng.run()
        eng.audit()
        assert res.delivered_packets == 1
        assert res.latency_max == zero_load_latency(
            path_channels(eng.topology, 0, dst), cfg.packet_flits
        )

    def test_saturated_run_is_deadlock_free(self):
        eng = build_engine(
            tree_config(
                k=2, n=3, vcs=1, algorithm="tree_deterministic", load=1.0,
                seed=2, warmup_cycles=100, total_cycles=2000, watchdog_cycles=500,
            )
        )
        res = eng.run()
        eng.audit()
        assert res.delivered_packets > 50

    def test_path_determinism(self):
        # same (src, dst) at light load always sees the same latency
        cfg = tree_config(
            k=4, n=2, vcs=2, algorithm="tree_deterministic",
            pattern="complement", load=0.02, seed=3,
            warmup_cycles=0, total_cycles=3000, collect_latencies=True,
        )
        eng = build_engine(cfg)
        res = eng.run()
        assert res.delivered_packets > 20
        # complement on a 4-ary 2-tree: every path has the same length and,
        # with deterministic routing at near-zero load, the same latency
        assert len(set(res.latencies)) == 1