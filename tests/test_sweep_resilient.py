"""Resilient-campaign tests: retries, timeouts, recorded failures, disk cache.

Includes the headline acceptance scenario for the fault-tolerance work: a
load sweep where one point is *forced* to deadlock (a deliberately unsafe
custom routing algorithm with no virtual-channel discipline on a ring)
completes anyway, files that point as a structured failure and returns
results for every other point.
"""

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlockError,
    PointTimeoutError,
    SimulationError,
)
from repro.experiments import sweep
from repro.experiments.runcache import RunCache
from repro.experiments.sweep import _RESEED_STRIDE, clear_cache, run_point, run_sweep
from repro.metrics.io import series_from_dict, series_to_dict
from repro.routing.base import ROUTING_ALGORITHMS, RoutingAlgorithm, register
from repro.sim.run import cube_config, simulate

from .conftest import small_cube_config


def small_factory(load: float):
    return small_cube_config(load=load)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


# -- a deliberately unsafe routing algorithm --------------------------------
#
# All-clockwise ring routing with no lane discipline: the wrap-around
# closes a cyclic channel dependency, so once every buffer along the ring
# fills, the worms hold-and-wait forever.  Registering it (with a network
# family) makes the name sweepable through the ordinary config layer —
# exactly how a user would plug in an experimental algorithm.


@register
class UnsafeRingRouting(RoutingAlgorithm):
    """Contrast case: adaptive freedom without Duato's escape structure."""

    name = "unsafe_ring"
    network = "cube"

    def attach(self, engine) -> None:
        super().attach(engine)
        self.topo = engine.topology
        self.eject_port = self.topo.ports_per_switch()

    def select(self, switch, inlane, packet):
        if switch == packet.dst:
            return self.pick_free_lane(self.out[switch][self.eject_port])
        return self.pick_free_lane(self.out[switch][self.topo.port_for(0, 1)])


def ring_config(load: float):
    """8-node ring, long worms, tiny buffers: wedges beyond ~0.3 load."""
    return cube_config(
        k=8, n=1, algorithm="unsafe_ring", vcs=2, load=load, seed=3,
        packet_flits=32, buffer_flits=2,
        warmup_cycles=100, total_cycles=1100, watchdog_cycles=300,
    )


# -- interrupt handling ------------------------------------------------------
#
# Module-level so the process pool can pickle them: a simulate_fn that
# raises KeyboardInterrupt on the high-load point, plain (the interrupt
# arrives before the cheap points are consumed) or slow (the cheap
# points finish first, exercising the finished-but-unconsumed flush).


def _interrupt_above(config):
    if config.load > 0.25:
        raise KeyboardInterrupt
    return simulate(config)


def _interrupt_slowly(config):
    if config.load > 0.25:
        import time

        time.sleep(3.0)
        raise KeyboardInterrupt
    return simulate(config)


class TestInterruptedParallelSweep:
    def test_completed_points_flushed_to_ledger(self, tmp_path):
        from repro.obs.ledger import Ledger

        ledger = Ledger(tmp_path / "runs.jsonl")
        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                small_factory, [0.1, 0.2, 0.9], label="interrupted",
                parallel=True, max_workers=2,
                simulate_fn=_interrupt_above, ledger=ledger,
            )
        # loads 0.1 and 0.2 were consumed before the interrupt landed
        offered = [rec["run"]["config"]["load"] for rec in ledger.records()]
        assert offered == [0.1, 0.2]

    def test_finished_but_unconsumed_points_flushed(self, tmp_path):
        from repro.obs.ledger import Ledger

        ledger = Ledger(tmp_path / "runs.jsonl")
        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                small_factory, [0.9, 0.1, 0.2], label="interrupted",
                parallel=True, max_workers=3,
                simulate_fn=_interrupt_slowly, ledger=ledger,
            )
        # the interrupting point came *first* in submission order, so
        # the cheap points were never consumed in the normal loop; the
        # interrupt handler must still flush them (they had finished)
        offered = sorted(rec["run"]["config"]["load"] for rec in ledger.records())
        assert offered == [0.1, 0.2]

    def test_next_campaign_starts_clean(self, tmp_path):
        # the interrupt flag is campaign-scoped: a later sweep in the
        # same process must run normally
        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                small_factory, [0.1, 0.9], label="interrupted",
                parallel=True, max_workers=2, simulate_fn=_interrupt_above,
            )
        series = run_sweep(small_factory, [0.1, 0.2], label="clean")
        assert series.complete and len(series.points) == 2


class TestCustomAlgorithmRegistration:
    def test_registered_name_validates_in_config(self):
        assert "unsafe_ring" in ROUTING_ALGORITHMS
        assert ring_config(0.1).algorithm == "unsafe_ring"

    def test_unregistered_name_still_rejected(self):
        with pytest.raises(ConfigurationError, match="not usable"):
            cube_config(algorithm="no_such_algorithm")


class TestForcedDeadlockSweep:
    def test_sweep_survives_a_deadlocking_point(self):
        # the acceptance scenario: loads 0.1 and 0.2 are below the unsafe
        # ring's wedge threshold, 0.9 deadlocks on every attempt
        series = run_sweep(
            ring_config, [0.1, 0.2, 0.9], label="unsafe ring",
            retries=1, record_failures=True,
        )
        assert series.offered() == [0.1, 0.2]
        assert len(series.points) == 2
        assert not series.complete
        (failure,) = series.failures
        assert failure.offered == 0.9
        assert failure.error == "DeadlockError"
        assert "deadlock at cycle" in failure.message
        assert failure.attempts == 2
        assert failure.seeds == (3, 3 + _RESEED_STRIDE)

    def test_failfast_mode_still_raises(self):
        with pytest.raises(DeadlockError):
            run_sweep(ring_config, [0.1, 0.9], label="unsafe ring")

    def test_failures_survive_serialization(self):
        series = run_sweep(
            ring_config, [0.1, 0.9], label="unsafe ring",
            record_failures=True,
        )
        clone = series_from_dict(series_to_dict(series))
        assert clone.failures == series.failures
        assert clone.points == series.points
        assert not clone.complete


class TestRetryWithReseed:
    def test_transient_failure_recovers_on_retry(self, monkeypatch):
        good = simulate(small_cube_config(load=0.2, total_cycles=300))
        calls = []

        def flaky(config):
            calls.append(config.seed)
            if len(calls) == 1:
                raise SimulationError("transient wedge")
            return good

        monkeypatch.setattr(sweep, "simulate", flaky)
        series = run_sweep(
            small_factory, [0.2], label="flaky",
            retries=2, record_failures=True, use_cache=False,
        )
        assert series.complete
        assert len(series.points) == 1
        assert calls == [7, 7 + _RESEED_STRIDE]  # base seed, then reseeded

    def test_attempts_and_seeds_recorded_on_exhaustion(self, monkeypatch):
        def always_down(config):
            raise SimulationError("permanent wedge")

        monkeypatch.setattr(sweep, "simulate", always_down)
        series = run_sweep(
            small_factory, [0.2], label="down",
            retries=2, record_failures=True, use_cache=False,
        )
        (failure,) = series.failures
        assert failure.attempts == 3
        assert failure.seeds == (7, 7 + _RESEED_STRIDE, 7 + 2 * _RESEED_STRIDE)
        assert failure.error == "SimulationError"

    def test_configuration_errors_never_swallowed(self, monkeypatch):
        def broken(config):
            raise ConfigurationError("campaign-level bug")

        monkeypatch.setattr(sweep, "simulate", broken)
        with pytest.raises(ConfigurationError):
            run_sweep(
                small_factory, [0.2], label="bug",
                retries=5, record_failures=True, use_cache=False,
            )

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError, match="retries"):
            run_sweep(small_factory, [0.2], label="x", retries=-1)


class TestTimeout:
    def test_hung_point_becomes_structured_failure(self):
        # a microscopic budget times out even the smallest real run; the
        # watchdog subprocess is terminated rather than joined forever
        series = run_sweep(
            small_factory, [0.2], label="hung",
            timeout=0.001, record_failures=True, use_cache=False,
        )
        (failure,) = series.failures
        assert failure.error == "PointTimeoutError"
        assert "wall-clock budget" in failure.message

    def test_generous_budget_passes(self):
        series = run_sweep(
            small_factory, [0.2], label="fine",
            timeout=120.0, record_failures=True, use_cache=False,
        )
        assert series.complete
        assert len(series.points) == 1

    def test_timeout_error_propagates_without_recording(self):
        with pytest.raises(PointTimeoutError):
            run_sweep(
                small_factory, [0.2], label="hung",
                timeout=0.001, use_cache=False,
            )

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigurationError, match="timeout"):
            run_sweep(small_factory, [0.2], label="x", timeout=0.0)


class TestRunCache:
    def test_round_trip(self, tmp_path):
        cache = RunCache(tmp_path)
        cfg = small_cube_config(load=0.2, total_cycles=300)
        result = simulate(cfg)
        key = sweep._cache_key(cfg)
        cache.put(key, result)
        assert len(cache) == 1
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.config == result.config
        assert loaded.delivered_packets == result.delivered_packets
        assert loaded.latency_sum == result.latency_sum
        assert loaded.throughput_timeline == result.throughput_timeline

    def test_miss_returns_none(self, tmp_path):
        assert RunCache(tmp_path).get(("no", "such", "key")) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        cfg = small_cube_config(load=0.2, total_cycles=300)
        key = sweep._cache_key(cfg)
        cache.put(key, simulate(cfg))
        cache.path_for(key).write_text("{ truncated garbage")
        assert cache.get(key) is None

    def test_key_collision_is_a_miss(self, tmp_path):
        # an entry renamed onto another key's path must not be misread
        cache = RunCache(tmp_path)
        cfg = small_cube_config(load=0.2, total_cycles=300)
        key = sweep._cache_key(cfg)
        cache.put(key, simulate(cfg))
        other = sweep._cache_key(small_cube_config(load=0.3, total_cycles=300))
        cache.path_for(key).rename(cache.path_for(other))
        assert cache.get(other) is None

    def test_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        cfg = small_cube_config(load=0.2, total_cycles=300)
        cache.put(sweep._cache_key(cfg), simulate(cfg))
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = RunCache(tmp_path)
        cfg = small_cube_config(load=0.2, total_cycles=300)
        cache.put(sweep._cache_key(cfg), simulate(cfg))
        assert not list(tmp_path.glob("*.tmp"))

    def test_sweep_resumes_from_disk(self, tmp_path, monkeypatch):
        cache = RunCache(tmp_path)
        first = run_sweep(
            small_factory, [0.2, 0.3], label="campaign", cache=cache
        )
        assert len(cache) == 2

        clear_cache()  # a fresh process would start with an empty memo

        def exploding(config):
            raise AssertionError("should have been served from disk")

        monkeypatch.setattr(sweep, "simulate", exploding)
        second = run_sweep(
            small_factory, [0.2, 0.3], label="campaign", cache=cache
        )
        assert second.accepted() == first.accepted()
        assert second.complete

    def test_run_point_writes_through(self, tmp_path):
        cache = RunCache(tmp_path)
        cfg = small_cube_config(load=0.2, total_cycles=300)
        run_point(cfg, cache=cache)
        assert len(cache) == 1
        clear_cache()
        # second call hits disk, repopulating the memo without simulating
        assert run_point(cfg, cache=cache).delivered_packets >= 0
