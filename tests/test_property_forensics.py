"""Property tests for the forensics tier across every paper routing
configuration: the attribution invariant, probe composition under fault
schedules, and deadlock-precursor detection ahead of the watchdog."""

import re

import pytest

from repro.faults import CubeLinkFault, FaultSchedule
from repro.obs import MultiProbe, TraceProbe
from repro.obs.forensics import ForensicsProbe, LatencyAttributionProbe
from repro.sim.run import build_engine, cube_config, tree_config

from .test_sweep_resilient import ring_config  # registers unsafe_ring

#: the five paper routing configurations (Fig 5: tree by VC count,
#: Fig 6: cube by algorithm), shrunk to test-size networks
FIVE_CONFIGS = [
    pytest.param(dict(network="tree", vcs=1), id="tree-1vc"),
    pytest.param(dict(network="tree", vcs=2), id="tree-2vc"),
    pytest.param(dict(network="tree", vcs=4), id="tree-4vc"),
    pytest.param(dict(network="cube", algorithm="dor", vcs=4), id="cube-dor"),
    pytest.param(dict(network="cube", algorithm="duato", vcs=4), id="cube-duato"),
]


def _build(spec: dict, load: float = 0.7, **overrides):
    common = dict(
        load=load, seed=23, warmup_cycles=100, total_cycles=700, **overrides
    )
    if spec["network"] == "tree":
        return tree_config(k=2, n=3, vcs=spec["vcs"], **common)
    return cube_config(
        k=4, n=2, algorithm=spec["algorithm"], vcs=spec["vcs"], **common
    )


class TestAttributionInvariantAllConfigs:
    @pytest.mark.parametrize("spec", FIVE_CONFIGS)
    def test_every_delivered_packet_sums_exactly(self, spec):
        probe = LatencyAttributionProbe(include_warmup=True, keep_packets=100_000)
        engine = build_engine(_build(spec), probe=probe)
        engine.run()
        assert probe.finished > 0, "configuration delivered nothing"
        assert probe.invariant_violations == 0
        for rec in probe.packets:
            # queue + stall + blocked + transfer == created -> delivered,
            # equivalently stall + blocked + transfer == network latency
            assert rec.check()
            assert rec.source_wait == rec.injected - rec.created
            assert (
                rec.routing_stall + rec.blocked + rec.transfer
                == rec.delivered - rec.injected
            )

    @pytest.mark.parametrize("spec", FIVE_CONFIGS)
    def test_components_are_nonnegative(self, spec):
        probe = LatencyAttributionProbe(include_warmup=True, keep_packets=100_000)
        build_engine(_build(spec, load=1.0), probe=probe).run()
        for rec in probe.packets:
            assert rec.source_wait >= 0
            assert rec.routing_stall >= 0
            assert rec.blocked >= 0
            assert rec.transfer >= rec.size - 1 + 3  # at least one hop


class TestCompositionUnderFaults:
    def test_invariant_survives_a_fault_schedule(self):
        # forensics + tracer through MultiProbe while lanes fail and
        # repair mid-run: attribution must still sum exactly
        config = cube_config(
            k=4, n=2, algorithm="duato", vcs=4, load=0.5, seed=5,
            warmup_cycles=100, total_cycles=800,
        )
        forensics = ForensicsProbe(sample_every=100)
        forensics.attribution.keep_packets = 100_000
        tracer = TraceProbe(max_events=50_000)
        engine = build_engine(config, probe=MultiProbe([forensics, tracer]))
        schedule = FaultSchedule()
        schedule.add(CubeLinkFault(node=5, dim=0), fail_at=200, repair_at=500)
        schedule.add(CubeLinkFault(node=9, dim=1), fail_at=300)
        schedule.install(engine)
        engine.run()
        attr = forensics.attribution
        assert attr.finished > 0
        assert attr.invariant_violations == 0
        for rec in attr.packets:
            assert rec.check()
        assert len(tracer.events) > 0  # the composed probe kept tracing
        # faulted lanes appear as waits_on_faulted, never as graph edges
        assert all(s.waits_on_faulted >= 0 for s in forensics.waitfor.samples)


class TestDeadlockPrecursor:
    def test_sampler_flags_the_wedge_before_the_watchdog(self):
        from repro.obs.forensics import run_with_forensics

        result, probe, deadlock = run_with_forensics(
            ring_config(0.8), sample_every=32
        )
        assert deadlock is not None, "the unsafe ring must wedge at this load"
        wf = probe.waitfor
        assert wf.cycles_detected > 0
        assert wf.precursor is not None
        wedged_at = int(re.search(r"cycle (\d+)", str(deadlock)).group(1))
        assert wf.precursor_cycle < wedged_at
        # the precursor snapshot is a full diagnostic: it names the wedge
        text = wf.precursor.describe()
        assert "deadlock" in text.lower() or "packet" in text.lower()
        # the wait cycle is a real cycle: every pid occurs once
        sample = next(s for s in wf.samples if s.cycle_pids)
        assert len(set(sample.cycle_pids)) == len(sample.cycle_pids) >= 2

    def test_partial_result_still_carries_forensics(self):
        from repro.obs.forensics import run_with_forensics

        result, probe, deadlock = run_with_forensics(ring_config(0.8))
        assert deadlock is not None
        assert result.telemetry is not None
        doc = result.telemetry.forensics
        assert doc["waitfor"]["cycles_detected"] > 0
        assert doc["waitfor"]["precursor"] is not None
