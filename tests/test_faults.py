"""Unit and behavioral tests for fault injection (repro.faults)."""

import pytest

from repro.errors import ConfigurationError, DeadlockError, SimulationError
from repro.faults import inject_tree_uplink_faults, random_uplink_faults
from repro.sim.run import build_engine, cube_config, tree_config
from repro.topology.tree import KAryNTree


def make_engine(**overrides):
    defaults = dict(
        k=4, n=2, vcs=2, load=0.4, seed=9, warmup_cycles=100, total_cycles=1100
    )
    defaults.update(overrides)
    return build_engine(tree_config(**defaults))


class TestValidation:
    def test_rejects_cube(self):
        eng = build_engine(cube_config(k=4, n=2))
        with pytest.raises(ConfigurationError, match="n-trees"):
            inject_tree_uplink_faults(eng, [(0, 4)])

    def test_rejects_down_port(self):
        eng = make_engine()
        with pytest.raises(ConfigurationError, match="up port"):
            inject_tree_uplink_faults(eng, [(0, 1)])

    def test_rejects_root_ports(self):
        eng = make_engine()
        root = eng.topology.switch_id(1, (), (0,))
        with pytest.raises(ConfigurationError, match="root"):
            inject_tree_uplink_faults(eng, [(root, 4)])

    def test_rejects_total_switch_blackout(self):
        eng = make_engine()
        with pytest.raises(ConfigurationError, match="live ascent"):
            inject_tree_uplink_faults(eng, [(0, 4), (0, 5), (0, 6), (0, 7)])

    def test_allows_k_minus_one_faults_per_switch(self):
        eng = make_engine()
        assert inject_tree_uplink_faults(eng, [(0, 4), (0, 5), (0, 6)]) == 3

    def test_duplicates_collapse(self):
        eng = make_engine()
        assert inject_tree_uplink_faults(eng, [(0, 4), (0, 4)]) == 1

    def test_rejects_injection_after_traffic(self):
        eng = make_engine()
        eng.run()
        busy = [
            (s, p)
            for s in range(eng.topology.num_switches)
            if eng.topology.level_of(s) == 0
            for p in eng.topology.up_ports()
            if eng.out_lanes[s][p] and eng.out_lanes[s][p][0].packet is not None
        ]
        if busy:  # traffic left lanes allocated: injection must refuse
            with pytest.raises(SimulationError, match="before running"):
                inject_tree_uplink_faults(eng, busy[:1])


class TestRandomFaults:
    def test_distinct_and_safe(self):
        topo = KAryNTree(4, 3)
        faults = random_uplink_faults(topo, 30, seed=1)
        assert len(faults) == len(set(faults)) == 30
        per_switch = {}
        for s, p in faults:
            assert p in topo.up_ports()
            assert topo.level_of(s) < 2
            per_switch[s] = per_switch.get(s, 0) + 1
        assert all(c <= 3 for c in per_switch.values())

    def test_count_bounds(self):
        topo = KAryNTree(2, 2)
        # (n-1) * k**(n-1) * (k-1) = 2 safely failable channels
        assert len(random_uplink_faults(topo, 2)) == 2
        with pytest.raises(ConfigurationError):
            random_uplink_faults(topo, 3)

    def test_deterministic_by_seed(self):
        topo = KAryNTree(4, 2)
        assert random_uplink_faults(topo, 5, seed=7) == random_uplink_faults(topo, 5, seed=7)
        assert random_uplink_faults(topo, 5, seed=7) != random_uplink_faults(topo, 5, seed=8)


class TestMasking:
    def test_adaptive_routes_around_faults(self):
        eng = make_engine()
        inject_tree_uplink_faults(eng, [(0, 4), (1, 5), (2, 6)])
        res = eng.run()
        eng.audit()
        assert res.delivered_packets > 50
        assert not res.saturated  # 40% load still below the degraded capacity

    def test_avoided_channels_carry_nothing(self):
        eng = make_engine(load=0.8)
        inject_tree_uplink_faults(eng, [(0, 4)])
        eng.run()
        faulted = eng.out_lanes[0][4]
        assert all(lane.sent == 0 for lane in faulted)

    def test_throughput_degrades_gracefully(self):
        sustained = []
        for nfaults in (0, 6, 12):
            eng = make_engine(load=1.0, total_cycles=2100)
            faults = random_uplink_faults(eng.topology, nfaults, seed=3)
            inject_tree_uplink_faults(eng, faults)
            res = eng.run()
            sustained.append(res.accepted_fraction)
        assert sustained[0] >= sustained[1] >= sustained[2] - 0.03
        assert sustained[2] > 0.3 * sustained[0]  # degraded, not collapsed

    def test_deterministic_routing_stalls_on_faults(self):
        # the oblivious baseline cannot route around its fixed port: with
        # only node 0's traffic in the network, the stall is total and the
        # watchdog turns it into a DeadlockError
        eng = make_engine(
            algorithm="tree_deterministic", load=0.0,
            total_cycles=4000, watchdog_cycles=600,
        )
        inject_tree_uplink_faults(eng, [(0, 4)])  # node 0's fixed ascent
        eng.preload_packet(0, 15)
        with pytest.raises(DeadlockError):
            eng.run()

    def test_adaptive_same_scenario_succeeds(self):
        # identical fault and traffic, adaptive algorithm: delivered
        eng = make_engine(load=0.0, total_cycles=4000)
        inject_tree_uplink_faults(eng, [(0, 4)])
        eng.preload_packet(0, 15)
        res = eng.run()
        assert eng.delivered_packets_total == 1