"""Run telemetry and the versioned run document (repro.obs.telemetry,
repro.metrics.io run persistence, RunCache telemetry round-trip)."""

import dataclasses
import json

import pytest

from repro.errors import AnalysisError
from repro.experiments.runcache import RunCache
from repro.experiments.sweep import PointProgress, _cache_key, clear_cache, run_sweep
from repro.metrics.io import (
    RUN_FORMAT_VERSION,
    load_run,
    run_result_from_dict,
    run_result_to_dict,
    save_run,
)
from repro.obs import PHASE_NAMES, RunTelemetry, config_digest
from repro.sim.run import build_engine, simulate

from .conftest import small_cube_config, small_tree_config


class TestRunTelemetry:
    def test_attached_by_simulate(self):
        cfg = small_tree_config()
        result = simulate(cfg)
        t = result.telemetry
        assert t is not None
        assert t.cycles == cfg.total_cycles
        assert t.seed == cfg.seed
        assert t.wall_clock_s > 0
        assert t.cycles_per_sec > 0
        assert t.config_hash == config_digest(cfg)
        assert "cyc/s" in t.summary()

    def test_peak_in_flight_tracks_backlog(self):
        light = simulate(small_tree_config(load=0.1)).telemetry
        heavy = simulate(small_tree_config(load=1.0)).telemetry
        assert heavy.peak_in_flight > light.peak_in_flight >= 1

    def test_attached_by_drain(self):
        engine = build_engine(small_tree_config(load=0.0, warmup_cycles=0))
        engine.preload_packet(0, 3)
        engine.run_until_drained()
        assert engine.result.telemetry is not None
        assert engine.result.telemetry.peak_in_flight >= 1

    def test_dict_round_trip(self):
        t = simulate(small_tree_config()).telemetry
        assert RunTelemetry.from_dict(t.to_dict()) == t

    def test_config_digest_distinguishes_recipes(self):
        a = small_tree_config()
        b = small_tree_config(seed=99)
        assert config_digest(a) == config_digest(small_tree_config())
        assert config_digest(a) != config_digest(b)


class TestPhaseTimers:
    def test_every_phase_timed(self):
        t = simulate(small_tree_config()).telemetry
        assert set(t.phase_seconds) == set(PHASE_NAMES)
        assert all(v > 0 for v in t.phase_seconds.values())

    def test_phases_sum_close_to_wall_time(self):
        # step() is the run loop's body; the phase split must account for
        # most of the wall clock (the remainder is loop/probe overhead)
        t = simulate(small_cube_config(total_cycles=2000)).telemetry
        total = sum(t.phase_seconds.values())
        assert total <= t.wall_clock_s
        assert total >= 0.5 * t.wall_clock_s

    def test_timers_reset_between_runs_on_one_engine(self):
        engine = build_engine(small_tree_config(load=0.0, warmup_cycles=0))
        engine.preload_packet(0, 3)
        engine.run_until_drained()
        first = engine.result.telemetry.phase_seconds
        engine.preload_packet(1, 2)
        engine.run_until_drained()
        second = engine.result.telemetry.phase_seconds
        # each record covers only its own run; together they account for
        # the engine's cumulative phase time exactly
        cumulative = sum(engine._phase_seconds)
        assert sum(first.values()) + sum(second.values()) == pytest.approx(cumulative)

    def test_round_trip_with_phases(self):
        t = simulate(small_tree_config()).telemetry
        clone = RunTelemetry.from_dict(t.to_dict())
        assert clone.phase_seconds == t.phase_seconds

    def test_pre_phase_documents_still_load(self):
        doc = simulate(small_tree_config()).telemetry.to_dict()
        del doc["phase_seconds"]  # PR-2 era document
        t = RunTelemetry.from_dict(doc)
        assert t.phase_seconds is None
        assert t.phase_summary() == "phase timers unavailable"

    def test_phase_summary_lists_all_phases(self):
        t = simulate(small_tree_config()).telemetry
        summary = t.phase_summary()
        assert summary.startswith("phases:")
        for name in PHASE_NAMES:
            assert name in summary


class TestRunDocument:
    def test_round_trip(self):
        result = simulate(small_cube_config())
        clone = run_result_from_dict(run_result_to_dict(result))
        assert clone.config == result.config
        assert clone.delivered_packets == result.delivered_packets
        assert clone.latency_sum == result.latency_sum
        assert clone.telemetry == result.telemetry

    def test_document_is_versioned(self):
        doc = run_result_to_dict(simulate(small_tree_config()))
        assert doc["format"] == RUN_FORMAT_VERSION
        # it must be valid JSON end to end
        assert json.loads(json.dumps(doc))["telemetry"]["cycles_per_sec"] > 0

    def test_version_mismatch_rejected(self):
        doc = run_result_to_dict(simulate(small_tree_config()))
        doc["format"] = 999
        with pytest.raises(AnalysisError, match="unsupported run format"):
            run_result_from_dict(doc)

    def test_missing_fields_rejected(self):
        doc = run_result_to_dict(simulate(small_tree_config()))
        del doc["result"]["delivered_flits"]
        with pytest.raises(AnalysisError, match="malformed"):
            run_result_from_dict(doc)

    def test_telemetry_optional_for_hand_built_results(self):
        result = simulate(small_tree_config())
        doc = run_result_to_dict(dataclasses.replace(result, telemetry=None))
        assert doc["telemetry"] is None
        assert run_result_from_dict(doc).telemetry is None

    def test_save_and_load(self, tmp_path):
        result = simulate(small_tree_config())
        path = tmp_path / "point.json"
        save_run(result, path)
        clone = load_run(path)
        assert clone.telemetry == result.telemetry
        assert clone.accepted_fraction == result.accepted_fraction

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(AnalysisError):
            load_run(path)


class TestRunCacheTelemetry:
    def test_telemetry_survives_the_disk_cache(self, tmp_path):
        cache = RunCache(tmp_path)
        cfg = small_cube_config(load=0.2, total_cycles=300)
        result = simulate(cfg)
        key = _cache_key(cfg)
        cache.put(key, result)
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.telemetry == result.telemetry

    def test_pre_telemetry_entry_is_a_miss(self, tmp_path):
        # a v1-format entry (before telemetry) must be resimulated, not
        # misread
        cache = RunCache(tmp_path)
        cfg = small_cube_config(load=0.2, total_cycles=300)
        key = _cache_key(cfg)
        cache.put(key, simulate(cfg))
        doc = json.loads(cache.path_for(key).read_text())
        doc["format"] = 1
        cache.path_for(key).write_text(json.dumps(doc))
        assert cache.get(key) is None


class TestSweepProgress:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_cache()
        yield
        clear_cache()

    def test_progress_reports_each_point_with_cycles_per_sec(self):
        seen: list[PointProgress] = []
        run_sweep(
            lambda load: small_cube_config(load=load, total_cycles=300),
            [0.1, 0.2],
            label="telemetry",
            progress=seen.append,
        )
        assert [p.done for p in seen] == [1, 2]
        assert all(p.total == 2 for p in seen)
        assert all(p.status == "ok" for p in seen)
        assert all(p.cycles_per_sec > 0 for p in seen)
        assert seen[0].offered == 0.1

    def test_cached_points_report_cached(self):
        factory = lambda load: small_cube_config(load=load, total_cycles=300)  # noqa: E731
        run_sweep(factory, [0.1], label="warm")
        seen: list[PointProgress] = []
        run_sweep(factory, [0.1, 0.2], label="second", progress=seen.append)
        statuses = {p.offered: p.status for p in seen}
        assert statuses == {0.1: "cached", 0.2: "ok"}

    def test_parallel_sweep_ships_telemetry_across_workers(self):
        seen: list[PointProgress] = []
        series = run_sweep(
            lambda load: small_cube_config(load=load, total_cycles=300),
            [0.1, 0.2],
            label="parallel",
            parallel=True,
            max_workers=2,
            use_cache=False,
            progress=seen.append,
        )
        assert len(series.points) == 2
        assert all(p.cycles_per_sec > 0 for p in seen)
