"""Unit tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.network == "tree"
        assert args.load == 0.5

    def test_fig_pattern_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--pattern", "tornado"])

    def test_sweep_accepts_extension_patterns(self):
        args = build_parser().parse_args(["sweep", "--pattern", "tornado"])
        assert args.pattern == "tornado"


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert "6.340" in out

    def test_info_tree(self, capsys):
        assert main(["info", "--network", "tree"]) == 0
        out = capsys.readouterr().out
        assert "KAryNTree" in out
        assert "1.0 flits/cycle" in out

    def test_info_cube(self, capsys):
        assert main(["info", "--network", "cube", "--k", "4", "--n", "2"]) == 0
        out = capsys.readouterr().out
        assert "16 nodes" in out

    def test_run_small(self, capsys):
        code = main(
            [
                "run",
                "--network", "cube",
                "--k", "4",
                "--n", "2",
                "--algorithm", "dor",
                "--load", "0.2",
                "--profile", "fast",
            ]
        )
        assert code == 0
        assert "accepted=" in capsys.readouterr().out

    def test_sweep_small(self, capsys):
        code = main(
            [
                "sweep",
                "--network", "tree",
                "--k", "2",
                "--n", "2",
                "--vcs", "2",
                "--profile", "fast",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "saturation:" in out

    def test_drain(self, capsys):
        code = main(
            [
                "drain",
                "--network", "tree",
                "--k", "2",
                "--n", "2",
                "--vcs", "2",
                "--pattern", "complement",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "packets drained: 4" in out

    def test_drain_rejects_uniform(self, capsys):
        code = main(
            ["drain", "--network", "tree", "--k", "2", "--n", "2", "--vcs", "2"]
        )
        assert code == 2  # uniform is not a permutation

    def test_find_sat(self, capsys):
        code = main(
            [
                "find-sat",
                "--network", "cube",
                "--k", "4",
                "--n", "2",
                "--algorithm", "dor",
                "--profile", "fast",
                "--resolution", "0.2",
            ]
        )
        assert code == 0
        assert "saturation:" in capsys.readouterr().out

    def test_fig_plot_flag(self, capsys):
        # plotting is only wired for fig5/fig6
        args = build_parser().parse_args(["fig5", "--plot"])
        assert args.plot
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig7", "--plot"])

    def test_error_exit_code(self, capsys):
        # duato needs >= 3 VCs: ConfigurationError -> exit 2, message on stderr
        code = main(
            [
                "run",
                "--network", "cube",
                "--k", "4",
                "--n", "2",
                "--algorithm", "duato",
                "--vcs", "2",
                "--profile", "fast",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestObservability:
    RUN_ARGS = [
        "run", "--network", "cube", "--k", "4", "--n", "2",
        "--algorithm", "dor", "--load", "0.2", "--profile", "fast",
    ]

    def test_run_json_document(self, capsys):
        assert main(self.RUN_ARGS + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) >= {"format", "config", "result", "telemetry"}
        assert doc["config"]["load"] == 0.2
        assert doc["result"]["delivered_packets"] > 0
        assert doc["telemetry"]["cycles_per_sec"] > 0

    def test_run_json_round_trips_through_io(self, capsys):
        from repro.metrics.io import run_result_from_dict

        assert main(self.RUN_ARGS + ["--json"]) == 0
        result = run_result_from_dict(json.loads(capsys.readouterr().out))
        assert result.telemetry is not None

    def test_run_prints_telemetry_line(self, capsys):
        assert main(self.RUN_ARGS) == 0
        assert "cyc/s" in capsys.readouterr().out

    def test_sweep_json_includes_telemetry(self, capsys):
        from repro.experiments.sweep import clear_cache

        clear_cache()  # cached points are not re-simulated, so no rate
        code = main(
            [
                "sweep", "--network", "tree", "--k", "2", "--n", "2",
                "--vcs", "2", "--profile", "fast", "--json",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert set(doc) == {"format", "series", "telemetry"}
        assert doc["telemetry"]["points_simulated"] >= 1
        assert doc["telemetry"]["mean_cycles_per_sec"] > 0
        # live progress went to stderr, one line per point
        assert "[1/" in captured.err

    def test_trace_writes_chrome_loadable_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            [
                "trace", "--network", "tree", "--k", "2", "--n", "2",
                "--vcs", "2", "--pattern", "transpose", "--load", "0.3",
                "--profile", "fast", "--out", str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases >= {"X", "M"}
        assert "trace:" in capsys.readouterr().out

    def test_trace_both_formats_and_counters(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        counters = tmp_path / "counters.json"
        code = main(
            [
                "trace", "--network", "cube", "--k", "4", "--n", "2",
                "--algorithm", "dor", "--load", "0.2", "--profile", "fast",
                "--out", str(out), "--format", "both",
                "--counters", str(counters), "--window", "100",
            ]
        )
        assert code == 0
        assert out.exists()
        jsonl = out.with_suffix(".jsonl")
        assert jsonl.exists()
        assert all(json.loads(line) for line in jsonl.read_text().splitlines())
        cdoc = json.loads(counters.read_text())
        assert cdoc["window_cycles"] == 100
        assert cdoc["windows"]

    def test_run_prints_phase_split(self, capsys):
        assert main(self.RUN_ARGS) == 0
        assert "phases: link" in capsys.readouterr().out

    def test_trace_json_parity_with_run(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            [
                "trace", "--network", "tree", "--k", "2", "--n", "2",
                "--vcs", "2", "--load", "0.2", "--profile", "fast",
                "--out", str(out), "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        # same versioned run document as run --json ...
        assert set(doc) >= {"format", "config", "result", "telemetry"}
        assert doc["telemetry"]["phase_seconds"]["link"] > 0
        # ... plus the trace-specific section
        assert doc["trace"]["events"] > 0
        assert doc["trace"]["written"] == [str(out)]
        assert doc["trace"]["deadlock"] is None

    def test_cprofile_smoke(self, capsys):
        assert main(self.RUN_ARGS + ["--cprofile"]) == 0
        captured = capsys.readouterr()
        assert "accepted=" in captured.out
        assert "cumulative" in captured.err  # pstats table on stderr

    def test_cprofile_stats_file(self, tmp_path, capsys):
        import pstats

        stats = tmp_path / "run.pstats"
        assert main(self.RUN_ARGS + ["--cprofile", str(stats)]) == 0
        assert stats.exists()
        pstats.Stats(str(stats))  # parseable profile dump


class TestLedgerAndReport:
    SWEEP_ARGS = [
        "sweep", "--network", "tree", "--k", "2", "--n", "2",
        "--vcs", "2", "--profile", "fast",
    ]

    def test_run_appends_to_ledger(self, tmp_path, capsys):
        from repro.obs.ledger import Ledger

        ledger = tmp_path / "runs.jsonl"
        args = TestObservability.RUN_ARGS + ["--ledger", str(ledger)]
        assert main(args) == 0
        assert main(args) == 0  # same recipe again: deduplicated
        records = Ledger(ledger).query(kind="run")
        assert len(records) == 1
        assert records[0]["network"] == "cube"

    def test_sweep_ledger_holds_every_point(self, tmp_path, capsys):
        from repro.experiments.sweep import clear_cache
        from repro.obs.ledger import Ledger

        clear_cache()
        ledger = tmp_path / "runs.jsonl"
        assert main(self.SWEEP_ARGS + ["--ledger", str(ledger)]) == 0
        points = Ledger(ledger).query(kind="sweep")
        assert len(points) >= 2
        assert len({rec["load"] for rec in points}) == len(points)
        # replaying the sweep (now cache-warm) adds nothing
        assert main(self.SWEEP_ARGS + ["--ledger", str(ledger)]) == 0
        assert len(Ledger(ledger)) == len(points)

    def test_report_from_ledger(self, tmp_path, capsys):
        from repro.experiments.sweep import clear_cache

        clear_cache()
        ledger = tmp_path / "runs.jsonl"
        out = tmp_path / "scorecard.html"
        assert main(self.SWEEP_ARGS + ["--ledger", str(ledger)]) == 0
        capsys.readouterr()
        code = main(
            ["report", "--ledger", str(ledger), "--out", str(out),
             "--title", "small card"]
        )
        assert code == 0
        assert "scorecard:" in capsys.readouterr().out
        text = out.read_text()
        assert text.count("<svg") == 1
        assert "small card" in text

    def test_report_empty_ledger_is_an_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code = main(
            ["report", "--ledger", str(empty), "--out", str(tmp_path / "s.html")]
        )
        assert code == 2
        assert "no scorable runs" in capsys.readouterr().err

    def test_faults_ledger_keeps_every_fraction(self, tmp_path, capsys):
        from repro.obs.ledger import Ledger

        ledger = tmp_path / "runs.jsonl"
        code = main(
            [
                "faults", "--network", "cube", "--k", "4", "--n", "2",
                "--profile", "fast", "--fractions", "0,0.1",
                "--ledger", str(ledger),
            ]
        )
        assert code == 0
        # same config+seed at both fractions: dedup must be off for faults
        assert len(Ledger(ledger).query(kind="faults")) == 2


class TestFaultsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.load == 1.0
        assert args.fractions == "0,0.05,0.1,0.2"
        assert not args.transient

    def test_degradation_table_cube(self, capsys):
        code = main(
            [
                "faults",
                "--network", "cube",
                "--k", "4",
                "--n", "2",
                "--profile", "fast",
                "--fractions", "0,0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cube fault degradation" in out
        assert "escape frac" in out

    def test_degradation_table_tree(self, capsys):
        code = main(
            [
                "faults",
                "--network", "tree",
                "--k", "2",
                "--n", "3",
                "--vcs", "2",
                "--profile", "fast",
                "--fractions", "0,0.2",
            ]
        )
        assert code == 0
        assert "tree fault degradation" in capsys.readouterr().out

    def test_transient_timeline(self, capsys):
        code = main(
            [
                "faults",
                "--network", "cube",
                "--k", "4",
                "--n", "2",
                "--profile", "fast",
                "--transient",
                "--fraction", "0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "failed mid-run" in out
        assert "delivered flits per interval" in out

    def test_bad_fractions_exit_code(self, capsys):
        code = main(["faults", "--network", "tree", "--fractions", "0,x", "--profile", "fast"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
