"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.network == "tree"
        assert args.load == 0.5

    def test_fig_pattern_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--pattern", "tornado"])

    def test_sweep_accepts_extension_patterns(self):
        args = build_parser().parse_args(["sweep", "--pattern", "tornado"])
        assert args.pattern == "tornado"


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert "6.340" in out

    def test_info_tree(self, capsys):
        assert main(["info", "--network", "tree"]) == 0
        out = capsys.readouterr().out
        assert "KAryNTree" in out
        assert "1.0 flits/cycle" in out

    def test_info_cube(self, capsys):
        assert main(["info", "--network", "cube", "--k", "4", "--n", "2"]) == 0
        out = capsys.readouterr().out
        assert "16 nodes" in out

    def test_run_small(self, capsys):
        code = main(
            [
                "run",
                "--network", "cube",
                "--k", "4",
                "--n", "2",
                "--algorithm", "dor",
                "--load", "0.2",
                "--profile", "fast",
            ]
        )
        assert code == 0
        assert "accepted=" in capsys.readouterr().out

    def test_sweep_small(self, capsys):
        code = main(
            [
                "sweep",
                "--network", "tree",
                "--k", "2",
                "--n", "2",
                "--vcs", "2",
                "--profile", "fast",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "saturation:" in out

    def test_drain(self, capsys):
        code = main(
            [
                "drain",
                "--network", "tree",
                "--k", "2",
                "--n", "2",
                "--vcs", "2",
                "--pattern", "complement",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "packets drained: 4" in out

    def test_drain_rejects_uniform(self, capsys):
        code = main(
            ["drain", "--network", "tree", "--k", "2", "--n", "2", "--vcs", "2"]
        )
        assert code == 2  # uniform is not a permutation

    def test_find_sat(self, capsys):
        code = main(
            [
                "find-sat",
                "--network", "cube",
                "--k", "4",
                "--n", "2",
                "--algorithm", "dor",
                "--profile", "fast",
                "--resolution", "0.2",
            ]
        )
        assert code == 0
        assert "saturation:" in capsys.readouterr().out

    def test_fig_plot_flag(self, capsys):
        # plotting is only wired for fig5/fig6
        args = build_parser().parse_args(["fig5", "--plot"])
        assert args.plot
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig7", "--plot"])

    def test_error_exit_code(self, capsys):
        # duato needs >= 3 VCs: ConfigurationError -> exit 2, message on stderr
        code = main(
            [
                "run",
                "--network", "cube",
                "--k", "4",
                "--n", "2",
                "--algorithm", "duato",
                "--vcs", "2",
                "--profile", "fast",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestFaultsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.load == 1.0
        assert args.fractions == "0,0.05,0.1,0.2"
        assert not args.transient

    def test_degradation_table_cube(self, capsys):
        code = main(
            [
                "faults",
                "--network", "cube",
                "--k", "4",
                "--n", "2",
                "--profile", "fast",
                "--fractions", "0,0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cube fault degradation" in out
        assert "escape frac" in out

    def test_degradation_table_tree(self, capsys):
        code = main(
            [
                "faults",
                "--network", "tree",
                "--k", "2",
                "--n", "3",
                "--vcs", "2",
                "--profile", "fast",
                "--fractions", "0,0.2",
            ]
        )
        assert code == 0
        assert "tree fault degradation" in capsys.readouterr().out

    def test_transient_timeline(self, capsys):
        code = main(
            [
                "faults",
                "--network", "cube",
                "--k", "4",
                "--n", "2",
                "--profile", "fast",
                "--transient",
                "--fraction", "0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "failed mid-run" in out
        assert "delivered flits per interval" in out

    def test_bad_fractions_exit_code(self, capsys):
        code = main(["faults", "--network", "tree", "--fractions", "0,x", "--profile", "fast"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
