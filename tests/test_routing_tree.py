"""Unit tests for adaptive tree routing (repro.routing.tree_adaptive)."""

import pytest

from repro.errors import ConfigurationError
from repro.routing.base import make_routing
from repro.sim.packet import Packet
from repro.sim.run import build_engine, cube_config, tree_config


def pkt(dst, size=8):
    return Packet(pid=0, src=0, dst=dst, size=size, created=0)


def first_inlane(engine, switch):
    for port_lanes in engine.in_lanes[switch]:
        if port_lanes:
            return port_lanes[0]
    raise AssertionError("switch has no input lanes")


class TestSelect:
    def test_descend_at_leaf(self, tree_engine):
        # dst 1 is under leaf switch 0: must take down port 1
        topo = tree_engine.topology
        leaf = topo.leaf_switch(0)
        lane = tree_engine.routing.select(leaf, first_inlane(tree_engine, leaf), pkt(1))
        assert lane is not None
        assert lane.port == 1
        assert lane.switch == leaf

    def test_ascend_at_leaf(self, tree_engine):
        # dst 15 is not under leaf switch 0: must take an up port (4..7)
        topo = tree_engine.topology
        leaf = topo.leaf_switch(0)
        lane = tree_engine.routing.select(leaf, first_inlane(tree_engine, leaf), pkt(15))
        assert lane is not None
        assert lane.port in topo.up_ports()

    def test_descend_at_root(self, tree_engine):
        topo = tree_engine.topology
        root = topo.switch_id(1, (), (0,))
        lane = tree_engine.routing.select(root, first_inlane(tree_engine, root), pkt(14))
        assert lane is not None
        assert lane.port == 3  # digit p0 of 14 = 3

    def test_ascending_spreads_over_up_ports(self, tree_engine):
        topo = tree_engine.topology
        leaf = topo.leaf_switch(0)
        inlane = first_inlane(tree_engine, leaf)
        seen = set()
        for _ in range(100):
            lane = tree_engine.routing.select(leaf, inlane, pkt(15))
            seen.add(lane.port)
        assert seen == set(topo.up_ports())  # all 4 choices exercised

    def test_least_loaded_link_preferred(self, tree_engine):
        topo = tree_engine.topology
        leaf = topo.leaf_switch(0)
        inlane = first_inlane(tree_engine, leaf)
        # occupy every VC of up ports 4, 5, 6 -> only port 7 has free VCs
        blocker = pkt(15)
        for port in (4, 5, 6):
            for lane in tree_engine.out_lanes[leaf][port]:
                lane.packet = blocker
        for _ in range(20):
            lane = tree_engine.routing.select(leaf, inlane, pkt(15))
            assert lane.port == 7

    def test_partial_load_prefers_emptier_link(self, tree_engine):
        topo = tree_engine.topology
        leaf = topo.leaf_switch(0)
        inlane = first_inlane(tree_engine, leaf)
        # ports 4..6: one of two VCs busy; port 7: both free
        blocker = pkt(15)
        for port in (4, 5, 6):
            tree_engine.out_lanes[leaf][port][0].packet = blocker
        for _ in range(20):
            lane = tree_engine.routing.select(leaf, inlane, pkt(15))
            assert lane.port == 7

    def test_stall_when_all_busy(self, tree_engine):
        topo = tree_engine.topology
        leaf = topo.leaf_switch(0)
        inlane = first_inlane(tree_engine, leaf)
        blocker = pkt(15)
        for port in topo.up_ports():
            for lane in tree_engine.out_lanes[leaf][port]:
                lane.packet = blocker
        assert tree_engine.routing.select(leaf, inlane, pkt(15)) is None

    def test_busy_sink_blocks_allocation(self, tree_engine):
        # a lane whose downstream input lane still drains is not free
        topo = tree_engine.topology
        leaf = topo.leaf_switch(0)
        inlane = first_inlane(tree_engine, leaf)
        blocker = pkt(1)
        for port in topo.up_ports():
            for lane in tree_engine.out_lanes[leaf][port]:
                lane.sink.packet = blocker
        assert tree_engine.routing.select(leaf, inlane, pkt(15)) is None

    def test_down_choice_uses_any_free_vc(self, tree_engine):
        topo = tree_engine.topology
        leaf = topo.leaf_switch(0)
        inlane = first_inlane(tree_engine, leaf)
        tree_engine.out_lanes[leaf][1][0].packet = pkt(1)
        lane = tree_engine.routing.select(leaf, inlane, pkt(1))
        assert lane.vc == 1


class TestWiringChecks:
    def test_requires_tree_topology(self, cube_engine_dor):
        algo = make_routing("tree_adaptive")
        with pytest.raises(ConfigurationError, match="KAryNTree"):
            algo.attach(cube_engine_dor)


class TestMinimality:
    def test_simulated_paths_are_minimal(self):
        # run a permutation at light load on a 2-ary 3-tree and verify
        # every delivered packet met the analytic zero-load latency bound
        eng = build_engine(
            tree_config(
                k=2, n=3, vcs=2, pattern="complement", load=0.05,
                warmup_cycles=0, total_cycles=2500, seed=3, collect_latencies=True,
            )
        )
        res = eng.run()
        eng.audit()
        assert res.delivered_packets > 10
        from repro.metrics.analytic import path_channels, zero_load_latency

        topo = eng.topology
        # complement of any src is at maximal distance in this tree
        lmin = zero_load_latency(path_channels(topo, 0, 7), eng.config.packet_flits)
        assert all(lat >= lmin for lat in res.latencies)
