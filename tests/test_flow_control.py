"""Behavioral tests of the wormhole flow-control mechanics (paper §4).

These pin down the mechanisms the paper's results hinge on: virtual
channels multiplexing one physical link fairly, and single-VC head-of-line
blocking — the cause of the 1-VC fat-tree's poor throughput (§8).
"""

import pytest

from repro.metrics.analytic import zero_load_latency
from repro.sim.run import build_engine, tree_config


def two_packet_engine(vcs: int):
    """Two packets that must share the single channel into leaf switch 1.

    4-ary 2-tree: nodes 0 and 1 sit on leaf switch 0; both send to nodes
    4 and 5 on leaf switch 1.  Ascents can diverge, but if both pick the
    same root their descents share one root→leaf channel; with a single
    VC the second worm then waits for the first's tail.
    """
    eng = build_engine(
        tree_config(k=4, n=2, vcs=vcs, load=0.0, warmup_cycles=0, total_cycles=2000)
    )
    eng.preload_packet(0, 4)
    eng.preload_packet(1, 5)
    return eng


S = 32  # tree packet size
L0 = zero_load_latency(4, S)  # both paths are 4 channels


class TestVirtualChannelMultiplexing:
    def test_disjoint_roots_when_available(self):
        # with adaptive routing and free choice of 4 roots, the two
        # packets normally avoid each other entirely: both near L0
        eng = two_packet_engine(vcs=2)
        res = eng.run()
        eng.audit()
        assert res.delivered_packets == 2
        assert res.latency_max <= 2 * L0  # never catastrophically serialized

    def test_forced_sharing_interleaves_fairly(self):
        # pin both packets onto one root by failing the ascent channels
        # to the other three roots from both source leaf switches... the
        # cleanest forcing is a 1-ary ascent: use a 2-ary tree where leaf
        # switches have 2 up ports and fail one of them.
        from repro.faults import inject_tree_uplink_faults

        eng = build_engine(
            tree_config(k=2, n=2, vcs=2, load=0.0, warmup_cycles=0, total_cycles=2000)
        )
        # leaf switch 0 hosts nodes 0 and 1; kill up port 3 -> single root
        inject_tree_uplink_faults(eng, [(0, 3)])
        eng.preload_packet(0, 2)
        eng.preload_packet(1, 3)
        res = eng.run()
        eng.audit()
        assert res.delivered_packets == 2
        size = eng.config.packet_flits
        base = zero_load_latency(4, size)
        # the shared leaf->root link halves each worm's bandwidth: both
        # packets finish around base + size (interleaved), not base and
        # base + size (serialized) — fair multiplexing stretches both
        lats = sorted((res.latency_max, res.latency_sum - res.latency_max))
        assert lats[0] > base + size // 2  # even the "faster" one was slowed
        assert lats[1] <= base + 2 * size


class TestHeadOfLineBlocking:
    def test_single_vc_serializes_shared_channel(self):
        from repro.faults import inject_tree_uplink_faults

        eng = build_engine(
            tree_config(k=2, n=2, vcs=1, load=0.0, warmup_cycles=0, total_cycles=2000)
        )
        inject_tree_uplink_faults(eng, [(0, 3)])
        eng.preload_packet(0, 2)
        eng.preload_packet(1, 3)
        res = eng.run()
        eng.audit()
        assert res.delivered_packets == 2
        size = eng.config.packet_flits
        base = zero_load_latency(4, size)
        first = min(res.latency_max, res.latency_sum - res.latency_max)
        second = res.latency_max
        # with one VC the first worm owns the shared channel: it meets the
        # zero-load bound, and the second strictly trails it
        assert first == pytest.approx(base, abs=2)
        assert second >= first + size - 4