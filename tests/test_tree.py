"""Unit tests for k-ary n-trees (repro.topology.tree)."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.topology.tree import KAryNTree


@pytest.fixture(scope="module")
def tree44():
    return KAryNTree(4, 4)


@pytest.fixture(scope="module")
def tree42():
    return KAryNTree(4, 2)


class TestCounts:
    def test_paper_network(self, tree44):
        assert tree44.num_nodes == 256
        assert tree44.num_switches == 256  # n * k**(n-1) = 4 * 64
        assert tree44.switches_per_level == 64

    def test_small(self):
        t = KAryNTree(2, 3)
        assert t.num_nodes == 8
        assert t.num_switches == 3 * 4

    def test_ports(self, tree44):
        assert tree44.ports_per_switch() == 8
        assert list(tree44.down_ports()) == [0, 1, 2, 3]
        assert list(tree44.up_ports()) == [4, 5, 6, 7]

    def test_link_count(self, tree44):
        # (n-1) inter-level layers of k**n channels each
        assert len(tree44.switch_links()) == 3 * 256
        assert len(tree44.node_links()) == 256

    def test_validation(self):
        with pytest.raises(TopologyError):
            KAryNTree(1, 2)
        with pytest.raises(TopologyError):
            KAryNTree(4, 0)


class TestIdentity:
    def test_round_trip(self, tree44):
        for s in range(tree44.num_switches):
            level, a, b = tree44.switch_identity(s)
            assert tree44.switch_id(level, a, b) == s
            assert len(a) == tree44.n - 1 - level
            assert len(b) == level

    def test_identity_validation(self, tree44):
        with pytest.raises(TopologyError):
            tree44.switch_id(0, (0, 0), (0,))  # wrong digit split
        with pytest.raises(TopologyError):
            tree44.switch_id(4, (), (0, 0, 0))  # level out of range
        with pytest.raises(TopologyError):
            tree44.switch_identity(tree44.num_switches)

    def test_levels(self, tree42):
        assert [tree42.level_of(s) for s in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]


class TestCoverage:
    def test_leaf_switch_covers_its_nodes(self, tree44):
        for node in range(tree44.num_nodes):
            leaf = tree44.leaf_switch(node)
            lo, hi = tree44.covered_range(leaf)
            assert lo <= node < hi
            assert hi - lo == 4

    def test_roots_cover_everything(self, tree44):
        for s in range(tree44.num_switches):
            if tree44.level_of(s) == tree44.n - 1:
                assert tree44.covered_range(s) == (0, 256)

    def test_cover_sizes_by_level(self, tree44):
        for s in range(tree44.num_switches):
            lo, hi = tree44.covered_range(s)
            assert hi - lo == 4 ** (tree44.level_of(s) + 1)

    def test_is_ancestor(self, tree42):
        leaf0 = tree42.leaf_switch(0)
        assert tree42.is_ancestor(leaf0, 0)
        assert tree42.is_ancestor(leaf0, 3)
        assert not tree42.is_ancestor(leaf0, 4)


class TestWiring:
    def test_down_up_port_pairing(self, tree44):
        # every switch link joins a down port (0..k-1) to an up port (k..2k-1)
        for link in tree44.switch_links():
            assert 0 <= link.port_a < 4
            assert 4 <= link.port_b < 8
            assert tree44.level_of(link.switch_a) == tree44.level_of(link.switch_b) + 1

    def test_each_port_wired_once(self, tree44):
        used = set()
        for link in tree44.switch_links():
            for key in ((link.switch_a, link.port_a), (link.switch_b, link.port_b)):
                assert key not in used
                used.add(key)
        for nl in tree44.node_links():
            key = (nl.switch, nl.port)
            assert key not in used
            used.add(key)
        # unwired ports are exactly the root up-ports (external connections)
        total_ports = tree44.num_switches * 8
        roots = tree44.switches_per_level
        assert len(used) == total_ports - roots * 4

    def test_child_covered_by_parent(self, tree44):
        for link in tree44.switch_links():
            plo, phi = tree44.covered_range(link.switch_a)
            clo, chi = tree44.covered_range(link.switch_b)
            assert plo <= clo and chi <= phi

    def test_connected(self, tree42):
        assert nx.is_connected(tree42.to_networkx())


class TestRouting:
    def test_down_port_reaches_node(self, tree42):
        # following down_port_towards from any ancestor must land on dst
        for node in range(tree42.num_nodes):
            for s in range(tree42.num_switches):
                if not tree42.is_ancestor(s, node):
                    continue
                port = tree42.down_port_towards(s, node)
                level = tree42.level_of(s)
                if level == 0:
                    assert node == tree42.covered_range(s)[0] + port
                else:
                    # the child on that port still covers the node
                    children = [
                        link.switch_b
                        for link in tree42.switch_links()
                        if link.switch_a == s and link.port_a == port
                    ]
                    assert len(children) == 1
                    assert tree42.is_ancestor(children[0], node)

    def test_down_port_requires_ancestor(self, tree42):
        with pytest.raises(TopologyError):
            tree42.down_port_towards(tree42.leaf_switch(0), 15)


class TestDistances:
    def test_nca_level_symmetry(self, tree44):
        for src, dst in [(0, 1), (0, 4), (0, 16), (0, 255), (100, 101)]:
            assert tree44.nca_level(src, dst) == tree44.nca_level(dst, src)

    def test_nca_examples(self, tree44):
        assert tree44.nca_level(0, 1) == 0  # same leaf switch
        assert tree44.nca_level(0, 4) == 1
        assert tree44.nca_level(0, 255) == 3

    def test_nca_undefined_for_self(self, tree44):
        with pytest.raises(TopologyError):
            tree44.nca_level(5, 5)

    def test_min_distance_zero_for_self(self, tree44):
        assert tree44.min_distance(9, 9) == 0

    def test_min_distance_against_networkx(self, tree42):
        g = tree42.to_networkx()
        for src in range(tree42.num_nodes):
            for dst in range(tree42.num_nodes):
                expect = nx.shortest_path_length(g, ("node", src), ("node", dst))
                assert tree42.min_distance(src, dst) == expect

    def test_min_distance_against_networkx_larger(self):
        t = KAryNTree(2, 3)
        g = t.to_networkx()
        for src in range(t.num_nodes):
            for dst in range(t.num_nodes):
                expect = nx.shortest_path_length(g, ("node", src), ("node", dst))
                assert t.min_distance(src, dst) == expect


class TestCongestionFree:
    def test_complement_is_congestion_free(self, tree44):
        from repro.traffic.address import bit_complement

        perm = [bit_complement(s, 8) for s in range(256)]
        assert tree44.is_congestion_free(perm)

    def test_identity_is_congestion_free(self, tree44):
        assert tree44.is_congestion_free(list(range(256)))

    def test_all_to_one_subtree_is_not(self, tree42):
        # everyone sends into leaf-switch 0's subtree: heavy descent conflicts
        perm = {s: s % 4 for s in range(4, 16)}
        assert not tree42.is_congestion_free(perm)

    def test_dict_and_list_forms_agree(self, tree42):
        from repro.traffic.address import bit_complement

        as_list = [bit_complement(s, 4) for s in range(16)]
        as_dict = dict(enumerate(as_list))
        assert tree42.is_congestion_free(as_list) == tree42.is_congestion_free(as_dict)

    def test_rejects_bad_nodes(self, tree42):
        with pytest.raises(TopologyError):
            tree42.is_congestion_free({0: 99})
