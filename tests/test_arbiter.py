"""Unit tests for fair arbitration (repro.router.arbiter): round-robin
rotation and its bounded-wait guarantee, and the age-based (oldest
packet first) alternative selectable via ``config.arbiter``."""

import random

import pytest

from repro.router.arbiter import (
    ARBITER_POLICIES,
    AgeArbiter,
    RoundRobinArbiter,
    oldest_pick,
    round_robin_pick,
)


class TestRoundRobinPick:
    def test_picks_first_eligible_from_start(self):
        items = ["a", "b", "c", "d"]
        nxt, item = round_robin_pick(items, 1, lambda x: x in ("c", "a"))
        assert item == "c"
        assert nxt == 3

    def test_wraps_around(self):
        items = ["a", "b", "c"]
        nxt, item = round_robin_pick(items, 2, lambda x: x == "a")
        assert item == "a"
        assert nxt == 1

    def test_none_eligible(self):
        nxt, item = round_robin_pick([1, 2, 3], 0, lambda x: False)
        assert item is None
        assert nxt == 0

    def test_empty(self):
        nxt, item = round_robin_pick([], 5, lambda x: True)
        assert item is None

    def test_rotation_is_fair(self):
        items = [0, 1, 2]
        start = 0
        picks = []
        for _ in range(6):
            start, item = round_robin_pick(items, start, lambda x: True)
            picks.append(item)
        assert picks == [0, 1, 2, 0, 1, 2]


class TestRoundRobinArbiter:
    def test_grants_rotate(self):
        arb = RoundRobinArbiter(3)
        grants = [arb.grant([True, True, True]) for _ in range(6)]
        assert grants == [0, 1, 2, 0, 1, 2]

    def test_no_requests(self):
        arb = RoundRobinArbiter(2)
        assert arb.grant([False, False]) is None

    def test_no_starvation(self):
        # input 2 requests constantly, 0 intermittently; both get served
        arb = RoundRobinArbiter(3)
        served = {0: 0, 2: 0}
        for i in range(20):
            req = [i % 2 == 0, False, True]
            g = arb.grant(req)
            if g is not None:
                served[g] += 1
        assert served[0] > 0 and served[2] > 0

    def test_size_validation(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)
        arb = RoundRobinArbiter(2)
        with pytest.raises(ValueError):
            arb.grant([True])

    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_bounded_wait_property(self, seed):
        # the no-starvation guarantee, as a property over random request
        # patterns: a persistently-requesting input is granted within
        # ``size`` grants of any other grant
        size = 6
        target = 2
        arb = RoundRobinArbiter(size)
        rng = random.Random(seed)
        since_target = 0
        for _ in range(500):
            requests = [rng.random() < 0.5 for _ in range(size)]
            requests[target] = True
            granted = arb.grant(requests)
            assert granted is not None  # the target always requests
            if granted == target:
                since_target = 0
            else:
                since_target += 1
                assert since_target < size


class TestOldestPick:
    def test_picks_smallest_age_among_eligible(self):
        items = [("a", 30), ("b", 10), ("c", 5), ("d", 20)]
        pick = oldest_pick(
            items, lambda x: x[0] != "c", age=lambda x: x[1]
        )
        assert pick == ("b", 10)  # c is oldest but ineligible

    def test_ties_break_on_lowest_index(self):
        items = [("a", 7), ("b", 7)]
        assert oldest_pick(items, lambda x: True, age=lambda x: x[1]) == ("a", 7)

    def test_none_eligible(self):
        assert oldest_pick([1, 2], lambda x: False, age=lambda x: x) is None


class TestAgeArbiter:
    def test_grants_oldest_requester(self):
        arb = AgeArbiter(4)
        assert arb.grant([True, True, False, True], [40, 12, 1, 33]) == 1

    def test_ties_break_on_lowest_index(self):
        arb = AgeArbiter(3)
        assert arb.grant([True, True, True], [5, 5, 5]) == 0

    def test_no_requests(self):
        arb = AgeArbiter(2)
        assert arb.grant([False, False], [1, 2]) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            AgeArbiter(0)
        arb = AgeArbiter(2)
        with pytest.raises(ValueError):
            arb.grant([True], [1])
        with pytest.raises(ValueError):
            arb.grant([True, True], [1])

    def test_age_order_is_starvation_free(self):
        # churn: every round a fresh (younger) request appears, yet the
        # population drains strictly oldest-first, so the early packets
        # are never starved by the late arrivals
        arb = AgeArbiter(8)
        ages = [None] * 8
        next_age = 0
        for slot in range(4):  # pre-fill half the inputs
            ages[slot] = next_age
            next_age += 3
        drained = []
        rng = random.Random(5)
        for _ in range(30):
            free = [i for i, a in enumerate(ages) if a is None]
            if free:  # a younger packet joins at a random free input
                ages[rng.choice(free)] = next_age
                next_age += 3
            requests = [a is not None for a in ages]
            granted = arb.grant(requests, [a or 0 for a in ages])
            drained.append(ages[granted])
            ages[granted] = None
        assert drained == sorted(drained)


class TestArbiterConfigKnob:
    """``config.arbiter`` selects the policy engine-wide."""

    def test_policies_registry_matches_config_validation(self):
        from repro.errors import ConfigurationError

        from .conftest import small_tree_config

        assert set(ARBITER_POLICIES) == {"round_robin", "age"}
        for policy in ARBITER_POLICIES:
            small_tree_config(arbiter=policy)  # validates
        with pytest.raises(ConfigurationError, match="arbiter"):
            small_tree_config(arbiter="lottery")

    def test_age_arbitration_changes_the_run(self):
        from repro.sim.run import simulate

        from .conftest import small_tree_config

        rr = simulate(small_tree_config(load=0.8))
        age = simulate(small_tree_config(load=0.8, arbiter="age"))
        assert age.delivered_packets > 0
        # the policy is live: under contention the grant order differs
        assert (
            rr.latency_sum != age.latency_sum
            or rr.delivered_packets != age.delivered_packets
        )
