"""Unit tests for fair arbitration (repro.router.arbiter)."""

import pytest

from repro.router.arbiter import RoundRobinArbiter, round_robin_pick


class TestRoundRobinPick:
    def test_picks_first_eligible_from_start(self):
        items = ["a", "b", "c", "d"]
        nxt, item = round_robin_pick(items, 1, lambda x: x in ("c", "a"))
        assert item == "c"
        assert nxt == 3

    def test_wraps_around(self):
        items = ["a", "b", "c"]
        nxt, item = round_robin_pick(items, 2, lambda x: x == "a")
        assert item == "a"
        assert nxt == 1

    def test_none_eligible(self):
        nxt, item = round_robin_pick([1, 2, 3], 0, lambda x: False)
        assert item is None
        assert nxt == 0

    def test_empty(self):
        nxt, item = round_robin_pick([], 5, lambda x: True)
        assert item is None

    def test_rotation_is_fair(self):
        items = [0, 1, 2]
        start = 0
        picks = []
        for _ in range(6):
            start, item = round_robin_pick(items, start, lambda x: True)
            picks.append(item)
        assert picks == [0, 1, 2, 0, 1, 2]


class TestRoundRobinArbiter:
    def test_grants_rotate(self):
        arb = RoundRobinArbiter(3)
        grants = [arb.grant([True, True, True]) for _ in range(6)]
        assert grants == [0, 1, 2, 0, 1, 2]

    def test_no_requests(self):
        arb = RoundRobinArbiter(2)
        assert arb.grant([False, False]) is None

    def test_no_starvation(self):
        # input 2 requests constantly, 0 intermittently; both get served
        arb = RoundRobinArbiter(3)
        served = {0: 0, 2: 0}
        for i in range(20):
            req = [i % 2 == 0, False, True]
            g = arb.grant(req)
            if g is not None:
                served[g] += 1
        assert served[0] > 0 and served[2] > 0

    def test_size_validation(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)
        arb = RoundRobinArbiter(2)
        with pytest.raises(ValueError):
            arb.grant([True])
