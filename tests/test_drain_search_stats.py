"""Unit tests for drains, saturation search and replication statistics."""

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.experiments.drain import drain_permutation
from repro.experiments.search import SaturationEstimate, find_saturation, is_saturated
from repro.experiments.stats import replicate_point, t_confidence
from repro.experiments.sweep import clear_cache
from repro.metrics.analytic import expected_zero_load_latency
from repro.sim.run import cube_config, tree_config


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestDrain:
    def test_complement_drain_on_tree(self):
        result = drain_permutation(tree_config(k=2, n=2, vcs=2, pattern="complement"))
        assert result.packets == 4
        assert result.makespan_cycles >= result.config.packet_flits
        assert result.avg_latency_cycles <= result.max_latency_cycles
        assert result.throughput_flits_per_cycle > 0

    def test_drain_latency_bounded_below_by_model(self):
        from repro.topology.cube import KAryNCube
        from repro.traffic.address import bit_complement

        cfg = cube_config(k=4, n=2, algorithm="duato", pattern="complement")
        result = drain_permutation(cfg)
        assert result.packets == 16
        lower = expected_zero_load_latency(
            KAryNCube(4, 2), cfg.packet_flits, mapping=lambda s: bit_complement(s, 4)
        )
        # contention can only add latency
        assert result.avg_latency_cycles >= lower - 1e-9

    def test_drain_rejects_random_patterns(self):
        with pytest.raises(ConfigurationError, match="permutation"):
            drain_permutation(tree_config(k=2, n=2, pattern="uniform"))

    def test_drain_ignores_fixed_points(self):
        result = drain_permutation(tree_config(k=2, n=2, vcs=1, pattern="bitrev"))
        assert result.packets == 2  # 2 palindromes among 4 two-bit labels

    def test_identity_like_pattern_rejected(self):
        # shuffle on N=2 nodes fixes everything -> nothing to drain
        with pytest.raises(ConfigurationError):
            drain_permutation(tree_config(k=2, n=1, vcs=1, pattern="shuffle"))

    def test_drain_faster_for_congestion_free_pattern(self):
        free = drain_permutation(tree_config(k=4, n=2, vcs=1, pattern="complement"))
        congested = drain_permutation(tree_config(k=4, n=2, vcs=1, pattern="bitrev"))
        # per-packet normalized drain time (bitrev moves fewer packets)
        assert free.makespan_cycles / free.packets < congested.makespan_cycles / congested.packets


class TestSaturationSearch:
    @staticmethod
    def factory(load):
        return cube_config(
            k=4, n=2, algorithm="dor", load=load, seed=5,
            warmup_cycles=200, total_cycles=1700,
        )

    def test_bisection_brackets(self):
        est = find_saturation(self.factory, lo=0.05, hi=1.0, resolution=0.1)
        assert isinstance(est, SaturationEstimate)
        assert est.lo <= est.load <= est.hi
        assert 0.1 < est.load < 0.9  # the small cube saturates mid-range
        assert est.uncertainty <= 0.25
        assert est.evaluations <= 12

    def test_unsaturated_network_returns_hi(self):
        est = find_saturation(self.factory, lo=0.02, hi=0.1)
        assert est.load == 0.1
        assert est.uncertainty == 0

    def test_invalid_bracket(self):
        with pytest.raises(AnalysisError):
            find_saturation(self.factory, lo=0.5, hi=0.2)

    def test_is_saturated_consistency(self):
        from repro.experiments.sweep import run_point

        low = run_point(self.factory(0.1))
        high = run_point(self.factory(1.0))
        assert not is_saturated(low)
        assert is_saturated(high)


class TestStatistics:
    def test_t_confidence_known_values(self):
        est = t_confidence([1.0, 2.0, 3.0])
        assert est.mean == pytest.approx(2.0)
        # s = 1, n = 3, t(2) = 4.303 -> hw = 4.303/sqrt(3)
        assert est.half_width == pytest.approx(4.303 / 3**0.5, rel=1e-3)
        assert est.lo < est.mean < est.hi

    def test_t_confidence_needs_two(self):
        with pytest.raises(AnalysisError):
            t_confidence([1.0])

    def test_zero_variance(self):
        est = t_confidence([5.0, 5.0, 5.0, 5.0])
        assert est.half_width == 0.0

    def test_large_sample_uses_normal(self):
        est = t_confidence([0.0, 1.0] * 40)
        assert est.half_width == pytest.approx(1.96 * (0.5031 / 80**0.5) ** 1, rel=0.05)

    def test_replicate_point(self):
        point = replicate_point(
            lambda seed: cube_config(
                k=4, n=2, algorithm="dor", load=0.2, seed=seed,
                warmup_cycles=200, total_cycles=1200,
            ),
            seeds=(1, 2, 3, 4),
        )
        assert point.load == 0.2
        assert point.accepted.samples == 4
        # at 20% load the point is comfortably unsaturated: accepted ~ 0.2
        assert point.accepted.mean == pytest.approx(0.2, abs=0.04)
        assert point.latency_cycles is not None
        assert point.latency_cycles.mean > 0

    def test_replicate_needs_seeds(self):
        with pytest.raises(ConfigurationError):
            replicate_point(lambda seed: cube_config(k=4, n=2, seed=seed), seeds=(1,))

    def test_replicate_rejects_varying_load(self):
        seeds = iter((0.1, 0.2, 0.3))

        def bad(seed):
            return cube_config(
                k=4, n=2, algorithm="dor", load=next(seeds), seed=seed,
                warmup_cycles=50, total_cycles=300,
            )

        with pytest.raises(ConfigurationError, match="fixed"):
            replicate_point(bad, seeds=(1, 2, 3))