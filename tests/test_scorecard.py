"""HTML reproduction scorecard (repro.obs.report)."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import AnalysisError
from repro.obs.report import (
    figures_from_results,
    paper_reference,
    render_scorecard,
    write_scorecard,
)
from repro.sim.run import simulate

from .conftest import small_cube_config, small_tree_config


@pytest.fixture(scope="module")
def mixed_results():
    """A small two-figure result set: tree sweep + one cube point."""
    tree = [
        simulate(small_tree_config(load=load, seed=3)) for load in (0.1, 0.3, 0.6)
    ]
    cube = [simulate(small_cube_config(load=0.2, seed=3))]
    return tree + cube


class TestPaperReference:
    def test_fig5_lookup_by_vcs(self):
        ref = paper_reference("tree", 4, 4, "tree_adaptive", 4, "uniform")
        assert ref.figure == "Fig 5"
        assert ref.saturation == 0.72
        assert paper_reference("tree", 4, 4, "tree_adaptive", 1, "uniform").saturation == 0.36

    def test_fig6_lookup_by_algorithm(self):
        dor = paper_reference("cube", 16, 2, "dor", 4, "uniform")
        duato = paper_reference("cube", 16, 2, "duato", 4, "uniform")
        assert dor.figure == duato.figure == "Fig 6"
        assert dor.saturation == 0.60
        assert duato.saturation == 0.80
        assert dor.latency_presat == 70.0

    def test_unreported_configurations_have_no_ref(self):
        # wrong shape, wrong vcs, extension pattern: all unscored
        assert paper_reference("tree", 2, 2, "tree_adaptive", 2, "uniform") is None
        assert paper_reference("cube", 16, 2, "dor", 2, "uniform") is None
        assert paper_reference("cube", 16, 2, "dor", 4, "tornado") is None


class TestFigures:
    def test_grouping(self, mixed_results):
        figures = figures_from_results(mixed_results)
        assert len(figures) == 2  # one per (network, k, n, pattern)
        by_title = {f.title: f for f in figures}
        tree = by_title["tree 2-ary 2-dim, uniform traffic"]
        assert len(tree.series) == 1
        assert len(tree.series[0].points) == 3
        assert tree.saturation[tree.series[0].label] > 0

    def test_small_networks_are_unscored(self, mixed_results):
        # test-sized shapes are not paper configurations
        for fig in figures_from_results(mixed_results):
            assert fig.refs == {}
            assert fig.score is None

    def test_fidelity_is_relative_saturation_error(self, mixed_results):
        figures = figures_from_results(mixed_results)
        fig = figures[1]  # tree
        label = fig.series[0].label
        # graft a synthetic paper ref and recompute the score by hand
        sat = fig.saturation[label]
        ref_sat = sat / 0.8  # measured is 20% below "paper"
        fig.fidelity[label] = max(0.0, 1.0 - abs(sat - ref_sat) / ref_sat)
        assert fig.score == pytest.approx(0.8, abs=1e-9)

    def test_empty_results_rejected(self):
        with pytest.raises(AnalysisError, match="no runs"):
            figures_from_results([])


class TestHtml:
    def test_one_svg_per_figure_and_well_formed(self, tmp_path, mixed_results):
        out = tmp_path / "scorecard.html"
        figures = write_scorecard(mixed_results, out, title="test card")
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert text.count("<svg") == len(figures) == 2
        # every <svg> block must parse as XML (it is inline markup)
        all_tags = set()
        for chunk in text.split("<svg")[1:]:
            svg = "<svg" + chunk.split("</svg>")[0] + "</svg>"
            root = ET.fromstring(svg)
            tags = {child.tag.split("}")[-1] for child in root.iter()}
            assert "circle" in tags  # data points always rendered
            all_tags |= tags
        # the 3-point tree sweep gets connected curves (a single-point
        # series renders markers only)
        assert "polyline" in all_tags
        assert "test card" in text

    def test_self_contained(self, tmp_path, mixed_results):
        figures = write_scorecard(mixed_results, tmp_path / "s.html")
        text = (tmp_path / "s.html").read_text()
        # no external assets: no scripts, stylesheets or images to fetch
        assert "<script" not in text
        assert "<link" not in text
        assert "<img" not in text
        assert "<style>" in text
        for fig in figures:
            assert fig.title in text

    def test_unscored_card_says_so(self, mixed_results):
        html_text = render_scorecard(figures_from_results(mixed_results))
        assert "No series matches a paper-reported" in html_text
        assert "unscored" in html_text

    def test_reference_overlay_rendered_when_scored(self, mixed_results):
        figures = figures_from_results(mixed_results)
        fig = figures[0]
        label = fig.series[0].label
        from repro.obs.report import PaperRef

        fig.refs[label] = PaperRef(figure="Fig 6", saturation=0.6, latency_presat=70.0)
        fig.fidelity[label] = 0.95
        html_text = render_scorecard(figures)
        assert "paper 0.6" in html_text  # dashed saturation marker label
        assert "Overall fidelity" in html_text
        assert "95%" in html_text
