"""Chaos-campaign tests: the exactly-once invariant under randomized
fail-stop storms across every paper routing configuration, the
strike -> repair lane-state round trip (including deferred drains and
halting mid-drain), and the campaign/scorecard plumbing."""

import random

import pytest

from repro.experiments.chaos import (
    ChaosSeries,
    StormSpec,
    _draw_storm_schedule,
    chaos_campaign,
    degradation_rows,
)
from repro.faults import CubeLinkFault, FaultPolicy, FaultSchedule, TreeUplinkFault
from repro.faults.schedule import _ActiveFault
from repro.obs.report import partition_reliability, reliability_curves, write_scorecard
from repro.profiles import FAST
from repro.sim.packet import FAULT_SENTINEL, Packet
from repro.sim.run import build_engine, tree_config
from repro.traffic.transport import ReliableTransport, TransportConfig

from .test_property_forensics import FIVE_CONFIGS, _build

#: randomized-storm draws for the property tests
STORM_SEEDS = [1, 9, 23]


def _all_lanes(engine):
    for bank in (engine.in_lanes, engine.out_lanes):
        for switch_ports in bank:
            for port_lanes in switch_ports:
                yield from port_lanes


def _install_storm(engine, spec, storm_seed):
    """A fail-stop storm appropriate to the routing configuration.

    Adaptive configurations take the campaign's own randomized
    lane-level draw; deterministic DOR has no lane redundancy to lose,
    so its storm is a transient full-channel death (killed occupants,
    repair before the watchdog) installed with validation off — the
    only fail-stop shape DOR can survive.
    """
    if spec["network"] == "cube" and spec["algorithm"] == "dor":
        rng = random.Random(storm_seed)
        schedule = FaultSchedule()
        node = rng.randrange(engine.topology.num_nodes)
        fail_at = rng.randrange(150, 400)
        schedule.add(
            CubeLinkFault(node, rng.randrange(2), full_channel=True),
            fail_at=fail_at,
            repair_at=fail_at + 150,
            policy=FaultPolicy.FAIL_STOP,
        )
        schedule.install(engine, validate=False)
        return schedule
    storm = StormSpec(fault_rate=0.25, storm_seed=storm_seed)
    schedule = _draw_storm_schedule(engine, storm)
    assert schedule is not None, "a 25% storm must draw at least one fault"
    schedule.install(engine)
    return schedule


class TestExactlyOnceUnderStorms:
    """The acceptance invariant: under randomized fail-stop storms, on
    all five paper routing configurations, every registered message is
    ACKed exactly once or recorded given-up, the source-side ledger
    balances at halt, and no lane references a killed worm."""

    @pytest.mark.parametrize("storm_seed", STORM_SEEDS)
    @pytest.mark.parametrize("spec", FIVE_CONFIGS)
    def test_invariant_at_halt(self, spec, storm_seed):
        engine = build_engine(_build(spec, load=0.6))
        transport = ReliableTransport(
            TransportConfig(base_timeout=96, max_retries=3)
        ).install(engine)
        _install_storm(engine, spec, storm_seed)
        engine.run()
        engine.audit()  # flit conservation survives the kills

        s = transport.summary()
        assert s["messages"] > 0
        # delivered exactly once or given up; the rest still in protocol
        assert s["messages"] == s["acked"] + s["gave_up"] + s["pending"]
        assert s["duplicates"] >= 0 and s["acked"] >= 0
        # a killed worm must be flushed network-wide: no lane may still
        # reference a packet stamped dropped
        for lane in _all_lanes(engine):
            pkt = lane.packet
            if pkt is None or pkt is FAULT_SENTINEL:
                continue
            assert pkt.dropped < 0, f"lane {lane!r} references killed worm {pkt!r}"
        # engine totals close: injected = delivered + dropped + in flight
        assert engine.in_flight_packets() >= 0
        assert (
            engine.injected_packets_total
            == engine.delivered_packets_total
            + engine.dropped_packets_total
            + engine.in_flight_packets()
        )

    def test_storms_actually_kill_worms(self):
        # sanity for the parametrized invariant: at this rate and load
        # the tree storm destroys in-flight worms and the transport
        # observes the kills
        engine = build_engine(_build(dict(network="tree", vcs=2), load=0.8))
        transport = ReliableTransport().install(engine)
        _install_storm(engine, dict(network="tree", vcs=2), storm_seed=9)
        result = engine.run()
        assert result.dropped_packets + transport.drops_seen > 0
        assert transport.retransmissions > 0


class TestStrikeRepairRoundTrip:
    """Property test of ``_ActiveFault``: strike -> (drain) -> repair
    returns every lane to its pre-fault reachable state, for randomized
    occupancy patterns and drain orders."""

    def _lanes(self):
        engine = build_engine(
            tree_config(k=2, n=3, vcs=4, load=0.0, warmup_cycles=0,
                        total_cycles=400)
        )
        return engine, engine.out_lanes[0][2]

    @pytest.mark.parametrize("seed", STORM_SEEDS)
    def test_random_occupancy_drain_order_roundtrip(self, seed):
        rng = random.Random(seed)
        engine, lanes = self._lanes()
        occupied = [lane for lane in lanes if rng.random() < 0.5]
        for i, lane in enumerate(occupied):
            lane.packet = Packet(pid=i + 1, src=0, dst=5, size=4, created=0)
        active = _ActiveFault(lanes, FaultPolicy.DRAIN)

        active.strike(engine)
        for lane in lanes:
            if lane in occupied:  # busy lanes deferred, never clobbered
                assert lane.packet is not FAULT_SENTINEL
            else:
                assert lane.packet is FAULT_SENTINEL
        # drain the occupants one at a time in random order; each
        # re-strike (the re-armed hook) seizes exactly the drained lanes
        rng.shuffle(occupied)
        for lane in occupied:
            lane.packet = None
            active.strike(engine)
            assert lane.packet is FAULT_SENTINEL
        assert active.pending == []

        active.repair(engine)
        assert all(lane.packet is None for lane in lanes)
        # a stray re-armed strike after repair must stay a no-op
        active.strike(engine)
        assert all(lane.packet is None for lane in lanes)

    def test_fail_stop_roundtrip_skips_the_drain(self):
        engine, lanes = self._lanes()
        worm = Packet(pid=1, src=0, dst=5, size=4, created=0)
        lanes[0].packet = worm
        active = _ActiveFault(lanes, FaultPolicy.FAIL_STOP)
        active.strike(engine)
        # no deferral: the occupant is killed and every lane seized now
        assert worm.dropped >= 0
        assert all(lane.packet is FAULT_SENTINEL for lane in lanes)
        assert active.pending == []
        active.repair(engine)
        assert all(lane.packet is None for lane in lanes)

    def test_halt_mid_drain_leaves_consistent_state(self):
        # a worm pinned on one lane for the whole run: the DRAIN strike
        # re-arms every cycle to the end, the engine halts with the
        # seizure still pending, and the worm is never clobbered
        engine, lanes = self._lanes()
        worm = Packet(pid=1, src=0, dst=5, size=4, created=0)
        lanes[0].packet = worm
        schedule = FaultSchedule().add(TreeUplinkFault(0, 2), fail_at=50)
        schedule.install(engine)
        active = engine._cycle_hooks[50][0].__self__
        engine.run()
        assert lanes[0].packet is worm
        assert all(lane.packet is FAULT_SENTINEL for lane in lanes[1:])
        # the post-halt repair still lifts the sentinels and cancels the
        # pending seizure, so a resumed engine would see healthy lanes
        assert active.pending == [lanes[0]]
        active.repair(engine)
        lanes[0].packet = None
        active.strike(engine)
        assert all(lane.packet is None for lane in lanes)


class TestChaosCampaign:
    def _campaign(self, **overrides):
        kwargs = dict(
            network="tree",
            fault_rates=(0.0, 0.2),
            loads=[0.3, 0.6],
            profile=FAST,
            k=2,
            n=2,
            seed=11,
            storm_seed=9,
        )
        kwargs.update(overrides)
        return chaos_campaign(**kwargs)

    def test_one_series_per_rate_with_storm_documents(self):
        campaign = self._campaign()
        assert len(campaign) == 2
        for cs in campaign:
            assert isinstance(cs, ChaosSeries)
            assert len(cs.results) == 2
            for result in cs.results:
                rel = result.telemetry.reliability
                assert rel["storm"]["fault_rate"] == cs.storm.fault_rate
                assert rel["messages"] == (
                    rel["acked"] + rel["gave_up"] + rel["pending"]
                )
        baseline, stormy = campaign
        assert baseline.storm.fault_rate == 0.0
        assert all(
            r.telemetry.reliability["storm"]["faults"] == 0
            for r in baseline.results
        )
        assert all(
            r.telemetry.reliability["storm"]["faults"] > 0
            for r in stormy.results
        )

    def test_degradation_rows_shape(self):
        rows = degradation_rows(self._campaign())
        assert [row["fault_rate"] for row in rows] == [0.0, 0.2]
        for row in rows:
            assert set(row) == {
                "fault_rate", "repair_cycles", "goodput_fraction",
                "retransmit_overhead", "dropped", "given_up", "points",
                "failures",
            }
            assert row["points"] == 2 and row["failures"] == 0

    def test_ledger_records_filed_as_chaos_without_dedup(self, tmp_path):
        from repro.obs.ledger import Ledger

        ledger = Ledger(tmp_path / "chaos.jsonl")
        self._campaign(ledger=ledger)
        records = list(ledger.records())
        # grid points share config digest + seed; dedup off keeps all 4
        assert len(records) == 4
        assert all(rec["kind"] == "chaos" for rec in records)

    def test_bad_storm_spec_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="fault_rate"):
            StormSpec(fault_rate=1.0)
        with pytest.raises(ConfigurationError, match="repair_cycles"):
            StormSpec(fault_rate=0.1, repair_cycles=-1)


class TestScorecardReliabilityPanel:
    def _chaos_results(self):
        campaign = chaos_campaign(
            network="tree", fault_rates=(0.0, 0.2), loads=[0.4],
            profile=FAST, k=2, n=2, seed=11, storm_seed=9,
        )
        return [r for cs in campaign for r in cs.results]

    def test_partition_splits_chaos_from_plain(self):
        from repro.sim.run import simulate

        chaos = self._chaos_results()
        plain_run = simulate(_build(dict(network="tree", vcs=2), load=0.3))
        plain, storms = partition_reliability(chaos + [plain_run])
        assert plain == [plain_run]
        assert storms == chaos

    def test_curves_are_rate_sorted_and_load_averaged(self):
        curves = reliability_curves(self._chaos_results())
        (curve,) = curves
        assert "tree" in curve.label
        assert [p[0] for p in curve.points] == [0.0, 0.2]
        rate0, rate20 = curve.points
        assert rate0[4] == 0  # no drops without faults
        assert rate20[4] > 0

    def test_scorecard_renders_reliability_panel(self, tmp_path):
        out = tmp_path / "scorecard.html"
        figures = write_scorecard(self._chaos_results(), out)
        assert figures == []  # all-chaos ledger: no CNF figures
        html = out.read_text()
        assert "Reliability under fail-stop fault storms" in html
        assert "end-to-end goodput" in html
        assert "retransmit overhead" in html
